//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a minimal wall-clock harness exposing the criterion surface its benches
//! use: [`Criterion`] with the `sample_size` / `measurement_time` /
//! `warm_up_time` builders, [`Criterion::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! There is no statistical analysis: each benchmark warms up, then runs
//! `sample_size` timed samples (each sized to fit the measurement budget)
//! and reports min / median / mean per-iteration wall-clock time on stdout.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            budget: self.measurement_time,
            samples: self.sample_size,
            per_iter: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    budget: Duration,
    samples: usize,
    per_iter: Vec<f64>,
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored by this
/// harness beyond API compatibility).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and estimate per-iteration cost for sample sizing.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let per_sample_budget = self.budget.as_secs_f64() / self.samples as f64;
        let iters_per_sample = ((per_sample_budget / est.max(1e-9)) as u64).clamp(1, 1 << 24);

        self.per_iter.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.per_iter
                .push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }

    /// Time `routine` over fresh inputs built by `setup` (setup excluded
    /// from timing).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine(setup()));
        }

        self.per_iter.clear();
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.per_iter.push(start.elapsed().as_secs_f64());
        }
    }

    fn report(&mut self, name: &str) {
        if self.per_iter.is_empty() {
            println!("{name:<44} no samples recorded");
            return;
        }
        self.per_iter.sort_by(|a, b| a.total_cmp(b));
        let n = self.per_iter.len();
        let min = self.per_iter[0];
        let median = if n % 2 == 1 {
            self.per_iter[n / 2]
        } else {
            (self.per_iter[n / 2 - 1] + self.per_iter[n / 2]) / 2.0
        };
        let mean = self.per_iter.iter().sum::<f64>() / n as f64;
        println!(
            "{name:<44} min {} · median {} · mean {} ({n} samples)",
            fmt_secs(min),
            fmt_secs(median),
            fmt_secs(mean),
        );
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Define a benchmark group: a config and the target functions to run.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_records_samples() {
        quick().bench_function("noop_add", |b| b.iter(|| black_box(2u64) + 2));
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        quick().bench_function("batched_sum", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    criterion_group! {
        name = unit_group;
        config = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        targets = group_target
    }

    fn group_target(c: &mut Criterion) {
        c.bench_function("group_noop", |b| b.iter(|| black_box(1)));
    }

    #[test]
    fn group_macro_produces_runner() {
        unit_group();
    }
}
