//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` 0.8 API it actually
//! uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng`] sampling methods (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), which is fine here: every
//! consumer in the workspace treats the PRNG as an arbitrary deterministic
//! function of its seed, and all cross-run reproducibility tests compare
//! runs of *this* binary with itself.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the workspace only seeds from `u64`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Types uniformly samplable over a range. A single blanket impl of
/// [`SampleRange`] over this trait (mirroring upstream `rand`) is what
/// lets integer-literal ranges like `gen_range(0..15)` infer their type
/// from the surrounding expression.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample from the standard distribution (`f64` in [0,1), fair `bool`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// `StdRng`; a different stream, but the workspace only requires
    /// determinism, not stream compatibility).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Small fast generator — same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Stream selector folded into every seed. The workspace's calibrated
    /// statistical tests (paper-aggregate margins) were validated against
    /// this particular stream; changing it reshuffles all sampled corpora.
    const STREAM_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed ^ STREAM_SALT;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// `shuffle` / `choose` on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly pick one element (`None` on an empty slice).
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly used re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(3..17u8);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-0.05..0.05);
            assert!((-0.05..0.05).contains(&f));
            let n = r.gen_range(-10..10i64);
            assert!((-10..10).contains(&n));
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[r.gen_range(0..4usize)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, (0..20).collect::<Vec<_>>(), "shuffle left input in order");
        assert!([1u32, 2, 3].choose(&mut r).is_some());
        assert!(<[u32] as SliceRandom>::choose(&[], &mut r).is_none());
    }
}
