//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the subset of the proptest API its tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_filter` / `prop_recursive` / `boxed`, strategies for
//! ranges, tuples, regex-like string patterns, [`Just`], [`any`],
//! [`collection::vec`], [`option::of`], the [`prop_oneof!`] union macro, and
//! the [`proptest!`] test-harness macro with `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking**. Failing inputs are reported as-is. Generation is fully
//! deterministic — each test function derives its RNG stream from its own
//! name and the case index, so failures reproduce across runs and machines.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod test_runner {
    //! Deterministic RNG and run configuration.

    /// SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded construction.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Stream for one `(test name, case index)` pair.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng::new(h ^ ((case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)))
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: usize) -> usize {
            debug_assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform integer in the inclusive i128 span.
        pub fn in_span(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u128 + 1;
            let v = ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span;
            lo + v as i128
        }
    }

    /// Run configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

use test_runner::TestRng;

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f` (retry-based, no shrinking).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }

    /// Recursive strategies: `self` is the leaf; `recurse` receives the
    /// strategy for the next-shallower depth and returns the composite.
    fn prop_recursive<F, S2>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
        S2: Strategy<Value = Self::Value> + 'static,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            let leaf = base.clone();
            cur = BoxedStrategy::from_fn(move |rng| {
                // Bias toward recursion so trees reach interesting depth,
                // bottoming out at the leaf strategy.
                if rng.unit_f64() < 0.6 {
                    deeper.generate(rng)
                } else {
                    leaf.generate(rng)
                }
            });
        }
        cur
    }

    /// Type-erase into a cloneable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy::from_fn(move |rng| s.generate(rng))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    gen_fn: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { gen_fn: Arc::clone(&self.gen_fn) }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wrap a generation closure.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { gen_fn: Arc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_filter`] adapter.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1000 attempts: {}", self.whence)
    }
}

/// Weighted union of boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! total weight must be positive");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as usize) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_span(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.in_span(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// `&str` strategies are regex-like character patterns, supporting
/// character classes (`[a-z0-9_%]`), `.` (printable ASCII), and the
/// quantifiers `{m}`, `{m,n}`, `?`, `*`, `+`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use super::TestRng;

    struct Element {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn printable_ascii() -> Vec<char> {
        (0x20u8..=0x7E).map(char::from).collect()
    }

    fn parse(pattern: &str) -> Vec<Element> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut out = Vec::new();
        while i < chars.len() {
            let set = match chars[i] {
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if chars[i] == '\\' && i + 1 < chars.len() {
                            set.push(chars[i + 1]);
                            i += 2;
                        } else if i + 2 < chars.len()
                            && chars[i + 1] == '-'
                            && chars[i + 2] != ']'
                        {
                            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                            assert!(lo <= hi, "bad class range in {pattern:?}");
                            set.extend((lo..=hi).filter_map(char::from_u32));
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unclosed class in {pattern:?}");
                    i += 1; // ']'
                    set
                }
                '.' => {
                    i += 1;
                    printable_ascii()
                }
                '\\' => {
                    assert!(i + 1 < chars.len(), "trailing escape in {pattern:?}");
                    i += 2;
                    vec![chars[i - 1]]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .expect("unclosed quantifier")
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((m, n)) => (
                                m.trim().parse().expect("bad quantifier"),
                                n.trim().parse().expect("bad quantifier"),
                            ),
                            None => {
                                let n = body.trim().parse().expect("bad quantifier");
                                (n, n)
                            }
                        }
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "inverted quantifier in {pattern:?}");
            out.push(Element { chars: set, min, max });
        }
        out
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut s = String::new();
        for el in parse(pattern) {
            let n = el.min + rng.below(el.max - el.min + 1);
            for _ in 0..n {
                s.push(el.chars[rng.below(el.chars.len())]);
            }
        }
        s
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical full-range strategy ([`any`]).
pub trait ArbitraryValue: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite floats across a wide magnitude span.
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = rng.in_span(-60, 60) as i32;
        m * (2f64).powi(e)
    }
}

impl ArbitraryValue for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from(rng.in_span(0x20, 0x7E) as u8)
    }
}

/// Strategy for an [`ArbitraryValue`] type.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T` (`any::<i32>()` etc.).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draw one length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start() <= self.end(), "empty vec size range");
            self.start() + rng.below(self.end() - self.start() + 1)
        }
    }

    /// Strategy producing `Vec`s of `element` with length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `Vec` strategy constructor.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// Strategy producing `None` a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option` strategy constructor.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Union over strategies of one value type, optionally weighted
/// (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Property assertion (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when an assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                $(let $arg = $strat;)+
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::generate(&$arg, &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Commonly used re-exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::new(1);
        for _ in 0..500 {
            let v = (3i64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let u = (0usize..=4).generate(&mut rng);
            assert!(u <= 4);
        }
    }

    #[test]
    fn pattern_strategies_match_shape() {
        let mut rng = crate::test_runner::TestRng::new(2);
        for _ in 0..200 {
            let s = "[a-c]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
            let t = "[A-Za-z_][A-Za-z0-9_]{0,8}".generate(&mut rng);
            assert!(!t.is_empty() && t.len() <= 9, "{t:?}");
            let d = ".{0,5}".generate(&mut rng);
            assert!(d.len() <= 5);
            assert!(d.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = crate::test_runner::TestRng::new(3);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..10).prop_map(Tree::Leaf).prop_recursive(3, 16, 3, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut rng = crate::test_runner::TestRng::new(4);
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&strat.generate(&mut rng)));
        }
        assert!(max_depth > 1, "recursion never fired");
        assert!(max_depth <= 4, "depth bound exceeded: {max_depth}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn harness_macro_runs(x in 0i32..100, s in "[a-z]{1,3}") {
            prop_assert!((0..100).contains(&x));
            prop_assert!(!s.is_empty() && s.len() <= 3);
        }
    }
}
