//! Schema-linking simulation.
//!
//! The linker receives a required native identifier (known from the gold
//! query — the simulation device standing in for the model's language
//! understanding of the question) and must produce the identifier the model
//! would emit, given the *displayed* rendering at the active naturalness
//! variant. The displayed rendering's tokens are classified lexically; each
//! token decodes with a model- and class-dependent probability, and the
//! geometric-mean decode probability (shrunk by schema-size distraction)
//! gives the link-success probability. Failed links hallucinate a typo,
//! guess a natural name, or select a plausible distractor — the three
//! failure modes the paper reports.

use crate::model::{ModelConfig, TokenClass};
use crate::schema_view::SchemaView;
use rand::rngs::StdRng;
use rand::Rng;
use snails_lexicon::abbrev::{
    is_common_acronym, is_conventional_abbreviation, is_recognizable_acronym,
};
use snails_lexicon::dictionary::{dictionary, is_dictionary_word, is_subsequence};
use snails_lexicon::edit::levenshtein_ignore_case;
use snails_lexicon::split_identifier;

/// Classify one identifier token.
pub fn classify_token(token: &str) -> TokenClass {
    if token.bytes().all(|b| b.is_ascii_digit()) {
        return TokenClass::Numeric;
    }
    let lower = token.to_ascii_lowercase();
    if is_dictionary_word(&lower) || is_common_acronym(token) {
        return TokenClass::Word;
    }
    if is_conventional_abbreviation(token) || is_recognizable_acronym(token) {
        return TokenClass::Abbreviation;
    }
    // Expandable: a dictionary word contains this token as an ordered
    // subsequence with matching first letter and the token is not too short.
    if lower.len() >= 3 {
        let dict = dictionary();
        let max_len = lower.len() * 4;
        let expandable = dict.iter().any(|w| {
            w.len() > lower.len()
                && w.len() <= max_len
                && w.starts_with(lower.chars().next().unwrap_or('\0'))
                && is_subsequence(&lower, w)
        });
        if expandable {
            return TokenClass::Abbreviation;
        }
    }
    TokenClass::Opaque
}

/// Softening exponent for *organic* (Native-schema) identifiers: the paper's
/// data shows Native schemas outperform what their naturalness mixture alone
/// predicts (Figure 30: Native ≈ Regular on naturally-high databases), i.e.
/// organically grown abbreviations are more decodable than the synthetically
/// abbreviated virtual-schema renderings at the same labeled level.
pub const ORGANIC_EXPONENT: f64 = 0.62;

/// The link-success probability for a displayed identifier: geometric mean
/// of per-token decode probabilities, shrunk by schema-size distraction.
///
/// `organic` marks Native-schema renderings (see [`ORGANIC_EXPONENT`]).
pub fn link_probability(
    model: &ModelConfig,
    displayed: &str,
    schema_columns: usize,
    organic: bool,
) -> f64 {
    let tokens = split_identifier(displayed);
    if tokens.is_empty() {
        return 0.0;
    }
    let mut log_sum = 0.0;
    for t in &tokens {
        let p = model.decode_prob(classify_token(&t.text));
        log_sum += p.max(1e-6).ln();
    }
    let mut geo_mean = (log_sum / tokens.len() as f64).exp();
    if organic {
        geo_mean = geo_mean.powf(ORGANIC_EXPONENT);
    }
    // Distraction: larger displayed schemas create more linking competition.
    // 40 columns ≈ no penalty; 1,600+ columns ≈ full penalty.
    let size = (schema_columns.max(1) as f64 / 40.0).ln().max(0.0) / (40.0f64).ln();
    let factor = 1.0 - model.distraction * size.min(1.0);
    (geo_mean * factor).clamp(0.0, 1.0)
}

/// The outcome of linking one identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkOutcome {
    /// Correct displayed identifier emitted.
    Correct(String),
    /// Typo-like hallucination of the displayed identifier.
    Hallucinated(String),
    /// The model guessed a natural (snake_case full-word) name.
    NaturalGuess(String),
    /// A plausible but wrong existing identifier was selected.
    Distractor(String),
}

impl LinkOutcome {
    /// The emitted identifier text.
    pub fn emitted(&self) -> &str {
        match self {
            LinkOutcome::Correct(s)
            | LinkOutcome::Hallucinated(s)
            | LinkOutcome::NaturalGuess(s)
            | LinkOutcome::Distractor(s) => s,
        }
    }

    /// True when the link is correct.
    pub fn is_correct(&self) -> bool {
        matches!(self, LinkOutcome::Correct(_))
    }
}

/// Typo-like identifier mutation (the paper observes e.g. whitespace names
/// hallucinated into snake/camel case, `table_` prefixes dropped, casing
/// errors).
fn hallucinate(displayed: &str, rng: &mut StdRng) -> String {
    let mut s = displayed.to_owned();
    // Whitespace identifiers: "rather than encasing [them] with brackets or
    // quotes, the LLM hallucinates the identifier into snake or camel case
    // format" (§6).
    if s.contains(' ') {
        return if rng.gen::<bool>() {
            s.replace(' ', "_")
        } else {
            s.split(' ').collect::<String>()
        };
    }
    match rng.gen_range(0..4u8) {
        0 => {
            // Drop one interior character.
            if s.len() > 2 {
                let i = 1 + rng.gen_range(0..s.len() - 2);
                if s.is_char_boundary(i) && s.is_char_boundary(i + 1) {
                    s.remove(i);
                }
            }
        }
        1 => {
            // Drop a leading `tbl`/`tlu`-style prefix or the first token.
            if let Some(pos) = s.find('_') {
                s = s[pos + 1..].to_owned();
            } else if s.len() > 3 {
                s = s[1..].to_owned();
            }
        }
        2 => {
            // Case mutation: snake-case a camel boundary or lowercase all.
            s = s.to_ascii_lowercase();
        }
        _ => {
            // Duplicate the final character (classic typo).
            if let Some(c) = s.chars().last() {
                s.push(c);
            }
        }
    }
    if s.is_empty() || s.eq_ignore_ascii_case(displayed) {
        format!("{displayed}_x")
    } else {
        s
    }
}

/// Candidates for distractor selection: displayed identifiers of the same
/// kind, excluding the correct one; the nearest by edit distance wins
/// (plausible confusion, not random noise).
fn pick_distractor(
    view: &SchemaView,
    displayed: &str,
    is_table: bool,
    rng: &mut StdRng,
) -> Option<String> {
    let mut candidates: Vec<&str> = if is_table {
        view.tables
            .iter()
            .map(|t| t.displayed.as_str())
            .filter(|d| !d.eq_ignore_ascii_case(displayed))
            .collect()
    } else {
        view.tables
            .iter()
            .flat_map(|t| &t.columns)
            .map(|c| c.displayed.as_str())
            .filter(|d| !d.eq_ignore_ascii_case(displayed))
            .collect()
    };
    if candidates.is_empty() {
        return None;
    }
    candidates.sort_unstable();
    candidates.dedup();
    // Keep the 5 nearest by edit distance, pick one.
    candidates.sort_by_key(|c| levenshtein_ignore_case(c, displayed));
    let top = candidates.len().min(5);
    Some(candidates[rng.gen_range(0..top)].to_owned())
}

/// Simulate linking one required identifier.
///
/// `regular_name` is the snake_case Regular rendering — the phrase the NL
/// question uses, and therefore the model's fallback guess.
pub fn link_identifier(
    model: &ModelConfig,
    view: &SchemaView,
    displayed: &str,
    regular_name: &str,
    is_table: bool,
    rng: &mut StdRng,
) -> LinkOutcome {
    let organic = view.variant == snails_naturalness::category::SchemaVariant::Native;
    let p = link_probability(model, displayed, view.column_count(), organic);
    if rng.gen::<f64>() < p {
        return LinkOutcome::Correct(displayed.to_owned());
    }
    if rng.gen::<f64>() < model.hallucination {
        return LinkOutcome::Hallucinated(hallucinate(displayed, rng));
    }
    if rng.gen::<f64>() < model.guess_natural {
        // The natural guess can coincide with the displayed identifier on
        // sufficiently natural schemas — in which case the model recovers.
        if regular_name.eq_ignore_ascii_case(displayed) {
            return LinkOutcome::Correct(displayed.to_owned());
        }
        return LinkOutcome::NaturalGuess(regular_name.to_owned());
    }
    match pick_distractor(view, displayed, is_table, rng) {
        Some(d) => LinkOutcome::Distractor(d),
        None => LinkOutcome::Hallucinated(hallucinate(displayed, rng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use rand::SeedableRng;
    use snails_data::build_database;
    use snails_naturalness::category::SchemaVariant;

    #[test]
    fn token_classes() {
        assert_eq!(classify_token("height"), TokenClass::Word);
        assert_eq!(classify_token("ID"), TokenClass::Word);
        assert_eq!(classify_token("qty"), TokenClass::Abbreviation);
        assert_eq!(classify_token("veg"), TokenClass::Abbreviation);
        assert_eq!(classify_token("22"), TokenClass::Numeric);
        assert_eq!(classify_token("xq"), TokenClass::Opaque);
        assert_eq!(classify_token("zqxj"), TokenClass::Opaque);
    }

    #[test]
    fn link_probability_monotone_in_naturalness() {
        let gpt4o = ModelKind::Gpt4o.config();
        let regular = link_probability(&gpt4o, "vegetation_height", 100, false);
        let low = link_probability(&gpt4o, "VegHt", 100, false);
        let least = link_probability(&gpt4o, "VgHt", 100, false);
        assert!(regular > low, "{regular} !> {low}");
        assert!(low > least, "{low} !> {least}");
    }

    #[test]
    fn weak_models_link_worse_on_abbreviations() {
        let strong = ModelKind::Gpt4o.config();
        let weak = ModelKind::PhindCodeLlama.config();
        let s = link_probability(&strong, "VgHt", 100, false);
        let w = link_probability(&weak, "VgHt", 100, false);
        assert!(s > w, "{s} !> {w}");
        // But on fully natural names the gap is small.
        let sn = link_probability(&strong, "vegetation_height", 100, false);
        let wn = link_probability(&weak, "vegetation_height", 100, false);
        assert!((sn - wn).abs() < 0.1, "{sn} vs {wn}");
    }

    #[test]
    fn distraction_shrinks_with_schema_size() {
        let m = ModelKind::Gpt35.config();
        let small = link_probability(&m, "vegetation_height", 60, false);
        let large = link_probability(&m, "vegetation_height", 1611, false);
        assert!(small > large, "{small} !> {large}");
    }

    #[test]
    fn hallucination_produces_different_identifier() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let h = hallucinate("tbl_Locations", &mut rng);
            assert!(!h.eq_ignore_ascii_case("tbl_Locations"), "{h}");
            assert!(!h.is_empty());
        }
    }

    #[test]
    fn link_outcomes_cover_failure_modes() {
        let db = build_database("CWO");
        let view = SchemaView::new(&db, SchemaVariant::Least);
        let model = ModelKind::PhindCodeLlama.config();
        let table = &view.tables[2];
        let mut correct = 0;
        let mut halluc = 0;
        let mut guess = 0;
        let mut distract = 0;
        for seed in 0..400 {
            let mut rng = StdRng::seed_from_u64(seed);
            match link_identifier(&model, &view, &table.displayed, "wildlife_sighting", false, &mut rng)
            {
                LinkOutcome::Correct(_) => correct += 1,
                LinkOutcome::Hallucinated(_) => halluc += 1,
                LinkOutcome::NaturalGuess(g) => {
                    assert_eq!(g, "wildlife_sighting");
                    guess += 1;
                }
                LinkOutcome::Distractor(d) => {
                    assert!(!d.eq_ignore_ascii_case(&table.displayed));
                    distract += 1;
                }
            }
        }
        assert!(correct > 0, "no successes");
        assert!(halluc + guess + distract > 0, "no failures at Least level");
        assert!(halluc > 0 && distract > 0, "failure modes unexercised");
    }

    #[test]
    fn natural_guess_recovers_on_regular_schema() {
        let db = build_database("CWO");
        let view = SchemaView::new(&db, SchemaVariant::Regular);
        let model = ModelKind::Gpt35.config();
        // Find a displayed column equal to its own regular rendering.
        let col = view
            .tables
            .iter()
            .flat_map(|t| &t.columns)
            .find(|c| {
                db.crosswalk
                    .entry(&c.native)
                    .map(|e| e.renderings[0] == c.displayed)
                    .unwrap_or(false)
            })
            .expect("some regular-rendered column");
        let regular = col.displayed.clone();
        let mut guesses_became_correct = 0;
        for seed in 0..300 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = link_identifier(&model, &view, &col.displayed, &regular, false, &mut rng);
            if matches!(out, LinkOutcome::NaturalGuess(_)) {
                panic!("guess should have been converted to Correct");
            }
            if out.is_correct() {
                guesses_became_correct += 1;
            }
        }
        assert!(guesses_became_correct > 250);
    }
}
