#![warn(missing_docs)]

//! # snails-llm
//!
//! The LLM layer of the SNAILS benchmark. The paper calls hosted models
//! (GPT-3.5, GPT-4o, Gemini 1.5, Phind-CodeLlama, CodeS) through vendor
//! APIs; this crate substitutes a *simulated NL-to-SQL model*: a noisy schema
//! linker plus SQL synthesizer whose per-model parameters are calibrated
//! against the paper's aggregate results (Figure 30 grid, Figures 8–11).
//!
//! The simulation preserves exactly the mechanism under study: the model
//! links natural-language mention terms to the identifiers *as displayed in
//! the prompt* (i.e. at the active schema-variant naturalness level), so
//! lower naturalness mechanically degrades schema linking — abbreviated and
//! opaque tokens decode with lower probability, mis-links select plausible
//! distractors, and typo-like hallucinations mutate identifiers, all of which
//! the paper reports observing. Everything downstream of the simulated
//! API call — prompt construction, query denaturalization, execution, result
//! matching, linking metrics, statistics — is computed for real by the other
//! crates.
//!
//! Modules:
//! * [`schema_view`] — the displayed schema at a naturalness variant, plus
//!   zero-shot prompt rendering (appendix D.1);
//! * [`model`] — the model zoo and per-model parameter sets;
//! * [`linking`] — token decoding and identifier-linking simulation;
//! * [`generate`] — end-to-end simulated inference;
//! * [`workflows`] — zero-shot, DIN-SQL (prompt chaining with schema
//!   subsetting), and CodeS (finetuned filter + generator) pipelines;
//! * [`middleware`] — prompt naturalization and query denaturalization
//!   (appendix D.2 / D.4 and appendix H.2);
//! * [`views`] — natural views (§6, appendix H.2): `CREATE VIEW` DDL mapping
//!   Regular identifiers onto the native schema.

pub mod faults;
pub mod generate;
pub mod linking;
pub mod middleware;
pub mod model;
pub mod resilience;
pub mod schema_view;
pub mod views;
pub mod workflows;

pub use faults::{FailureKind, FaultKind, FaultProfile};
pub use generate::{infer, Inference};
pub use model::{ModelConfig, ModelKind};
pub use resilience::{
    run_cell, BreakerPolicy, CellExecution, CellOutcome, CellPlan, CircuitBreaker, Planner,
    ResilienceConfig, RetryPolicy, SimCosts,
};
pub use schema_view::{build_prompt, SchemaView};
pub use workflows::{run_workflow, SubsetOutcome, Workflow, WorkflowResult};

// Thread-safety contract: the benchmark scheduler shares these read-only
// across worker threads, so they must stay `Send + Sync` (no `Rc`, no
// `Cell`/`RefCell`, no raw pointers). Compile-time only — no runtime cost.
const _: () = {
    const fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<SchemaView>();
    assert_shareable::<ModelConfig>();
    assert_shareable::<ModelKind>();
    assert_shareable::<Workflow>();
    assert_shareable::<WorkflowResult>();
    assert_shareable::<Inference>();
    assert_shareable::<FaultProfile>();
    assert_shareable::<CellPlan>();
    assert_shareable::<ResilienceConfig>();
    assert_shareable::<snails_data::SnailsDatabase>();
    assert_shareable::<snails_sql::IdentifierMap>();
};
