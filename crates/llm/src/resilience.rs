//! Resilience middleware around [`crate::run_workflow`]: bounded retries
//! with exponential backoff + deterministic jitter on a *simulated* clock,
//! a per-model circuit breaker, and graceful degradation into failure
//! records.
//!
//! # Determinism under parallelism
//!
//! A circuit breaker shared across grid cells is execution-order dependent,
//! which would break the harness contract that records are bit-identical at
//! any thread count. The middleware therefore splits each cell into two
//! phases:
//!
//! 1. **Planning** ([`Planner::plan_cell`], serial, grid order): walks the
//!    retry loop on the simulated clock, drawing faults (pure functions of
//!    `(cell seed, attempt)`), advancing breaker state, and emitting a
//!    [`CellPlan`] — cheap pure-RNG work, no inference.
//! 2. **Execution** ([`run_cell`], parallel, any order): runs the expensive
//!    simulated inference for cells whose plan says `Proceed`, applies any
//!    planned payload corruption, and raises the planned panic for `Panic`
//!    cells so the scheduler's isolation path is genuinely exercised.
//!
//! Since phase 1 is serial and phase 2 is a pure function of `(plan, cell
//! inputs)`, the combined output is independent of worker interleaving.

use crate::faults::{self, FailureKind, FaultKind, FaultProfile};
use crate::generate::mix_seed;
use crate::schema_view::SchemaView;
use crate::workflows::{run_workflow, Workflow, WorkflowResult};
use snails_data::{GoldPair, SnailsDatabase};
use snails_obs::Metric as Obs;
use std::collections::BTreeMap;

/// The telemetry counter for a drawn fault.
fn fault_metric(kind: FaultKind) -> Obs {
    match kind {
        FaultKind::Timeout => Obs::LlmFaultsTimeout,
        FaultKind::RateLimit => Obs::LlmFaultsRateLimit,
        FaultKind::Truncated => Obs::LlmFaultsTruncated,
        FaultKind::Garbage => Obs::LlmFaultsGarbage,
        FaultKind::Panic => Obs::LlmFaultsPanic,
    }
}

/// Bounded-retry policy with exponential backoff and deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts per cell (first try + retries).
    pub max_attempts: u32,
    /// Backoff before retry #1, in simulated milliseconds.
    pub base_backoff_ms: u64,
    /// Backoff ceiling, in simulated milliseconds.
    pub max_backoff_ms: u64,
    /// Jitter amplitude as a fraction of the backoff (`0.25` ⇒ ±25%).
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, base_backoff_ms: 200, max_backoff_ms: 5_000, jitter: 0.25 }
    }
}

impl RetryPolicy {
    /// Simulated backoff before the retry following `failed_attempts`
    /// failures: `base · 2^(failed_attempts − 1)` capped at the ceiling,
    /// scaled by a deterministic jitter factor in `[1 − jitter, 1 + jitter)`
    /// drawn from `(seed, failed_attempts)`.
    pub fn backoff_ms(&self, failed_attempts: u32, seed: u64) -> u64 {
        if failed_attempts == 0 {
            return 0;
        }
        let exp = failed_attempts.saturating_sub(1).min(32);
        let raw = self.base_backoff_ms.saturating_mul(1u64 << exp).min(self.max_backoff_ms);
        let u = faults::unit(mix_seed(&["backoff-jitter"], &[seed, u64::from(failed_attempts)]));
        let factor = 1.0 - self.jitter + 2.0 * self.jitter * u;
        (raw as f64 * factor).round() as u64
    }
}

/// Circuit-breaker thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive transient failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open, in simulated milliseconds.
    pub cooldown_ms: u64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy { failure_threshold: 5, cooldown_ms: 10_000 }
    }
}

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally.
    Closed,
    /// Calls are rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed; one probe call is allowed through.
    HalfOpen,
}

/// Per-model circuit breaker on a simulated clock.
///
/// Only *transient* faults (timeout, rate limit) count as failures — they
/// signal vendor distress. Delivered-but-corrupt payloads and panics say
/// nothing about vendor health and leave the breaker alone.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: BreakerState,
    consecutive_failures: u32,
    open_until_ms: u64,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(policy: BreakerPolicy) -> Self {
        CircuitBreaker {
            policy,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until_ms: 0,
            trips: 0,
        }
    }

    /// Current state (after applying any cooldown transition at `now_ms`).
    pub fn state(&mut self, now_ms: u64) -> BreakerState {
        if self.state == BreakerState::Open && now_ms >= self.open_until_ms {
            self.state = BreakerState::HalfOpen;
            snails_obs::add(Obs::LlmBreakerHalfOpen, 1);
        }
        self.state
    }

    /// Whether a call may proceed at `now_ms` (transitions Open → HalfOpen
    /// when the cooldown has elapsed).
    pub fn allows(&mut self, now_ms: u64) -> bool {
        self.state(now_ms) != BreakerState::Open
    }

    /// Record a successful (or at least delivered) call.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            snails_obs::add(Obs::LlmBreakerClose, 1);
        }
        self.state = BreakerState::Closed;
    }

    /// Record a transient failure at `now_ms`. A HalfOpen probe failure
    /// reopens immediately; in Closed, the breaker opens once the
    /// consecutive-failure threshold is met.
    pub fn record_failure(&mut self, now_ms: u64) {
        self.consecutive_failures += 1;
        let reopen = match self.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.policy.failure_threshold,
            BreakerState::Open => false,
        };
        if reopen {
            self.state = BreakerState::Open;
            self.open_until_ms = now_ms + self.policy.cooldown_ms;
            self.trips += 1;
            snails_obs::add(Obs::LlmBreakerTrips, 1);
        }
    }

    /// How many times this breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

/// Simulated wall-clock costs of API interactions, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimCosts {
    /// A completed call.
    pub call_ms: u64,
    /// A call that times out (the full deadline is burned).
    pub timeout_ms: u64,
    /// A rate-limit rejection (fails fast).
    pub rate_limit_ms: u64,
}

impl Default for SimCosts {
    fn default() -> Self {
        SimCosts { call_ms: 80, timeout_ms: 1_000, rate_limit_ms: 50 }
    }
}

/// Everything the resilience layer needs to plan a run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResilienceConfig {
    /// Fault rates.
    pub profile: FaultProfile,
    /// Retry/backoff parameters.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerPolicy,
    /// Simulated latencies.
    pub costs: SimCosts,
}

/// How a planned cell resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellOutcome {
    /// An attempt completed with a payload; run the real inference
    /// (corrupting the completion if a payload fault fired).
    Proceed {
        /// Payload corruption to apply after inference, if any.
        corruption: Option<FaultKind>,
    },
    /// All retries burned on transient faults (or the breaker opened
    /// mid-cell); no payload was ever delivered.
    Exhausted(FailureKind),
    /// The breaker was already open when the cell started; no attempt made.
    Skipped,
    /// The client panics while handling the response; the scheduler must
    /// isolate it.
    Panic,
}

/// The planned fate of one grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellPlan {
    /// Per-cell fault seed (also drives payload corruption).
    pub seed: u64,
    /// Attempts made (0 for [`CellOutcome::Skipped`]).
    pub attempts: u32,
    /// How the cell resolves.
    pub outcome: CellOutcome,
}

impl CellPlan {
    /// Retries = attempts beyond the first.
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }

    /// A trivial plan for runs with the fault layer disabled.
    pub fn clean(seed: u64) -> CellPlan {
        CellPlan { seed, attempts: 1, outcome: CellOutcome::Proceed { corruption: None } }
    }
}

/// Serial planning pre-pass: walks cells in grid order, maintaining the
/// simulated clock and one circuit breaker per model.
#[derive(Debug)]
pub struct Planner {
    config: ResilienceConfig,
    clock_ms: u64,
    breakers: BTreeMap<&'static str, CircuitBreaker>,
}

impl Planner {
    /// A planner at simulated time zero with all breakers closed.
    pub fn new(config: ResilienceConfig) -> Self {
        Planner { config, clock_ms: 0, breakers: BTreeMap::new() }
    }

    /// Current simulated time in milliseconds.
    pub fn clock_ms(&self) -> u64 {
        self.clock_ms
    }

    /// Total breaker trips across all models so far.
    pub fn breaker_trips(&self) -> u64 {
        self.breakers.values().map(CircuitBreaker::trips).sum()
    }

    /// Plan one cell for `model` (the workflow display name — DIN-SQL and
    /// CodeS count as their own backends) with the given fault seed.
    ///
    /// Must be called serially, in grid order: breaker state and the clock
    /// thread through consecutive calls.
    pub fn plan_cell(&mut self, model: &'static str, cell_seed: u64) -> CellPlan {
        snails_obs::add(Obs::LlmCellsPlanned, 1);
        let config = self.config;
        let breaker = self
            .breakers
            .entry(model)
            .or_insert_with(|| CircuitBreaker::new(config.breaker));
        if !breaker.allows(self.clock_ms) {
            snails_obs::add(Obs::LlmCellsSkipped, 1);
            return CellPlan { seed: cell_seed, attempts: 0, outcome: CellOutcome::Skipped };
        }
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            snails_obs::add(Obs::LlmResilienceAttempts, 1);
            if attempts > 1 {
                snails_obs::add(Obs::LlmResilienceRetries, 1);
            }
            let drawn = config.profile.draw(cell_seed, attempts);
            if let Some(kind) = drawn {
                snails_obs::add(fault_metric(kind), 1);
            }
            match drawn {
                None => {
                    self.clock_ms += config.costs.call_ms;
                    breaker.record_success();
                    return CellPlan {
                        seed: cell_seed,
                        attempts,
                        outcome: CellOutcome::Proceed { corruption: None },
                    };
                }
                Some(kind @ (FaultKind::Truncated | FaultKind::Garbage)) => {
                    // Transport success with a damaged payload: the breaker
                    // sees a delivered call; no retry (a real client cannot
                    // tell garbage from an unfortunate-but-valid answer).
                    self.clock_ms += config.costs.call_ms;
                    breaker.record_success();
                    return CellPlan {
                        seed: cell_seed,
                        attempts,
                        outcome: CellOutcome::Proceed { corruption: Some(kind) },
                    };
                }
                Some(FaultKind::Panic) => {
                    // The response arrived; the client blows up handling it.
                    self.clock_ms += config.costs.call_ms;
                    return CellPlan { seed: cell_seed, attempts, outcome: CellOutcome::Panic };
                }
                Some(kind) => {
                    debug_assert!(kind.is_transient());
                    self.clock_ms += match kind {
                        FaultKind::Timeout => config.costs.timeout_ms,
                        _ => config.costs.rate_limit_ms,
                    };
                    breaker.record_failure(self.clock_ms);
                    let opened = !breaker.allows(self.clock_ms);
                    if attempts >= config.retry.max_attempts || opened {
                        snails_obs::add(Obs::LlmCellsExhausted, 1);
                        return CellPlan {
                            seed: cell_seed,
                            attempts,
                            outcome: CellOutcome::Exhausted(kind.into()),
                        };
                    }
                    let wait_ms = config.retry.backoff_ms(attempts, cell_seed);
                    snails_obs::add(Obs::LlmResilienceBackoffMs, wait_ms);
                    self.clock_ms += wait_ms;
                }
            }
        }
    }
}

/// Outcome of executing one planned cell.
#[derive(Debug, Clone)]
pub enum CellExecution {
    /// Inference ran; `failure` is set when the payload was corrupted.
    Completed {
        /// The (possibly corrupted) workflow result.
        result: WorkflowResult,
        /// Payload-corruption failure, if any.
        failure: Option<FailureKind>,
    },
    /// No usable payload — the cell degrades to a failure record.
    Failed(FailureKind),
}

/// Execute one planned cell: the resilience middleware around
/// [`run_workflow`]. Pure function of `(plan, cell inputs)` — safe to call
/// from any worker in any order.
///
/// A [`CellOutcome::Panic`] plan genuinely panics (with the
/// [`faults::InjectedPanic`] marker) so the scheduler's per-cell isolation
/// is exercised for real; callers must run under a `catch_unwind` harness.
pub fn run_cell(
    plan: &CellPlan,
    workflow: Workflow,
    db: &SnailsDatabase,
    view: &SchemaView,
    pair: &GoldPair,
    global_seed: u64,
) -> CellExecution {
    match plan.outcome {
        CellOutcome::Skipped => CellExecution::Failed(FailureKind::CircuitOpen),
        CellOutcome::Exhausted(kind) => CellExecution::Failed(kind),
        CellOutcome::Panic => faults::injected_panic(),
        CellOutcome::Proceed { corruption } => {
            let mut result = run_workflow(workflow, db, view, pair, global_seed);
            if let Some(kind) = corruption {
                result.inference.raw_sql =
                    faults::corrupt_completion(kind, &result.inference.raw_sql, plan.seed);
            }
            CellExecution::Completed { result, failure: corruption.map(FailureKind::from) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let policy = RetryPolicy { jitter: 0.0, ..Default::default() };
        assert_eq!(policy.backoff_ms(0, 1), 0);
        assert_eq!(policy.backoff_ms(1, 1), 200);
        assert_eq!(policy.backoff_ms(2, 1), 400);
        assert_eq!(policy.backoff_ms(3, 1), 800);
        assert_eq!(policy.backoff_ms(4, 1), 1_600);
        assert_eq!(policy.backoff_ms(5, 1), 3_200);
        assert_eq!(policy.backoff_ms(6, 1), 5_000, "ceiling");
        assert_eq!(policy.backoff_ms(60, 1), 5_000, "huge counts stay capped");
    }

    #[test]
    fn backoff_jitter_is_bounded_and_deterministic() {
        let policy = RetryPolicy::default();
        for seed in 0..200u64 {
            for failed in 1..=6u32 {
                let a = policy.backoff_ms(failed, seed);
                let b = policy.backoff_ms(failed, seed);
                assert_eq!(a, b);
                let nominal = (200u64 << (failed - 1).min(32)).min(5_000) as f64;
                assert!(
                    (a as f64) >= nominal * 0.74 && (a as f64) <= nominal * 1.26,
                    "jittered {a} outside ±25% of {nominal}"
                );
            }
        }
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers() {
        let policy = BreakerPolicy { failure_threshold: 3, cooldown_ms: 1_000 };
        let mut b = CircuitBreaker::new(policy);
        assert_eq!(b.state(0), BreakerState::Closed);
        b.record_failure(10);
        b.record_failure(20);
        assert!(b.allows(20), "below threshold stays closed");
        b.record_failure(30);
        assert_eq!(b.state(30), BreakerState::Open);
        assert!(!b.allows(500), "open during cooldown");
        assert_eq!(b.trips(), 1);
        // Cooldown elapses → half-open probe allowed.
        assert!(b.allows(1_030));
        assert_eq!(b.state(1_030), BreakerState::HalfOpen);
        // Probe succeeds → closed, count reset.
        b.record_success();
        assert_eq!(b.state(1_031), BreakerState::Closed);
        b.record_failure(1_040);
        assert!(b.allows(1_040), "failure count was reset on close");
    }

    #[test]
    fn half_open_probe_failure_reopens_immediately() {
        let policy = BreakerPolicy { failure_threshold: 3, cooldown_ms: 1_000 };
        let mut b = CircuitBreaker::new(policy);
        for t in [1, 2, 3] {
            b.record_failure(t);
        }
        assert_eq!(b.state(3), BreakerState::Open);
        assert!(b.allows(2_000));
        b.record_failure(2_000);
        assert_eq!(b.state(2_000), BreakerState::Open, "probe failure reopens");
        assert_eq!(b.trips(), 2);
        assert!(!b.allows(2_500));
    }

    #[test]
    fn inert_profile_plans_every_cell_clean() {
        let mut planner = Planner::new(ResilienceConfig::default());
        for seed in 0..50 {
            let plan = planner.plan_cell("gpt-4o", seed);
            assert_eq!(plan.attempts, 1);
            assert_eq!(plan.outcome, CellOutcome::Proceed { corruption: None });
            assert_eq!(plan.retries(), 0);
        }
        assert_eq!(planner.breaker_trips(), 0);
    }

    #[test]
    fn planning_is_deterministic() {
        let config =
            ResilienceConfig { profile: FaultProfile::FLAKY, ..Default::default() };
        let run = || {
            let mut planner = Planner::new(config);
            (0..2_000u64).map(|s| planner.plan_cell("gpt-4o", s)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn flaky_planning_produces_retries_and_terminal_failures() {
        let config =
            ResilienceConfig { profile: FaultProfile::FLAKY, ..Default::default() };
        let mut planner = Planner::new(config);
        // Exhaustion needs max_attempts consecutive transient draws in one
        // cell (p ≈ 6.6e-5 under flaky), so sample widely.
        let plans: Vec<CellPlan> =
            (0..200_000u64).map(|s| planner.plan_cell("gpt-4o", s)).collect();
        let retries: u32 = plans.iter().map(CellPlan::retries).sum();
        let clean = plans
            .iter()
            .filter(|p| p.outcome == CellOutcome::Proceed { corruption: None })
            .count();
        let exhausted = plans
            .iter()
            .filter(|p| matches!(p.outcome, CellOutcome::Exhausted(_)))
            .count();
        let corrupted = plans
            .iter()
            .filter(|p| matches!(p.outcome, CellOutcome::Proceed { corruption: Some(_) }))
            .count();
        let panics =
            plans.iter().filter(|p| p.outcome == CellOutcome::Panic).count();
        assert!(retries > 0, "flaky must trigger retries");
        assert!(clean > 160_000, "most cells still succeed, got {clean}");
        assert!(exhausted > 0, "some cells exhaust retries");
        assert!(corrupted > 0, "some payloads corrupt");
        assert!(panics > 0, "some cells panic");
    }

    #[test]
    fn hostile_planning_trips_breakers_and_skips_cells() {
        let config =
            ResilienceConfig { profile: FaultProfile::HOSTILE, ..Default::default() };
        let mut planner = Planner::new(config);
        let plans: Vec<CellPlan> =
            (0..5_000u64).map(|s| planner.plan_cell("gpt-4o", s)).collect();
        assert!(planner.breaker_trips() > 0, "hostile must trip the breaker");
        assert!(
            plans.iter().any(|p| p.outcome == CellOutcome::Skipped),
            "an open breaker must skip at least one cell"
        );
    }

    #[test]
    fn breakers_are_per_model() {
        // Drive one model's breaker open with a hostile profile; a second
        // model planned at the same simulated time must still be allowed.
        let config = ResilienceConfig {
            profile: FaultProfile::HOSTILE,
            breaker: BreakerPolicy { failure_threshold: 2, cooldown_ms: u64::MAX / 2 },
            ..Default::default()
        };
        let mut planner = Planner::new(config);
        let mut saw_skip_a = false;
        for seed in 0..2_000u64 {
            let a = planner.plan_cell("model-a", seed);
            saw_skip_a |= a.outcome == CellOutcome::Skipped;
            if saw_skip_a {
                let b = planner.plan_cell("model-b", seed);
                assert_ne!(
                    b.outcome,
                    CellOutcome::Skipped,
                    "model-b's breaker never failed — must not be open"
                );
                break;
            }
        }
        assert!(saw_skip_a, "hostile profile with threshold 2 must skip eventually");
    }
}
