//! Deterministic fault injection for the simulated inference API.
//!
//! The paper's evaluation ran 48k+ hosted-API calls and had to absorb
//! transient vendor failures — timeouts, rate limits, truncated completions,
//! and 137 generations that never parsed (§5.2). The simulated zoo in
//! [`crate::generate`] models only the parse-failure tail; this module
//! supplies the rest of the failure surface so the harness can exercise
//! every path a hosted API produces, *deterministically*: every fault is a
//! pure function of `(cell seed, attempt number)`, so a given seed + profile
//! replays the exact same fault schedule at any thread count.

use crate::generate::mix_seed;
use std::any::Any;
use std::sync::Once;

/// The kind of fault injected into one simulated API attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// The call never returned within the deadline (transient; retryable).
    Timeout,
    /// HTTP 429 — the vendor shed load (transient; retryable).
    RateLimit,
    /// The completion came back cut off mid-token (transport success, but
    /// the payload is damaged — flows into the parse path).
    Truncated,
    /// The completion is not SQL at all: refusal prose, an error page, a
    /// malformed fence (transport success; the paper's unparseable tail).
    Garbage,
    /// The client-side handling of the response panics (a bug in the
    /// harness itself — must be isolated, never aborts the run).
    Panic,
}

impl FaultKind {
    /// Stable lowercase name, used in summaries and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Timeout => "timeout",
            FaultKind::RateLimit => "rate_limit",
            FaultKind::Truncated => "truncated",
            FaultKind::Garbage => "garbage",
            FaultKind::Panic => "panic",
        }
    }

    /// True for faults worth retrying: the next attempt may succeed and no
    /// payload was delivered. Corrupted payloads (`Truncated`/`Garbage`) are
    /// transport *successes* — a real client would not retry them — and a
    /// `Panic` never returns control to the retry loop at all.
    pub fn is_transient(self) -> bool {
        matches!(self, FaultKind::Timeout | FaultKind::RateLimit)
    }
}

/// Terminal failure classification recorded on a `QueryRecord` when a grid
/// cell could not produce a clean inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FailureKind {
    /// Retries exhausted on timeouts.
    Timeout,
    /// Retries exhausted on rate limits.
    RateLimit,
    /// The completion was delivered but cut off mid-token.
    Truncated,
    /// The completion was delivered but was not SQL.
    Garbage,
    /// The cell panicked and was isolated by the scheduler.
    Panic,
    /// The per-model circuit breaker was open; the call was never made.
    CircuitOpen,
    /// The predicted query exceeded an engine execution budget.
    ResourceExhausted,
}

impl FailureKind {
    /// All kinds, in summary display order.
    pub const ALL: [FailureKind; 7] = [
        FailureKind::Timeout,
        FailureKind::RateLimit,
        FailureKind::Truncated,
        FailureKind::Garbage,
        FailureKind::Panic,
        FailureKind::CircuitOpen,
        FailureKind::ResourceExhausted,
    ];

    /// Stable lowercase name, used in summaries and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Timeout => "timeout",
            FailureKind::RateLimit => "rate_limit",
            FailureKind::Truncated => "truncated",
            FailureKind::Garbage => "garbage",
            FailureKind::Panic => "panic",
            FailureKind::CircuitOpen => "circuit_open",
            FailureKind::ResourceExhausted => "resource_exhausted",
        }
    }
}

impl From<FaultKind> for FailureKind {
    fn from(f: FaultKind) -> FailureKind {
        match f {
            FaultKind::Timeout => FailureKind::Timeout,
            FaultKind::RateLimit => FailureKind::RateLimit,
            FaultKind::Truncated => FailureKind::Truncated,
            FaultKind::Garbage => FailureKind::Garbage,
            FaultKind::Panic => FailureKind::Panic,
        }
    }
}

/// Per-attempt fault rates for the simulated API.
///
/// Rates are independent per `(cell, attempt)` draw; a single uniform draw
/// is bucketed against the cumulative rates, so at most one fault fires per
/// attempt and `Σ rates` must stay ≤ 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Preset name (`none` / `flaky` / `hostile`).
    pub name: &'static str,
    /// P(timeout) per attempt.
    pub timeout: f64,
    /// P(rate limit) per attempt.
    pub rate_limit: f64,
    /// P(truncated completion) per attempt.
    pub truncated: f64,
    /// P(garbage completion) per attempt.
    pub garbage: f64,
    /// P(client-side panic) per attempt.
    pub panic: f64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::NONE
    }
}

impl FaultProfile {
    /// No faults — byte-identical to running without the fault layer.
    pub const NONE: FaultProfile = FaultProfile {
        name: "none",
        timeout: 0.0,
        rate_limit: 0.0,
        truncated: 0.0,
        garbage: 0.0,
        panic: 0.0,
    };

    /// ≈ 10% transient fault rate: what a long hosted-API run actually
    /// looks like. Most faults retry away; a small tail exhausts retries,
    /// corrupts a completion, or panics.
    pub const FLAKY: FaultProfile = FaultProfile {
        name: "flaky",
        timeout: 0.05,
        rate_limit: 0.04,
        truncated: 0.015,
        garbage: 0.005,
        panic: 0.002,
    };

    /// A vendor having a very bad day: heavy shedding, frequent corruption.
    /// Exists to exercise breaker trips and the exhausted-retry path hard.
    pub const HOSTILE: FaultProfile = FaultProfile {
        name: "hostile",
        timeout: 0.22,
        rate_limit: 0.12,
        truncated: 0.08,
        garbage: 0.04,
        panic: 0.02,
    };

    /// Look up a preset by name.
    pub fn by_name(name: &str) -> Option<FaultProfile> {
        match name {
            "none" => Some(FaultProfile::NONE),
            "flaky" => Some(FaultProfile::FLAKY),
            "hostile" => Some(FaultProfile::HOSTILE),
            _ => None,
        }
    }

    /// True when every rate is zero (the fault layer can be skipped
    /// entirely, guaranteeing byte-identical records to a faultless run).
    pub fn is_inert(&self) -> bool {
        self.timeout == 0.0
            && self.rate_limit == 0.0
            && self.truncated == 0.0
            && self.garbage == 0.0
            && self.panic == 0.0
    }

    /// Draw the fault (if any) for one attempt — a pure function of
    /// `(cell_seed, attempt)`.
    pub fn draw(&self, cell_seed: u64, attempt: u32) -> Option<FaultKind> {
        if self.is_inert() {
            return None;
        }
        let u = unit(mix_seed(&["fault-draw"], &[cell_seed, u64::from(attempt)]));
        let mut acc = self.timeout;
        if u < acc {
            return Some(FaultKind::Timeout);
        }
        acc += self.rate_limit;
        if u < acc {
            return Some(FaultKind::RateLimit);
        }
        acc += self.truncated;
        if u < acc {
            return Some(FaultKind::Truncated);
        }
        acc += self.garbage;
        if u < acc {
            return Some(FaultKind::Garbage);
        }
        acc += self.panic;
        if u < acc {
            return Some(FaultKind::Panic);
        }
        None
    }

    /// Collapse the per-attempt retry loop into its terminal outcome — a
    /// pure function of `(seed, max_retries)`.
    ///
    /// Transient faults ([`FaultKind::is_transient`]) redraw on the next
    /// attempt until one succeeds or the retry budget (`max_retries`
    /// attempts *beyond* the first) is exhausted; the first clean draw or
    /// non-transient fault is terminal. Returns the terminal fault (if any)
    /// and the number of attempts consumed. Callers that don't replay
    /// payload corruption themselves (the serve layer, which has no
    /// completion to corrupt for transient kinds) use this instead of
    /// hand-rolling the loop the resilience middleware already owns.
    pub fn draw_terminal(&self, seed: u64, max_retries: u32) -> (Option<FaultKind>, u32) {
        for attempt in 1..=(1 + max_retries) {
            match self.draw(seed, attempt) {
                None => return (None, attempt),
                Some(kind) if !kind.is_transient() => return (Some(kind), attempt),
                Some(kind) if attempt == 1 + max_retries => return (Some(kind), attempt),
                Some(_) => {}
            }
        }
        unreachable!("loop returns on every branch of its final iteration")
    }
}

/// Uniform `[0, 1)` from a mixed seed.
///
/// `mix_seed` is FNV-1a, whose *high* bits avalanche poorly for short
/// inputs; a SplitMix64 finalizer scrambles the full word before the top
/// 53 bits become the mantissa.
pub(crate) fn unit(seed: u64) -> f64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Canned non-SQL completions for [`FaultKind::Garbage`]: refusal prose, a
/// broken fence, an HTML error page, a JSON error body — the shapes the
/// paper's 137 unparseable generations actually took.
const GARBAGE_COMPLETIONS: [&str; 4] = [
    "I'm sorry, but I can't generate a SQL query for this request without \
     more information about the schema.",
    "```sql\nSELECT -- the model stopped here and never closed the fence",
    "<html><head><title>502 Bad Gateway</title></head><body>upstream \
     connect error</body></html>",
    "{\"error\": {\"type\": \"overloaded_error\", \"message\": \"Overloaded\", \
     \"code\": 529}}",
];

/// Corrupt a completed generation according to `kind`.
///
/// * `Truncated`: cut at a deterministic 40–80% of the character length
///   (always on a char boundary), mimicking a connection dropped mid-stream;
/// * `Garbage`: replace the whole payload with a canned non-SQL completion.
///
/// Other kinds return the input unchanged (they never deliver a payload).
pub fn corrupt_completion(kind: FaultKind, raw: &str, cell_seed: u64) -> String {
    match kind {
        FaultKind::Truncated => {
            let chars: Vec<char> = raw.chars().collect();
            if chars.is_empty() {
                return String::new();
            }
            let u = unit(mix_seed(&["truncate-at"], &[cell_seed]));
            let frac = 0.4 + 0.4 * u;
            let keep = ((chars.len() as f64 * frac) as usize).max(1).min(chars.len());
            chars[..keep].iter().collect()
        }
        FaultKind::Garbage => {
            let pick = mix_seed(&["garbage-pick"], &[cell_seed]) as usize
                % GARBAGE_COMPLETIONS.len();
            GARBAGE_COMPLETIONS[pick].to_owned()
        }
        _ => raw.to_owned(),
    }
}

/// Marker payload for injected panics, so the scheduler (and the panic hook)
/// can tell a *simulated* client bug from a real one.
#[derive(Debug)]
pub struct InjectedPanic;

/// Panic with the [`InjectedPanic`] marker payload. The benchmark scheduler
/// catches it per cell; [`silence_injected_panics`] keeps it off stderr.
pub fn injected_panic() -> ! {
    std::panic::panic_any(InjectedPanic)
}

/// True when a caught panic payload is an [`InjectedPanic`].
pub fn is_injected_panic(payload: &(dyn Any + Send)) -> bool {
    payload.is::<InjectedPanic>()
}

/// Install (once, never removed) a panic hook that suppresses the default
/// "thread panicked" stderr noise for [`InjectedPanic`] payloads only; every
/// other panic is forwarded to the previously installed hook untouched.
///
/// Installing once and never restoring avoids the take/set races that
/// plague scoped hook swaps under parallel tests.
pub fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !info.payload().is::<InjectedPanic>() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_by_name() {
        assert_eq!(FaultProfile::by_name("none"), Some(FaultProfile::NONE));
        assert_eq!(FaultProfile::by_name("flaky"), Some(FaultProfile::FLAKY));
        assert_eq!(FaultProfile::by_name("hostile"), Some(FaultProfile::HOSTILE));
        assert_eq!(FaultProfile::by_name("nope"), None);
        assert!(FaultProfile::NONE.is_inert());
        assert!(!FaultProfile::FLAKY.is_inert());
    }

    #[test]
    fn none_profile_never_draws() {
        for seed in 0..500u64 {
            for attempt in 1..=4 {
                assert_eq!(FaultProfile::NONE.draw(seed, attempt), None);
            }
        }
    }

    #[test]
    fn draws_are_deterministic_and_rate_plausible() {
        let profile = FaultProfile::FLAKY;
        let mut faults = 0usize;
        let n = 20_000u64;
        for seed in 0..n {
            let a = profile.draw(seed, 1);
            let b = profile.draw(seed, 1);
            assert_eq!(a, b, "same (seed, attempt) must draw the same fault");
            faults += usize::from(a.is_some());
        }
        let rate = faults as f64 / n as f64;
        let expected = profile.timeout
            + profile.rate_limit
            + profile.truncated
            + profile.garbage
            + profile.panic;
        assert!(
            (rate - expected).abs() < 0.02,
            "empirical rate {rate:.3} vs configured {expected:.3}"
        );
    }

    #[test]
    fn attempts_draw_independently() {
        // With a ~11% per-attempt rate, a fault on attempt 1 must not imply
        // a fault on attempt 2 — find a seed where they differ.
        let profile = FaultProfile::FLAKY;
        let differs = (0..2000u64).any(|s| profile.draw(s, 1) != profile.draw(s, 2));
        assert!(differs);
    }

    #[test]
    fn draw_terminal_matches_a_hand_rolled_retry_loop() {
        let profile = FaultProfile::HOSTILE;
        for seed in 0..2000u64 {
            for budget in [0u32, 1, 3] {
                let (terminal, attempts) = profile.draw_terminal(seed, budget);
                // Reference loop: retry transients up to `budget` times.
                let mut want = None;
                let mut want_attempts = 0;
                for attempt in 1..=(1 + budget) {
                    want_attempts = attempt;
                    match profile.draw(seed, attempt) {
                        Some(k) if k.is_transient() && attempt <= budget => continue,
                        other => {
                            want = other;
                            break;
                        }
                    }
                }
                assert_eq!((terminal, attempts), (want, want_attempts), "seed {seed} budget {budget}");
                assert!(attempts >= 1 && attempts <= 1 + budget);
                if let Some(k) = terminal {
                    if k.is_transient() {
                        assert_eq!(attempts, 1 + budget, "transient terminal only at exhaustion");
                    }
                }
            }
        }
        // Inert profile: one clean attempt, always.
        assert_eq!(FaultProfile::NONE.draw_terminal(42, 5), (None, 1));
    }

    #[test]
    fn truncation_is_shorter_and_char_safe() {
        let sql = "SELECT Naïve, Café FROM tbl_Übersicht WHERE x = 'ému'";
        for seed in 0..100 {
            let cut = corrupt_completion(FaultKind::Truncated, sql, seed);
            assert!(cut.chars().count() < sql.chars().count());
            assert!(!cut.is_empty());
            assert!(sql.starts_with(&cut));
        }
        assert_eq!(corrupt_completion(FaultKind::Truncated, "", 7), "");
    }

    #[test]
    fn garbage_is_not_parseable_sql() {
        for seed in 0..16 {
            let g = corrupt_completion(FaultKind::Garbage, "SELECT 1", seed);
            assert!(snails_sql::parse(&g).is_err(), "garbage parsed: {g}");
        }
    }

    #[test]
    fn non_payload_faults_leave_input_unchanged() {
        assert_eq!(corrupt_completion(FaultKind::Timeout, "SELECT 1", 3), "SELECT 1");
        assert_eq!(corrupt_completion(FaultKind::RateLimit, "SELECT 1", 3), "SELECT 1");
    }

    #[test]
    fn injected_panics_are_recognizable() {
        silence_injected_panics();
        let caught = std::panic::catch_unwind(|| injected_panic()).unwrap_err();
        assert!(is_injected_panic(caught.as_ref()));
        let other = std::panic::catch_unwind(|| panic!("real bug")).unwrap_err();
        assert!(!is_injected_panic(other.as_ref()));
    }
}
