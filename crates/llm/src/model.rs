//! The simulated model zoo.
//!
//! Each model is a parameter set consumed by [`crate::linking`] and
//! [`crate::generate`]. Parameters are calibrated against the paper's
//! Figure 30 execution-accuracy grid and the Figure 9/10 linking results:
//!
//! * GPT-4o and Gemini 1.5 have the highest overall accuracy and the lowest
//!   sensitivity to the Regular↔Low difference;
//! * GPT-3.5 sits mid-pack;
//! * Phind-CodeLlama and CodeS are the weakest and the most
//!   naturalness-sensitive (highest Kendall-τ in tables 32a–47b);
//! * every model drops sharply at Least (≈20% QueryRecall drop).

use std::fmt;

/// The five models evaluated in the paper (§4.2), zero-shot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelKind {
    /// Google Gemini 1.5 Pro.
    Gemini15Pro,
    /// OpenAI GPT-4o.
    Gpt4o,
    /// OpenAI GPT-3.5 Turbo (16k).
    Gpt35,
    /// Phind-CodeLlama-34B-v2.
    PhindCodeLlama,
    /// CodeS (StarCoder finetuned for NL-to-SQL).
    CodeS,
}

impl ModelKind {
    /// All models, results-figure order.
    pub const ALL: [ModelKind; 5] = [
        ModelKind::Gemini15Pro,
        ModelKind::Gpt4o,
        ModelKind::Gpt35,
        ModelKind::PhindCodeLlama,
        ModelKind::CodeS,
    ];

    /// Paper display name.
    pub fn display_name(&self) -> &'static str {
        match self {
            ModelKind::Gemini15Pro => "gemini-1.5-pro",
            ModelKind::Gpt4o => "gpt-4o",
            ModelKind::Gpt35 => "gpt-3.5",
            ModelKind::PhindCodeLlama => "Phind-CodeLlama-34B-v2",
            ModelKind::CodeS => "CodeS",
        }
    }

    /// The model's simulation parameters.
    pub fn config(&self) -> ModelConfig {
        match self {
            // Calibration anchors (Figure 30): Native exec acc ≈ 0.17–0.72
            // across databases, Least ≈ 0.19–0.62; lowest τ sensitivity.
            ModelKind::Gemini15Pro => ModelConfig {
                name: self.display_name(),
                structure_skill: 0.76,
                word_decode: 0.995,
                abbrev_decode: 0.93,
                opaque_decode: 0.70,
                distraction: 0.20,
                hallucination: 0.25,
                guess_natural: 0.35,
                extra_column_rate: 0.15,
                syntax_failure: 0.01,
                chain_factor: 1.0,
            },
            // Highest overall accuracy (Native 0.29–0.82).
            ModelKind::Gpt4o => ModelConfig {
                name: self.display_name(),
                structure_skill: 0.86,
                word_decode: 0.995,
                abbrev_decode: 0.94,
                opaque_decode: 0.72,
                distraction: 0.18,
                hallucination: 0.22,
                guess_natural: 0.35,
                extra_column_rate: 0.15,
                syntax_failure: 0.01,
                chain_factor: 1.0,
            },
            // Mid-pack, visibly naturalness-sensitive (Native 0.13–0.72,
            // Least 0.08–0.50).
            ModelKind::Gpt35 => ModelConfig {
                name: self.display_name(),
                structure_skill: 0.75,
                word_decode: 0.99,
                abbrev_decode: 0.82,
                opaque_decode: 0.60,
                distraction: 0.28,
                hallucination: 0.35,
                guess_natural: 0.25,
                extra_column_rate: 0.20,
                syntax_failure: 0.02,
                chain_factor: 1.0,
            },
            // Weakest open model: Native 0.07–0.62, Least 0.00–0.30, highest
            // τ correlations.
            ModelKind::PhindCodeLlama => ModelConfig {
                name: self.display_name(),
                structure_skill: 0.62,
                word_decode: 0.985,
                abbrev_decode: 0.72,
                opaque_decode: 0.42,
                distraction: 0.36,
                hallucination: 0.45,
                guess_natural: 0.18,
                extra_column_rate: 0.25,
                syntax_failure: 0.05,
                chain_factor: 1.0,
            },
            // Finetuned small model; comparable to Phind with slightly higher
            // Regular-level gains (Figure 30 Regular column).
            ModelKind::CodeS => ModelConfig {
                name: self.display_name(),
                structure_skill: 0.60,
                word_decode: 0.985,
                abbrev_decode: 0.70,
                opaque_decode: 0.40,
                distraction: 0.36,
                hallucination: 0.40,
                guess_natural: 0.20,
                extra_column_rate: 0.22,
                syntax_failure: 0.04,
                chain_factor: 1.0,
            },
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

/// Simulation parameters for one model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Display name.
    pub name: &'static str,
    /// Probability of reproducing the correct query structure for a query of
    /// baseline complexity (decays with clause complexity).
    pub structure_skill: f64,
    /// Per-token decode probability for dictionary words / common acronyms.
    pub word_decode: f64,
    /// Per-token decode probability for recognizable abbreviations
    /// (conventional table, recognizable acronyms, expandable skeletons).
    pub abbrev_decode: f64,
    /// Per-token decode probability for opaque (Least) tokens.
    pub opaque_decode: f64,
    /// Sensitivity to schema size: link probability shrinks with the number
    /// of displayed columns (distractors).
    pub distraction: f64,
    /// Given a failed link: probability of a typo-like hallucination of the
    /// displayed identifier (vs selecting a plausible distractor).
    pub hallucination: f64,
    /// Given a failed link that did not hallucinate: probability of emitting
    /// the *natural guess* (snake_case mention words). On Regular-variant
    /// schemas the guess often coincides with the displayed name — natural
    /// schemas make guessing work.
    pub guess_natural: f64,
    /// Probability of projecting extra, not-required columns.
    pub extra_column_rate: f64,
    /// Probability of emitting unparseable output (the paper excludes 137
    /// such generations from linking analysis).
    pub syntax_failure: f64,
    /// Workflow chaining multiplier on structure skill (DIN-SQL/CodeS set
    /// this below 1.0).
    pub chain_factor: f64,
}

impl ModelConfig {
    /// Decode probability for a token of the given class.
    pub fn decode_prob(&self, class: TokenClass) -> f64 {
        match class {
            TokenClass::Word => self.word_decode,
            TokenClass::Abbreviation => self.abbrev_decode,
            TokenClass::Opaque => self.opaque_decode,
            TokenClass::Numeric => 1.0,
        }
    }
}

/// Lexical classes of identifier tokens, from the linker's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenClass {
    /// Dictionary word or common acronym.
    Word,
    /// Recognizable abbreviation (conventional table / expandable skeleton).
    Abbreviation,
    /// Opaque skeleton requiring documentation.
    Opaque,
    /// Digits.
    Numeric,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_ordering_matches_paper() {
        // Overall capability: gpt-4o ≥ gemini > gpt-3.5 > phind ≈ codes.
        let skill = |m: ModelKind| m.config().structure_skill;
        assert!(skill(ModelKind::Gpt4o) >= skill(ModelKind::Gemini15Pro));
        assert!(skill(ModelKind::Gemini15Pro) > skill(ModelKind::Gpt35));
        assert!(skill(ModelKind::Gpt35) > skill(ModelKind::PhindCodeLlama));
    }

    #[test]
    fn sensitivity_ordering_matches_paper() {
        // Naturalness sensitivity (gap between word and opaque decoding) is
        // largest for the open-source models.
        let gap = |m: ModelKind| {
            let c = m.config();
            c.word_decode - c.opaque_decode
        };
        assert!(gap(ModelKind::PhindCodeLlama) > gap(ModelKind::Gpt35));
        assert!(gap(ModelKind::Gpt35) > gap(ModelKind::Gpt4o));
        assert!(gap(ModelKind::CodeS) > gap(ModelKind::Gemini15Pro));
    }

    #[test]
    fn decode_probs_ordered_by_class() {
        for m in ModelKind::ALL {
            let c = m.config();
            assert!(c.decode_prob(TokenClass::Word) > c.decode_prob(TokenClass::Abbreviation));
            assert!(
                c.decode_prob(TokenClass::Abbreviation) > c.decode_prob(TokenClass::Opaque)
            );
            assert_eq!(c.decode_prob(TokenClass::Numeric), 1.0);
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            ModelKind::ALL.iter().map(|m| m.display_name()).collect();
        assert_eq!(names.len(), ModelKind::ALL.len());
    }

    #[test]
    fn probabilities_in_range() {
        for m in ModelKind::ALL {
            let c = m.config();
            for p in [
                c.structure_skill,
                c.word_decode,
                c.abbrev_decode,
                c.opaque_decode,
                c.distraction,
                c.hallucination,
                c.guess_natural,
                c.extra_column_rate,
                c.syntax_failure,
                c.chain_factor,
            ] {
                assert!((0.0..=1.0).contains(&p), "{}: {p}", c.name);
            }
        }
    }
}
