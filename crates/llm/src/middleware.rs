//! Naturalization middleware (appendix D.2 / D.4, appendix H.2).
//!
//! During virtual-schema runs the prompt presents modified identifiers
//! ("naturalization") and generated queries are converted back to the Native
//! namespace before execution ("denaturalization"). This is also the
//! middleware deployment pattern of appendix H.2 for practitioners without
//! write access to the target database.

use crate::schema_view::{build_prompt, SchemaView};
use snails_data::SnailsDatabase;
use snails_naturalness::category::SchemaVariant;
use snails_sql::{denaturalize_query, IdentifierMap, ParseError};

/// Build the (possibly naturalness-modified) zero-shot prompt for a
/// database, variant, and question.
pub fn naturalize_prompt(db: &SnailsDatabase, variant: SchemaVariant, question: &str) -> String {
    let view = SchemaView::new(db, variant);
    build_prompt(&view, question)
}

/// The variant → Native identifier map for a database.
pub fn denaturalization_map(db: &SnailsDatabase, variant: SchemaVariant) -> IdentifierMap {
    db.crosswalk.variant_to_native(variant)
}

/// Convert a generated query from the variant namespace back to Native.
///
/// Identifiers the map does not know (hallucinations, natural guesses on
/// non-Regular variants) pass through unchanged and will fail at execution —
/// matching the behaviour of the paper's pipeline.
pub fn denaturalize(
    db: &SnailsDatabase,
    variant: SchemaVariant,
    raw_sql: &str,
) -> Result<String, ParseError> {
    denaturalize_query(raw_sql, &denaturalization_map(db, variant))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snails_data::build_database;
    use snails_data::core_schema::CoreRole;

    #[test]
    fn prompt_uses_variant_identifiers() {
        let db = build_database("CWO");
        let native_prompt = naturalize_prompt(&db, SchemaVariant::Native, "q?");
        let least_prompt = naturalize_prompt(&db, SchemaVariant::Least, "q?");
        assert_ne!(native_prompt, least_prompt);
        // The Least prompt shows the Least rendering of the event table.
        let entry = db
            .crosswalk
            .entry(&db.core.native(CoreRole::EventTable))
            .unwrap();
        assert!(least_prompt.contains(&format!("#{} (", entry.renderings[2])));
    }

    #[test]
    fn denaturalize_round_trips_gold_query() {
        let db = build_database("CWO");
        let variant = SchemaVariant::Least;
        // Naturalize the gold query (native → least) then denaturalize back.
        let fwd = db.crosswalk.native_to_variant(variant);
        let pair = &db.questions[0];
        let least_sql = snails_sql::denaturalize_query(&pair.sql, &fwd).unwrap();
        let back = denaturalize(&db, variant, &least_sql).unwrap();
        assert_eq!(
            back.to_ascii_uppercase(),
            snails_sql::normalize(&pair.sql).unwrap().to_ascii_uppercase()
        );
    }

    #[test]
    fn denaturalized_queries_execute() {
        let db = build_database("CWO");
        let variant = SchemaVariant::Low;
        let fwd = db.crosswalk.native_to_variant(variant);
        for pair in db.questions.iter().take(10) {
            let low_sql = snails_sql::denaturalize_query(&pair.sql, &fwd).unwrap();
            let native_sql = denaturalize(&db, variant, &low_sql).unwrap();
            let rs = snails_engine::run_sql(&db.db, &native_sql)
                .unwrap_or_else(|e| panic!("q{}: {e}\n{native_sql}", pair.id));
            assert!(!rs.is_empty());
        }
    }

    #[test]
    fn unknown_identifiers_pass_through() {
        let db = build_database("CWO");
        let out = denaturalize(&db, SchemaVariant::Least, "SELECT madeup FROM nowhere").unwrap();
        assert!(out.contains("madeup"));
        assert!(out.contains("nowhere"));
        // ... and fail at execution, as in the paper's pipeline.
        assert!(snails_engine::run_sql(&db.db, &out).is_err());
    }

    #[test]
    fn native_variant_is_identity() {
        let db = build_database("CWO");
        let sql = &db.questions[0].sql;
        let out = denaturalize(&db, SchemaVariant::Native, sql).unwrap();
        assert_eq!(out, snails_sql::normalize(sql).unwrap());
    }
}
