//! Natural views (§6 discussion, appendix H.2).
//!
//! Rather than renaming a production schema, a DBA can expose a `db_nl`
//! schema of views that map Regular-naturalness identifiers onto the Native
//! tables. The LLM prompts against the natural view names; generated queries
//! execute directly — no middleware required — while existing integrations
//! keep talking to the Native schema.

use snails_data::SnailsDatabase;
use snails_engine::{apply_ddl, Database, EngineError};
use snails_modify::crosswalk::Crosswalk;
use snails_sql::render::quoted;

/// The schema namespace used for natural views.
pub const NATURAL_SCHEMA: &str = "db_nl";

/// Generate `CREATE VIEW` DDL for every table: Regular-named views over the
/// Native schema (the appendix H.2 `classify_rename_and_build_view`
/// prototype).
pub fn natural_view_ddl(db: &Database, crosswalk: &Crosswalk) -> Vec<String> {
    let regular = |native: &str| -> String {
        crosswalk
            .entry(native)
            .map(|e| e.renderings[0].clone())
            .unwrap_or_else(|| native.to_owned())
    };
    let mut ddl = Vec::with_capacity(db.table_count());
    for table in db.tables() {
        let native_table = &table.schema.name;
        let mut stmt = format!(
            "CREATE VIEW {NATURAL_SCHEMA}.{} AS SELECT ",
            quoted(&regular(native_table))
        );
        for (i, col) in table.schema.columns.iter().enumerate() {
            if i > 0 {
                stmt.push_str(", ");
            }
            let natural = regular(&col.name);
            stmt.push_str(&format!("{} AS {}", quoted(&col.name), quoted(&natural)));
            // The view shadows the native table for unqualified references,
            // so keep each column reachable under its native spelling too.
            if !natural.eq_ignore_ascii_case(&col.name) {
                stmt.push_str(&format!(", {0} AS {0}", quoted(&col.name)));
            }
        }
        stmt.push_str(&format!(" FROM dbo.{}", quoted(native_table)));
        ddl.push(stmt);
    }
    ddl
}

/// Create the natural views inside the database.
pub fn install_natural_views(
    db: &mut Database,
    crosswalk: &Crosswalk,
) -> Result<usize, EngineError> {
    let ddl = natural_view_ddl(db, crosswalk);
    let mut installed = 0;
    for stmt_sql in &ddl {
        let stmt = snails_sql::parse(stmt_sql).map_err(EngineError::from_parse)?;
        apply_ddl(db, &stmt)?;
        installed += 1;
    }
    Ok(installed)
}

/// Install natural views on a SNAILS database (convenience wrapper).
pub fn naturalize_database(db: &mut SnailsDatabase) -> Result<usize, EngineError> {
    let crosswalk = db.crosswalk.clone();
    install_natural_views(&mut db.db, &crosswalk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snails_data::build_database;
    use snails_data::core_schema::CoreRole;

    #[test]
    fn ddl_covers_every_table() {
        let d = build_database("CWO");
        let ddl = natural_view_ddl(&d.db, &d.crosswalk);
        assert_eq!(ddl.len(), d.db.table_count());
        for stmt in &ddl {
            assert!(stmt.starts_with("CREATE VIEW db_nl."), "{stmt}");
            snails_sql::parse(stmt).unwrap_or_else(|e| panic!("{e}: {stmt}"));
        }
    }

    #[test]
    fn views_install_and_answer_queries() {
        let mut d = build_database("CWO");
        let installed = naturalize_database(&mut d).unwrap();
        assert_eq!(installed, 13);

        // Query through the natural (Regular) names.
        let event_regular = d
            .crosswalk
            .entry(&d.core.native(CoreRole::EventTable))
            .unwrap()
            .renderings[0]
            .clone();
        let sql = format!("SELECT COUNT(*) FROM db_nl.{}", snails_sql::render::quoted(&event_regular));
        let rs = snails_engine::run_sql(&d.db, &sql).unwrap();
        assert_eq!(
            rs.scalar().and_then(snails_engine::Value::as_i64),
            Some(snails_data::builder::EVENT_ROWS as i64)
        );
    }

    #[test]
    fn view_results_match_native_results() {
        let mut d = build_database("CWO");
        naturalize_database(&mut d).unwrap();
        let status_native = d.core.native(CoreRole::EventStatus);
        let event_native = d.core.native(CoreRole::EventTable);
        let status_regular = d.crosswalk.entry(&status_native).unwrap().renderings[0].clone();
        let event_regular = d.crosswalk.entry(&event_native).unwrap().renderings[0].clone();
        let q = |table: &str, col: &str, schema: &str| {
            let sql = format!(
                "SELECT {c}, COUNT(*) FROM {schema}{t} GROUP BY {c} ORDER BY {c}",
                c = snails_sql::render::quoted(col),
                t = snails_sql::render::quoted(table),
            );
            snails_engine::run_sql(&d.db, &sql).unwrap()
        };
        let native = q(&event_native, &status_native, "");
        let via_view = q(&event_regular, &status_regular, "db_nl.");
        assert_eq!(native.rows, via_view.rows);
    }

    #[test]
    fn native_schema_untouched_by_views() {
        let mut d = build_database("CWO");
        let before = d.db.identifier_names();
        naturalize_database(&mut d).unwrap();
        assert_eq!(d.db.identifier_names(), before);
    }
}
