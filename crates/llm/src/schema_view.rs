//! The displayed schema: identifiers at the active naturalness variant.

use snails_data::SnailsDatabase;
use snails_naturalness::category::SchemaVariant;
use snails_sql::IdentifierMap;

/// One displayed column.
#[derive(Debug, Clone)]
pub struct ViewColumn {
    /// Name as shown in the prompt (variant rendering).
    pub displayed: String,
    /// The underlying native identifier.
    pub native: String,
    /// Declared SQL type name (prompt schema knowledge).
    pub sql_type: &'static str,
}

/// One displayed table.
#[derive(Debug, Clone)]
pub struct ViewTable {
    /// Name as shown in the prompt.
    pub displayed: String,
    /// The underlying native identifier.
    pub native: String,
    /// Displayed columns.
    pub columns: Vec<ViewColumn>,
}

/// The schema as the model sees it: prompt tables only (module-pruned for
/// SBOD), each identifier rendered at the variant level.
#[derive(Debug, Clone)]
pub struct SchemaView {
    /// Database name.
    pub database: String,
    /// Active variant.
    pub variant: SchemaVariant,
    /// Displayed tables.
    pub tables: Vec<ViewTable>,
}

impl SchemaView {
    /// Build the displayed schema for a database at a variant.
    pub fn new(db: &SnailsDatabase, variant: SchemaVariant) -> Self {
        let map = db.crosswalk.native_to_variant(variant);
        let mut tables = Vec::with_capacity(db.prompt_tables.len());
        for table_name in &db.prompt_tables {
            let table = db.db.table(table_name).expect("prompt table exists");
            let columns = table
                .schema
                .columns
                .iter()
                .map(|c| ViewColumn {
                    displayed: map.resolve(&c.name).to_owned(),
                    native: c.name.clone(),
                    sql_type: c.data_type.sql_name(),
                })
                .collect();
            tables.push(ViewTable {
                displayed: map.resolve(table_name).to_owned(),
                native: table_name.clone(),
                columns,
            });
        }
        SchemaView { database: db.spec.name.to_owned(), variant, tables }
    }

    /// Restrict the view to the given displayed table names (schema
    /// subsetting output).
    pub fn restricted_to(&self, displayed_tables: &[String]) -> SchemaView {
        let keep: std::collections::HashSet<String> = displayed_tables
            .iter()
            .map(|t| t.to_ascii_uppercase())
            .collect();
        SchemaView {
            database: self.database.clone(),
            variant: self.variant,
            tables: self
                .tables
                .iter()
                .filter(|t| keep.contains(&t.displayed.to_ascii_uppercase()))
                .cloned()
                .collect(),
        }
    }

    /// Total displayed column count (the distraction scale).
    pub fn column_count(&self) -> usize {
        self.tables.iter().map(|t| t.columns.len()).sum()
    }

    /// Look up a displayed table by native name.
    pub fn table_by_native(&self, native: &str) -> Option<&ViewTable> {
        self.tables
            .iter()
            .find(|t| t.native.eq_ignore_ascii_case(native))
    }

    /// Look up the displayed name of a native column (searching all tables).
    pub fn column_by_native(&self, native: &str) -> Option<&ViewColumn> {
        self.tables
            .iter()
            .flat_map(|t| &t.columns)
            .find(|c| c.native.eq_ignore_ascii_case(native))
    }

    /// The displayed → native identifier map for query denaturalization.
    pub fn displayed_to_native(&self) -> IdentifierMap {
        let mut map = IdentifierMap::new();
        for t in &self.tables {
            map.insert(&t.displayed, &t.native);
            for c in &t.columns {
                map.insert(&c.displayed, &c.native);
            }
        }
        map
    }
}

/// Render the zero-shot prompt of appendix D.1: task instructions, `#Table
/// (Col type, ...)` schema knowledge lines, and the NL question.
pub fn build_prompt(view: &SchemaView, question: &str) -> String {
    let mut prompt = String::with_capacity(4096);
    prompt.push_str(
        "For the database described next, provide only a sql query. \
         do not include any text that is not valid SQL.\n",
    );
    prompt.push_str(&format!("#Database: {}\n", view.database));
    prompt.push_str("#MS SQL Server tables, with their properties:\n");
    for t in &view.tables {
        prompt.push('#');
        prompt.push_str(&t.displayed);
        prompt.push_str(" (");
        for (i, c) in t.columns.iter().enumerate() {
            if i > 0 {
                prompt.push_str(", ");
            }
            prompt.push_str(&c.displayed);
            prompt.push(' ');
            prompt.push_str(c.sql_type);
        }
        prompt.push_str(")\n");
    }
    prompt.push_str(
        "### a sql query, written in the MS SQL Server dialect, to answer the question: ",
    );
    prompt.push_str(question);
    prompt.push('\n');
    prompt
}

#[cfg(test)]
mod tests {
    use super::*;
    use snails_data::build_database;

    #[test]
    fn native_view_shows_native_names() {
        let db = build_database("CWO");
        let view = SchemaView::new(&db, SchemaVariant::Native);
        for t in &view.tables {
            assert_eq!(t.displayed, t.native);
            for c in &t.columns {
                assert_eq!(c.displayed, c.native);
            }
        }
        assert_eq!(view.tables.len(), 13);
        assert_eq!(view.column_count(), 71);
    }

    #[test]
    fn regular_view_is_snake_case_words() {
        let db = build_database("CWO");
        let view = SchemaView::new(&db, SchemaVariant::Regular);
        // Regular renderings are snake_case full words; spot-check that the
        // displayed names differ from any Least-style skeletons.
        let mut changed = 0;
        for t in &view.tables {
            if t.displayed != t.native {
                changed += 1;
            }
        }
        assert!(changed > 0, "Regular view identical to native");
    }

    #[test]
    fn displayed_to_native_round_trips() {
        let db = build_database("CWO");
        let view = SchemaView::new(&db, SchemaVariant::Least);
        let map = view.displayed_to_native();
        for t in &view.tables {
            assert_eq!(map.get(&t.displayed), Some(t.native.as_str()));
        }
    }

    #[test]
    fn prompt_format_matches_appendix_d1() {
        let db = build_database("CWO");
        let view = SchemaView::new(&db, SchemaVariant::Native);
        let prompt = build_prompt(&view, "How many sightings were recorded?");
        assert!(prompt.starts_with("For the database described next"));
        assert!(prompt.contains("#Database: CWO"));
        assert!(prompt.contains("#MS SQL Server tables"));
        assert!(prompt.contains("MS SQL Server dialect"));
        assert!(prompt.ends_with("How many sightings were recorded?\n"));
        // Every prompt table appears as a `#Name (` line.
        for t in &view.tables {
            assert!(prompt.contains(&format!("#{} (", t.displayed)), "{}", t.displayed);
        }
    }

    #[test]
    fn restriction_filters_tables() {
        let db = build_database("CWO");
        let view = SchemaView::new(&db, SchemaVariant::Native);
        let keep = vec![view.tables[0].displayed.clone()];
        let small = view.restricted_to(&keep);
        assert_eq!(small.tables.len(), 1);
        assert_eq!(small.tables[0].displayed, keep[0]);
    }

    #[test]
    fn sbod_prompt_is_module_pruned() {
        let db = build_database("SBOD");
        let view = SchemaView::new(&db, SchemaVariant::Native);
        assert_eq!(view.tables.len(), snails_data::databases::SBOD_PROMPT_TABLES);
        assert!(view.column_count() < 4000);
    }

    #[test]
    fn lookup_by_native() {
        let db = build_database("CWO");
        let view = SchemaView::new(&db, SchemaVariant::Least);
        let event = db.core.native(snails_data::core_schema::CoreRole::EventTable);
        let t = view.table_by_native(&event).expect("event table in view");
        assert_eq!(t.native, event);
        assert!(view.table_by_native("no_such_table").is_none());
    }
}
