//! NL-to-SQL workflows: zero-shot, DIN-SQL, and CodeS.
//!
//! * **Zero-shot** (denoted `-ZS` in the figures): one prompt, one
//!   completion — the paper's primary comparison setting.
//! * **DIN-SQL**: GPT-4-based prompt chaining; the first chain stage performs
//!   *schema subsetting* (table retrieval), later stages generate SQL over
//!   the pruned schema. Chaining slightly degrades the top model
//!   (`chain_factor`), and subsetting misses remove tables the generator can
//!   then never link (§5.2: "applying more complex workflows to
//!   high-performing LLMs may be counterproductive").
//! * **CodeS**: a finetuned schema-filtering classifier plus a smaller
//!   finetuned generator; the filter is the most naturalness-sensitive
//!   component (Figure 12).

use crate::generate::{infer, mix_seed, Inference};
use crate::linking::link_probability;
use crate::model::{ModelConfig, ModelKind};
use crate::schema_view::SchemaView;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snails_data::{GoldPair, SnailsDatabase};
use std::collections::BTreeSet;

/// The six result rows of the paper's evaluation (Figures 8–10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Workflow {
    /// Zero-shot prompting with one of the five models.
    ZeroShot(ModelKind),
    /// DIN-SQL prompt chaining (GPT-4o for all chain steps, §4.2).
    DinSql,
    /// CodeS schema filtering + finetuned generation.
    CodeS,
}

impl Workflow {
    /// The six workflows in figure order.
    pub fn all() -> Vec<Workflow> {
        vec![
            Workflow::ZeroShot(ModelKind::Gemini15Pro),
            Workflow::ZeroShot(ModelKind::Gpt4o),
            Workflow::DinSql,
            Workflow::ZeroShot(ModelKind::Gpt35),
            Workflow::ZeroShot(ModelKind::PhindCodeLlama),
            Workflow::CodeS,
        ]
    }

    /// Display name matching the paper's result tables.
    pub fn display_name(&self) -> &'static str {
        match self {
            Workflow::ZeroShot(m) => m.display_name(),
            Workflow::DinSql => "DINSQL",
            Workflow::CodeS => "CodeS",
        }
    }

    /// The underlying model configuration.
    pub fn model_config(&self) -> ModelConfig {
        match self {
            Workflow::ZeroShot(m) => m.config(),
            Workflow::DinSql => {
                let mut c = ModelKind::Gpt4o.config();
                c.name = "DINSQL";
                // Prompt chaining overhead: each stage can derail the next.
                c.chain_factor = 0.62;
                c
            }
            Workflow::CodeS => {
                let mut c = ModelKind::CodeS.config();
                // The CodeS numbers in Figure 30 already reflect the full
                // pipeline; the filter is modelled separately below.
                c.chain_factor = 0.85;
                c
            }
        }
    }

    /// Schema-subsetting parameters `(base_recall, sensitivity,
    /// false_positive_rate)`, `None` for zero-shot (full schema in prompt).
    fn subset_params(&self) -> Option<(f64, f64, f64)> {
        match self {
            Workflow::ZeroShot(_) => None,
            // DIN-SQL's LLM-based retrieval: high recall, mildly sensitive.
            Workflow::DinSql => Some((0.97, 0.35, 0.06)),
            // CodeS's finetuned classifier: sensitive to naturalness.
            Workflow::CodeS => Some((0.95, 0.85, 0.04)),
        }
    }
}

/// Schema-subsetting outcome (Figure 12 metrics).
#[derive(Debug, Clone)]
pub struct SubsetOutcome {
    /// Native names of tables kept by the filter.
    pub kept: BTreeSet<String>,
    /// Native names of tables the gold query requires.
    pub gold: BTreeSet<String>,
}

impl SubsetOutcome {
    /// Table-retrieval recall.
    pub fn recall(&self) -> f64 {
        if self.gold.is_empty() {
            return 1.0;
        }
        self.gold.intersection(&self.kept).count() as f64 / self.gold.len() as f64
    }

    /// Table-retrieval precision.
    pub fn precision(&self) -> f64 {
        if self.kept.is_empty() {
            return 0.0;
        }
        self.gold.intersection(&self.kept).count() as f64 / self.kept.len() as f64
    }

    /// Table-retrieval F1.
    pub fn f1(&self) -> f64 {
        let (r, p) = (self.recall(), self.precision());
        if r + p == 0.0 {
            0.0
        } else {
            2.0 * r * p / (r + p)
        }
    }
}

/// A workflow run: the final inference plus the subsetting stage, if any.
#[derive(Debug, Clone)]
pub struct WorkflowResult {
    /// Workflow display name.
    pub workflow: &'static str,
    /// The generation-stage output.
    pub inference: Inference,
    /// The schema-subsetting stage output (DIN-SQL / CodeS only).
    pub subset: Option<SubsetOutcome>,
}

/// Simulate the schema-subsetting stage: every gold table is retained with a
/// probability driven by how decodable its displayed identifiers are (the
/// Figure 12 mechanism), and non-gold tables slip in at the false-positive
/// rate.
fn subset_schema(
    params: (f64, f64, f64),
    model: &ModelConfig,
    view: &SchemaView,
    gold_tables: &BTreeSet<String>,
    rng: &mut StdRng,
) -> SubsetOutcome {
    let (base, sensitivity, fp_rate) = params;
    let mut kept = BTreeSet::new();
    let columns = view.column_count();
    let organic = view.variant == snails_naturalness::category::SchemaVariant::Native;
    for t in &view.tables {
        let native_upper = t.native.to_ascii_uppercase();
        if gold_tables.contains(&native_upper) {
            // Retrieval confidence blends the table name's decodability with
            // its columns' (the filter reads both).
            let name_p = link_probability(model, &t.displayed, columns, organic);
            let col_p = if t.columns.is_empty() {
                name_p
            } else {
                t.columns
                    .iter()
                    .map(|c| link_probability(model, &c.displayed, columns, organic))
                    .sum::<f64>()
                    / t.columns.len() as f64
            };
            let decodability = 0.6 * name_p + 0.4 * col_p;
            let p_keep = base * (1.0 - sensitivity * (1.0 - decodability));
            if rng.gen::<f64>() < p_keep {
                kept.insert(native_upper);
            }
        } else if rng.gen::<f64>() < fp_rate {
            kept.insert(native_upper);
        }
    }
    SubsetOutcome { kept, gold: gold_tables.clone() }
}

/// Run one workflow on one question.
pub fn run_workflow(
    workflow: Workflow,
    db: &SnailsDatabase,
    view: &SchemaView,
    pair: &GoldPair,
    global_seed: u64,
) -> WorkflowResult {
    let model = workflow.model_config();
    match workflow.subset_params() {
        None => WorkflowResult {
            workflow: workflow.display_name(),
            inference: infer(&model, db, view, pair, global_seed),
            subset: None,
        },
        Some(params) => {
            let gold = snails_sql::extract_identifiers(
                &snails_sql::parse(&pair.sql).expect("gold parses"),
            );
            let seed = mix_seed(
                &[workflow.display_name(), db.spec.name, "subset"],
                &[global_seed, pair.id as u64],
            );
            let mut rng = StdRng::seed_from_u64(seed);
            let subset = subset_schema(params, &model, view, &gold.tables, &mut rng);
            // Restrict the generator's view to the kept tables.
            let kept_displayed: Vec<String> = view
                .tables
                .iter()
                .filter(|t| subset.kept.contains(&t.native.to_ascii_uppercase()))
                .map(|t| t.displayed.clone())
                .collect();
            let restricted = view.restricted_to(&kept_displayed);
            let inference = infer(&model, db, &restricted, pair, global_seed);
            WorkflowResult {
                workflow: workflow.display_name(),
                inference,
                subset: Some(subset),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snails_data::build_database;
    use snails_naturalness::category::SchemaVariant;

    #[test]
    fn six_workflows_with_paper_names() {
        let names: Vec<&str> = Workflow::all().iter().map(|w| w.display_name()).collect();
        assert_eq!(
            names,
            ["gemini-1.5-pro", "gpt-4o", "DINSQL", "gpt-3.5", "Phind-CodeLlama-34B-v2", "CodeS"]
        );
    }

    #[test]
    fn zero_shot_has_no_subset_stage() {
        let db = build_database("CWO");
        let view = SchemaView::new(&db, SchemaVariant::Native);
        let r = run_workflow(
            Workflow::ZeroShot(ModelKind::Gpt4o),
            &db,
            &view,
            &db.questions[0],
            1,
        );
        assert!(r.subset.is_none());
    }

    #[test]
    fn din_sql_subsets_and_generates() {
        let db = build_database("CWO");
        let view = SchemaView::new(&db, SchemaVariant::Native);
        let r = run_workflow(Workflow::DinSql, &db, &view, &db.questions[0], 1);
        let subset = r.subset.expect("DIN-SQL has a subset stage");
        assert!(!subset.gold.is_empty());
        assert!(subset.recall() >= 0.0 && subset.recall() <= 1.0);
        assert!(!r.inference.raw_sql.is_empty());
    }

    #[test]
    fn subset_metrics_hand_checked() {
        let s = SubsetOutcome {
            kept: ["A", "B", "C"].iter().map(|x| x.to_string()).collect(),
            gold: ["A", "D"].iter().map(|x| x.to_string()).collect(),
        };
        assert!((s.recall() - 0.5).abs() < 1e-12);
        assert!((s.precision() - 1.0 / 3.0).abs() < 1e-12);
        let f1 = 2.0 * 0.5 * (1.0 / 3.0) / (0.5 + 1.0 / 3.0);
        assert!((s.f1() - f1).abs() < 1e-12);
    }

    #[test]
    fn subset_edge_cases() {
        let empty_gold = SubsetOutcome { kept: BTreeSet::new(), gold: BTreeSet::new() };
        assert_eq!(empty_gold.recall(), 1.0);
        assert_eq!(empty_gold.precision(), 0.0);
        assert_eq!(empty_gold.f1(), 0.0);
    }

    #[test]
    fn codes_subsetting_sensitive_to_naturalness() {
        let db = build_database("CWO");
        let regular = SchemaView::new(&db, SchemaVariant::Regular);
        let least = SchemaView::new(&db, SchemaVariant::Least);
        let mean_recall = |view: &SchemaView| {
            let mut total = 0.0;
            for (i, pair) in db.questions.iter().enumerate() {
                let r = run_workflow(Workflow::CodeS, &db, view, pair, i as u64);
                total += r.subset.unwrap().recall();
            }
            total / db.questions.len() as f64
        };
        let reg = mean_recall(&regular);
        let lst = mean_recall(&least);
        assert!(reg > lst, "regular {reg} !> least {lst}");
    }

    #[test]
    fn workflow_runs_are_deterministic() {
        let db = build_database("CWO");
        let view = SchemaView::new(&db, SchemaVariant::Low);
        let a = run_workflow(Workflow::CodeS, &db, &view, &db.questions[3], 11);
        let b = run_workflow(Workflow::CodeS, &db, &view, &db.questions[3], 11);
        assert_eq!(a.inference.raw_sql, b.inference.raw_sql);
        assert_eq!(a.subset.unwrap().kept, b.subset.unwrap().kept);
    }
}
