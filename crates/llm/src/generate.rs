//! End-to-end simulated NL-to-SQL inference.
//!
//! The simulated model receives the displayed schema and a question and
//! emits SQL text in the *displayed* identifier namespace, exactly like the
//! hosted models in the paper's pipeline (Figure 6). The gold query's AST
//! serves as the model's latent understanding of the question (the
//! simulation device — see DESIGN.md); everything that the paper attributes
//! to the model is simulated on top of it:
//!
//! * schema linking per required identifier ([`crate::linking`]);
//! * structural errors whose probability grows with query complexity;
//! * extra projected columns (tolerated by superset matching, punished by
//!   precision);
//! * outright syntax failures (the paper excludes 137 unparseable
//!   generations from linking analysis).

use crate::linking::{link_identifier, LinkOutcome};
use crate::model::ModelConfig;
use crate::schema_view::SchemaView;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snails_data::{GoldPair, SnailsDatabase};
use snails_sql::{
    clause_profile, parse, rename_identifiers, Expr, FunctionArg, IdentifierMap, SelectItem,
    Statement,
};

/// The result of one simulated inference.
#[derive(Debug, Clone)]
pub struct Inference {
    /// Model display name.
    pub model: &'static str,
    /// Database name.
    pub database: String,
    /// Question id.
    pub question_id: usize,
    /// The emitted SQL text, in the displayed identifier namespace. May be
    /// unparseable when the model suffered a syntax failure.
    pub raw_sql: String,
    /// Per-identifier link outcomes `(native, outcome)`.
    pub links: Vec<(String, LinkOutcome)>,
    /// The structural mutation applied, if any.
    pub mutation: Option<&'static str>,
    /// True when the model emitted unparseable output.
    pub syntax_failed: bool,
}

/// FNV-1a mix for deterministic per-inference seeds.
pub fn mix_seed(parts: &[&str], nums: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    };
    for p in parts {
        for b in p.bytes() {
            eat(b);
        }
        eat(0xff);
    }
    for n in nums {
        for b in n.to_le_bytes() {
            eat(b);
        }
    }
    h
}

/// Run one simulated inference.
///
/// `global_seed` makes whole benchmark runs reproducible; per-inference
/// randomness is derived from it plus the (model, database, variant,
/// question) coordinates.
pub fn infer(
    model: &ModelConfig,
    db: &SnailsDatabase,
    view: &SchemaView,
    pair: &GoldPair,
    global_seed: u64,
) -> Inference {
    let seed = mix_seed(
        &[model.name, db.spec.name, view.variant.display_name()],
        &[global_seed, pair.id as u64],
    );
    let mut rng = StdRng::seed_from_u64(seed);

    let mut inference = Inference {
        model: model.name,
        database: db.spec.name.to_owned(),
        question_id: pair.id,
        raw_sql: String::new(),
        links: Vec::new(),
        mutation: None,
        syntax_failed: false,
    };

    // Outright syntax failure.
    if rng.gen::<f64>() < model.syntax_failure {
        inference.syntax_failed = true;
        inference.raw_sql = "SELECT the FROM WHERE answer IS".to_owned();
        return inference;
    }

    let gold = parse(&pair.sql).expect("gold queries are valid SQL");
    let ids = snails_sql::extract_identifiers(&gold);

    // Link every required identifier.
    let mut rename = IdentifierMap::new();
    for table in &ids.tables {
        let (displayed, regular) = displayed_and_regular(db, view, table, true);
        let outcome = link_identifier(model, view, &displayed, &regular, true, &mut rng);
        rename.insert(table, outcome.emitted());
        inference.links.push((table.clone(), outcome));
    }
    for column in &ids.columns {
        let (displayed, regular) = displayed_and_regular(db, view, column, false);
        let outcome = link_identifier(model, view, &displayed, &regular, false, &mut rng);
        rename.insert(column, outcome.emitted());
        inference.links.push((column.clone(), outcome));
    }

    let mut predicted = rename_identifiers(&gold, &rename);

    // Structural correctness: skill decays with clause complexity.
    let complexity = clause_profile(&gold).complexity() as f64;
    let p_structure =
        (model.structure_skill * model.chain_factor).powf(0.5 + complexity / 8.0);
    if rng.gen::<f64>() >= p_structure {
        inference.mutation = mutate(&mut predicted, &mut rng);
    }

    // Extra projected columns (ungrouped queries only).
    if rng.gen::<f64>() < model.extra_column_rate {
        add_extra_column(&mut predicted, view, &ids, &mut rng);
    }

    inference.raw_sql = predicted.to_string();
    inference
}

/// The displayed and Regular renderings of a native identifier.
fn displayed_and_regular(
    db: &SnailsDatabase,
    view: &SchemaView,
    native: &str,
    is_table: bool,
) -> (String, String) {
    let displayed = if is_table {
        view.table_by_native(native).map(|t| t.displayed.clone())
    } else {
        view.column_by_native(native).map(|c| c.displayed.clone())
    }
    .unwrap_or_else(|| native.to_owned());
    let regular = db
        .crosswalk
        .entry(native)
        .map(|e| e.renderings[0].clone())
        .unwrap_or_else(|| native.to_ascii_lowercase());
    (displayed, regular)
}

/// Apply one structural mutation; returns its label.
fn mutate(stmt: &mut Statement, rng: &mut StdRng) -> Option<&'static str> {
    let select = match stmt {
        Statement::Select(s) => s,
        Statement::CreateView { query, .. } => query,
    };
    // Collect applicable mutations, then pick one.
    let mut options: Vec<&'static str> = Vec::new();
    if let Some(w) = &select.where_clause {
        options.push("drop-where");
        // Only offer a literal flip when the predicate actually contains
        // one (e.g. a bare NOT EXISTS has nothing to mutate).
        if mutate_first_literal(&mut w.clone()) {
            options.push("wrong-literal");
        }
    }
    let swappable = |name: &str, args: &[FunctionArg]| match name {
        "COUNT" => matches!(args.first(), Some(FunctionArg::Expr(_))),
        "SUM" | "AVG" | "MAX" | "MIN" => true,
        _ => false,
    };
    if select.items.iter().any(|i| {
        matches!(i, SelectItem::Expr { expr: Expr::Function { name, args, .. }, .. }
            if swappable(name, args))
    }) {
        options.push("wrong-aggregate");
    }
    if !select.order_by.is_empty() {
        options.push("flip-order");
    }
    if !select.joins.is_empty() {
        options.push("drop-join");
    }
    if options.is_empty() {
        return None;
    }
    let choice = options[rng.gen_range(0..options.len())];
    match choice {
        "drop-where" => select.where_clause = None,
        "wrong-literal" => {
            if let Some(w) = &mut select.where_clause {
                mutate_first_literal(w);
            }
        }
        "wrong-aggregate" => {
            for item in &mut select.items {
                if let SelectItem::Expr { expr: Expr::Function { name, args, .. }, .. } = item {
                    let swapped = match name.as_str() {
                        "COUNT" if matches!(args.first(), Some(FunctionArg::Expr(_))) => "SUM",
                        "SUM" => "AVG",
                        "AVG" => "SUM",
                        "MAX" => "MIN",
                        "MIN" => "MAX",
                        _ => continue,
                    };
                    *name = swapped.to_owned();
                    break;
                }
            }
        }
        "flip-order" => {
            if let Some(o) = select.order_by.first_mut() {
                o.descending = !o.descending;
            }
        }
        "drop-join" => {
            select.joins.pop();
        }
        _ => unreachable!(),
    }
    Some(choice)
}

/// Flip the first literal found in a predicate (wrong value ⇒ wrong result).
fn mutate_first_literal(e: &mut Expr) -> bool {
    match e {
        Expr::Literal(snails_sql::Literal::Str(s)) => {
            s.push_str(" x");
            true
        }
        Expr::Literal(snails_sql::Literal::Int(n)) => {
            *n += 1;
            true
        }
        Expr::Binary { left, right, .. } => {
            mutate_first_literal(left) || mutate_first_literal(right)
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => mutate_first_literal(expr),
        Expr::InList { expr, list, .. } => {
            mutate_first_literal(expr) || list.iter_mut().any(mutate_first_literal)
        }
        Expr::Between { expr, low, high, .. } => {
            mutate_first_literal(expr) || mutate_first_literal(low) || mutate_first_literal(high)
        }
        Expr::Like { pattern, .. } => {
            pattern.push('x');
            true
        }
        Expr::InSubquery { expr, query, .. } => {
            mutate_first_literal(expr) || mutate_select_literal(query)
        }
        Expr::Exists { query, .. } | Expr::Subquery(query) => mutate_select_literal(query),
        _ => false,
    }
}

/// Descend into a subquery's predicates looking for a literal to flip.
fn mutate_select_literal(select: &mut snails_sql::SelectStatement) -> bool {
    if let Some(w) = &mut select.where_clause {
        if mutate_first_literal(w) {
            return true;
        }
    }
    if let Some(h) = &mut select.having {
        if mutate_first_literal(h) {
            return true;
        }
    }
    false
}

/// Project an extra column from the first gold table (paper: predicted
/// queries may include additional fields that do not render the answer
/// incorrect; superset matching tolerates them, precision does not).
fn add_extra_column(
    stmt: &mut Statement,
    view: &SchemaView,
    gold_ids: &snails_sql::QueryIdentifiers,
    rng: &mut StdRng,
) {
    let select = match stmt {
        Statement::Select(s) => s,
        Statement::CreateView { query, .. } => query,
    };
    if !select.group_by.is_empty()
        || select.distinct
        || select.items.iter().any(|i| {
            matches!(i, SelectItem::Expr { expr: Expr::Function { .. }, .. })
        })
    {
        return;
    }
    // A column of a referenced table that the gold projection does not use.
    let Some(first_table) = gold_ids.tables.iter().next() else { return };
    let Some(table) = view.table_by_native(first_table) else { return };
    let unused: Vec<&str> = table
        .columns
        .iter()
        .map(|c| c.displayed.as_str())
        .filter(|d| !gold_ids.columns.contains(&d.to_ascii_uppercase()))
        .collect();
    if unused.is_empty() {
        return;
    }
    let pick = unused[rng.gen_range(0..unused.len())];
    select.items.push(SelectItem::Expr {
        expr: Expr::Column(snails_sql::ColumnRef::bare(pick)),
        alias: None,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use snails_data::build_database;
    use snails_naturalness::category::SchemaVariant;

    fn setup() -> (SnailsDatabase, SchemaView) {
        let db = build_database("CWO");
        let view = SchemaView::new(&db, SchemaVariant::Native);
        (db, view)
    }

    #[test]
    fn inference_is_deterministic() {
        let (db, view) = setup();
        let model = ModelKind::Gpt4o.config();
        let a = infer(&model, &db, &view, &db.questions[0], 42);
        let b = infer(&model, &db, &view, &db.questions[0], 42);
        assert_eq!(a.raw_sql, b.raw_sql);
        let c = infer(&model, &db, &view, &db.questions[0], 43);
        // Different global seed can change the outcome (not guaranteed for
        // one question, but the full-seed mix must differ somewhere).
        let _ = c;
    }

    #[test]
    fn strong_model_mostly_reproduces_gold_on_native() {
        let (db, view) = setup();
        let model = ModelKind::Gpt4o.config();
        let mut exact = 0;
        for pair in &db.questions {
            let inf = infer(&model, &db, &view, pair, 1);
            // On the Native CWO schema (high naturalness), the strong model
            // usually emits the gold query verbatim (identifiers unchanged).
            let gold_norm = snails_sql::normalize(&pair.sql).unwrap();
            if inf.raw_sql == gold_norm {
                exact += 1;
            }
        }
        assert!(exact >= db.questions.len() / 2, "only {exact} exact");
    }

    #[test]
    fn weak_model_degrades_at_least_level() {
        let db = build_database("CWO");
        let native = SchemaView::new(&db, SchemaVariant::Native);
        let least = SchemaView::new(&db, SchemaVariant::Least);
        let model = ModelKind::PhindCodeLlama.config();
        let count_correct = |view: &SchemaView| {
            db.questions
                .iter()
                .map(|p| {
                    infer(&model, &db, view, p, 7)
                        .links
                        .iter()
                        .filter(|(_, o)| o.is_correct())
                        .count()
                })
                .sum::<usize>()
        };
        let native_links = count_correct(&native);
        let least_links = count_correct(&least);
        assert!(
            native_links > least_links,
            "native {native_links} !> least {least_links}"
        );
    }

    #[test]
    fn raw_sql_is_in_displayed_namespace() {
        let db = build_database("CWO");
        let view = SchemaView::new(&db, SchemaVariant::Least);
        let model = ModelKind::Gpt4o.config();
        // Find an inference where all links succeeded.
        let inf = db
            .questions
            .iter()
            .map(|p| infer(&model, &db, &view, p, 3))
            .find(|i| !i.syntax_failed && i.links.iter().all(|(_, o)| o.is_correct()))
            .expect("some fully-correct inference");
        // Its SQL must parse and reference displayed (Least) identifiers.
        let stmt = parse(&inf.raw_sql).expect("parseable");
        let ids = snails_sql::extract_identifiers(&stmt);
        for t in &ids.tables {
            assert!(
                view.tables.iter().any(|vt| vt.displayed.eq_ignore_ascii_case(t)),
                "table {t} not a displayed name"
            );
        }
    }

    #[test]
    fn syntax_failures_occur_at_configured_rate() {
        let (db, view) = setup();
        let mut model = ModelKind::Gpt35.config();
        model.syntax_failure = 0.5;
        let failures = (0..200u64)
            .filter(|s| infer(&model, &db, &view, &db.questions[0], *s).syntax_failed)
            .count();
        assert!((60..140).contains(&failures), "{failures}/200");
        // Failed output is unparseable.
        let inf = (0..200u64)
            .map(|s| infer(&model, &db, &view, &db.questions[0], s))
            .find(|i| i.syntax_failed)
            .unwrap();
        assert!(parse(&inf.raw_sql).is_err());
    }

    #[test]
    fn mutations_change_semantics() {
        let (db, view) = setup();
        let mut model = ModelKind::Gpt35.config();
        model.structure_skill = 0.0; // force mutations
        model.syntax_failure = 0.0;
        model.extra_column_rate = 0.0;
        let mut mutated = 0;
        for (i, pair) in db.questions.iter().enumerate() {
            let inf = infer(&model, &db, &view, pair, i as u64);
            if inf.mutation.is_some() {
                mutated += 1;
                assert_ne!(
                    inf.raw_sql,
                    snails_sql::normalize(&pair.sql).unwrap(),
                    "mutation {:?} left query unchanged",
                    inf.mutation
                );
            }
        }
        assert!(mutated > db.questions.len() / 2, "{mutated} mutated");
    }

    #[test]
    fn extra_columns_extend_projection() {
        let (db, view) = setup();
        let mut model = ModelKind::Gpt4o.config();
        model.extra_column_rate = 1.0;
        model.syntax_failure = 0.0;
        model.structure_skill = 1.0;
        // Find a simple projection question.
        let pair = db
            .questions
            .iter()
            .find(|p| p.template == snails_data::questions::Template::SimpleProjWhere)
            .unwrap();
        let inf = infer(&model, &db, &view, pair, 9);
        let gold_items = match parse(&pair.sql).unwrap() {
            Statement::Select(s) => s.items.len(),
            _ => unreachable!(),
        };
        let pred_items = match parse(&inf.raw_sql).unwrap() {
            Statement::Select(s) => s.items.len(),
            _ => unreachable!(),
        };
        assert_eq!(pred_items, gold_items + 1);
    }

    #[test]
    fn mix_seed_varies_with_inputs() {
        let a = mix_seed(&["gpt-4o", "CWO"], &[1, 2]);
        let b = mix_seed(&["gpt-4o", "CWO"], &[1, 3]);
        let c = mix_seed(&["gpt-4o", "KIS"], &[1, 2]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, mix_seed(&["gpt-4o", "CWO"], &[1, 2]));
    }
}
