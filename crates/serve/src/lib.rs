#![warn(missing_docs)]

//! # snails-serve — the SNAILS serving layer
//!
//! A dependency-free async serving stack for the SNAILS NL-to-SQL engine:
//!
//! * [`protocol`] — a length-prefixed framed wire protocol (requests:
//!   ping / SQL / NL-to-SQL ask / stats / shutdown) with a bounds-checked
//!   incremental decoder that answers typed errors, never panics;
//! * [`tenant`] — per-tenant namespaces, each owning its database set, its
//!   own [`snails_engine::PlanCache`], and its own
//!   [`snails_engine::ExecLimits`] budget — isolation by construction;
//! * [`server`] — bounded-queue admission control with typed load shedding,
//!   request batching, worker fan-out (or a deterministic `--serial` poll
//!   loop on a simulated clock), graceful drain, and live telemetry through
//!   `snails-obs`;
//! * [`transport`] — in-process tickets and framed unix sockets over the
//!   same server;
//! * [`load`] — a seeded load generator with a wall-clock concurrent driver
//!   (thousands of closed-loop clients) and deterministic serial/lockstep
//!   drivers whose response transcripts are byte-identical across runs,
//!   thread counts, and transports.
//!
//! The determinism contract, tenancy model, and protocol grammar are
//! documented in `DESIGN.md` §12.

pub mod load;
pub mod protocol;
pub mod server;
pub mod tenant;
pub mod transport;

pub use load::{
    classify, run_concurrent, run_serial, run_unix_lockstep, DbWorkload, LoadPlan, LoadReport,
    Outcome, SerialOutcome, TenantWorkload,
};
pub use protocol::{
    FrameReader, Message, ProtocolError, Request, Response, ServeError, TenantStats, WireValue,
};
pub use server::{Admission, ServeConfig, Server};
pub use tenant::{Tenant, TenantSource, TenantSpec};
pub use transport::{InProcClient, Ticket, UnixClient, UnixServer};

// The facade crate (and its `snails` binary) reaches obs report types
// through here; it deliberately has no direct snails-obs dependency.
pub use snails_obs::{Metric, ObsCtx, Report, Section};
