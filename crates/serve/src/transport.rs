//! Transports: in-process tickets and framed unix sockets.
//!
//! Both speak the same [`crate::protocol`] messages against the same
//! [`Server`]; the in-process transport skips the byte layer (the load
//! harness re-encodes responses when it builds transcripts, so byte
//! identity across transports is still asserted end to end), while the
//! unix transport runs the full frame → decode → submit → encode path.
//!
//! Shutdown is a protocol message, not a signal: a [`Request::Shutdown`]
//! frame makes the transport drain the server, answer
//! [`Response::Goodbye`], and close — so tests and scripts can stop a
//! server deterministically over its own wire.

use crate::protocol::{
    encode_response, FrameReader, Message, Request, Response, ServeError,
};
use crate::server::Server;
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

struct TicketInner {
    slot: Mutex<Option<Response>>,
    cv: Condvar,
}

/// A pending in-process response: filled exactly once by the server's
/// reply callback.
#[derive(Clone)]
pub struct Ticket(Arc<TicketInner>);

impl Ticket {
    fn new() -> Ticket {
        Ticket(Arc::new(TicketInner { slot: Mutex::new(None), cv: Condvar::new() }))
    }

    fn complete(&self, resp: Response) {
        let mut slot = self.0.slot.lock().unwrap();
        debug_assert!(slot.is_none(), "a reply fires exactly once");
        *slot = Some(resp);
        self.0.cv.notify_all();
    }

    /// Take the response if it has arrived (non-blocking).
    pub fn try_take(&self) -> Option<Response> {
        self.0.slot.lock().unwrap().take()
    }

    /// Block until the response arrives.
    pub fn wait(&self) -> Response {
        let mut slot = self.0.slot.lock().unwrap();
        loop {
            if let Some(resp) = slot.take() {
                return resp;
            }
            slot = self.0.cv.wait(slot).unwrap();
        }
    }
}

/// An in-process client over a shared [`Server`].
#[derive(Clone)]
pub struct InProcClient {
    server: Arc<Server>,
}

impl InProcClient {
    /// Client over `server`.
    pub fn new(server: Arc<Server>) -> InProcClient {
        InProcClient { server }
    }

    /// Submit without blocking; the [`Ticket`] resolves when the server
    /// answers (immediately, for shed/refused requests).
    pub fn call_async(&self, request: Request) -> Ticket {
        let ticket = Ticket::new();
        let completer = ticket.clone();
        self.server.submit(request, Box::new(move |resp| completer.complete(resp)));
        ticket
    }

    /// Submit and block for the response. In serial mode this would
    /// deadlock on a queued request (nothing polls) — use
    /// [`InProcClient::call_async`] plus [`Server::poll_batch`] there.
    pub fn call(&self, request: Request) -> Response {
        self.call_async(request).wait()
    }
}

// ---------------------------------------------------------------------------
// Unix-socket transport
// ---------------------------------------------------------------------------

/// How often blocked socket loops wake to re-check stop/drain conditions.
const POLL_INTERVAL: Duration = Duration::from_millis(2);

/// A unix-socket front end over a [`Server`].
///
/// The listener thread accepts connections; each connection gets a reader
/// thread that decodes frames, submits requests, and writes response
/// frames back (writes are serialized per connection — replies fire from
/// worker threads). A malformed frame answers a typed
/// [`ServeError::Protocol`] frame and closes the connection. A
/// [`Request::Shutdown`] drains the server, answers
/// [`Response::Goodbye`], and stops the listener.
pub struct UnixServer {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
}

impl UnixServer {
    /// Bind `path` (removing any stale socket file) and start accepting.
    pub fn bind(path: &Path, server: Arc<Server>) -> std::io::Result<UnixServer> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_handle = std::thread::spawn(move || {
            let mut conn_handles = Vec::new();
            while !accept_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let server = Arc::clone(&server);
                        let stop = Arc::clone(&accept_stop);
                        conn_handles.push(std::thread::spawn(move || {
                            connection_loop(stream, &server, &stop);
                        }));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(_) => break,
                }
            }
            for h in conn_handles {
                let _ = h.join();
            }
        });
        Ok(UnixServer { path: path.to_owned(), stop, accept_handle: Some(accept_handle) })
    }

    /// True once a shutdown frame (or [`UnixServer::stop`]) has landed.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Ask the listener to stop, then join it (connections see the flag at
    /// their next poll tick).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }

    /// Block until a shutdown frame stops the listener.
    pub fn wait(&mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for UnixServer {
    fn drop(&mut self) {
        self.stop();
        let _ = std::fs::remove_file(&self.path);
    }
}

/// One connection: read frames, dispatch, write response frames.
fn connection_loop(stream: UnixStream, server: &Arc<Server>, stop: &Arc<AtomicBool>) {
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 16 * 1024];
    // Replies fire on worker threads; writes go through one shared,
    // poisoning-tolerant writer so response frames never interleave.
    let writer = Arc::new(Mutex::new(stream.try_clone().ok()));
    let mut stream = stream;
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // peer hung up
            Ok(n) => reader.extend(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
        loop {
            match reader.next_message() {
                Ok(Some(Message::Request(Request::Shutdown))) => {
                    // Drain first so Goodbye truthfully reports the final
                    // response count, then stop the listener.
                    server.drain();
                    let resp = Response::Goodbye { responses: server.responses_delivered() };
                    write_frame(&writer, &resp);
                    stop.store(true, Ordering::Relaxed);
                    return;
                }
                Ok(Some(Message::Request(request))) => {
                    let writer = Arc::clone(&writer);
                    server.submit(
                        request,
                        Box::new(move |resp| write_frame(&writer, &resp)),
                    );
                }
                Ok(Some(Message::Response(_))) => {
                    // A client must not send response opcodes.
                    let resp = Response::Err {
                        tag: 0,
                        error: ServeError::Protocol("unexpected response opcode".to_owned()),
                    };
                    write_frame(&writer, &resp);
                    return;
                }
                Ok(None) => break, // need more bytes
                Err(e) => {
                    let resp = Response::Err {
                        tag: 0,
                        error: ServeError::Protocol(e.to_string()),
                    };
                    write_frame(&writer, &resp);
                    return;
                }
            }
        }
    }
}

fn write_frame(writer: &Arc<Mutex<Option<UnixStream>>>, resp: &Response) {
    let bytes = encode_response(resp);
    let mut guard = writer.lock().unwrap();
    if let Some(stream) = guard.as_mut() {
        // Blocking write despite the nonblocking socket: retry WouldBlock
        // (response frames are small; the buffer drains fast).
        let mut written = 0;
        while written < bytes.len() {
            match stream.write(&bytes[written..]) {
                Ok(n) => written += n,
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::Interrupted =>
                {
                    std::thread::sleep(Duration::from_micros(100));
                }
                Err(_) => {
                    // Peer gone: drop the stream so later replies no-op.
                    *guard = None;
                    return;
                }
            }
        }
    }
}

/// A blocking unix-socket client speaking one frame at a time.
pub struct UnixClient {
    stream: UnixStream,
    reader: FrameReader,
    buf: [u8; 16 * 1024],
}

impl UnixClient {
    /// Connect to a listening [`UnixServer`].
    pub fn connect(path: &Path) -> std::io::Result<UnixClient> {
        let stream = UnixStream::connect(path)?;
        Ok(UnixClient { stream, reader: FrameReader::new(), buf: [0u8; 16 * 1024] })
    }

    /// Send raw bytes (the fuzz corpus uses this to deliver garbage).
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Send one request frame.
    pub fn send(&mut self, request: &Request) -> std::io::Result<()> {
        self.stream.write_all(&crate::protocol::encode_request(request))
    }

    /// Block until the next well-formed response frame arrives. Returns
    /// `None` on clean close; protocol errors from the server arrive as
    /// typed [`Response::Err`] frames like any other response.
    pub fn recv(&mut self) -> std::io::Result<Option<Response>> {
        loop {
            match self.reader.next_message() {
                Ok(Some(Message::Response(resp))) => return Ok(Some(resp)),
                Ok(Some(Message::Request(_))) => {
                    return Err(std::io::Error::new(
                        ErrorKind::InvalidData,
                        "server sent a request opcode",
                    ))
                }
                Ok(None) => {}
                Err(e) => {
                    return Err(std::io::Error::new(ErrorKind::InvalidData, e.to_string()))
                }
            }
            match self.stream.read(&mut self.buf) {
                Ok(0) => return Ok(None),
                Ok(n) => {
                    let chunk = self.buf[..n].to_vec();
                    self.reader.extend(&chunk);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Send one request and block for its response.
    pub fn call(&mut self, request: &Request) -> std::io::Result<Response> {
        self.send(request)?;
        self.recv()?.ok_or_else(|| {
            std::io::Error::new(ErrorKind::UnexpectedEof, "connection closed before response")
        })
    }
}
