//! Tenant namespaces.
//!
//! A tenant owns a database set, one [`PlanCache`], and one [`ExecLimits`]
//! budget. Isolation is by construction, not by key discipline: two tenants
//! never share a cache object, so a plan compiled against tenant A's
//! `sales` database cannot be served for tenant B's same-named `sales` —
//! there is no shared map for a collision to happen in. The isolation
//! integration test drives two tenants with identical schemas, identical
//! normalized SQL, and different contents to hold this.

use crate::protocol::{Response, ServeError, TenantStats, WireValue, MAX_RESPONSE_ROWS};
use snails_core::pipeline::evaluate_cell_with;
use snails_data::SnailsDatabase;
use snails_engine::{Database, ExecLimits, ExecOptions, PlanCache, ResultSet};
use snails_llm::{ModelKind, SchemaView, Workflow};
use snails_naturalness::category::SchemaVariant;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What a tenant database is backed by.
#[derive(Clone)]
pub enum TenantSource {
    /// A full SNAILS database: SQL *and* the NL-to-SQL pipeline
    /// ([`crate::protocol::Request::Ask`]) are available.
    Full(Arc<SnailsDatabase>),
    /// A bare engine database under a display name: SQL only. `Ask`
    /// answers [`ServeError::UnknownQuestion`]. The isolation tests use
    /// this to give two tenants same-named schemas with different rows.
    Raw {
        /// The name requests address it by.
        name: String,
        /// The engine database.
        db: Arc<Database>,
    },
}

impl TenantSource {
    fn name(&self) -> &str {
        match self {
            TenantSource::Full(db) => db.spec.name,
            TenantSource::Raw { name, .. } => name,
        }
    }
}

/// Configuration for one tenant namespace.
#[derive(Clone)]
pub struct TenantSpec {
    /// Namespace name (the routing key on [`crate::protocol::Request`]s).
    pub name: String,
    /// The tenant's databases.
    pub databases: Vec<TenantSource>,
    /// Execution budgets applied to every statement this tenant runs.
    pub limits: ExecLimits,
    /// Bound on the tenant's plan cache (`None` = unbounded).
    pub cache_capacity: Option<usize>,
}

impl TenantSpec {
    /// A guarded tenant over full SNAILS databases.
    pub fn full(name: &str, databases: Vec<Arc<SnailsDatabase>>) -> TenantSpec {
        TenantSpec {
            name: name.to_owned(),
            databases: databases.into_iter().map(TenantSource::Full).collect(),
            limits: ExecLimits::guarded(),
            cache_capacity: None,
        }
    }
}

/// One database inside a tenant, with the pipeline context prebuilt when
/// the source is [`TenantSource::Full`].
struct TenantDb {
    source: TenantSource,
    /// Native-variant schema view + denaturalization map, built once at
    /// tenant construction (the serve layer always faces the native
    /// namespace; variant sweeps stay in the benchmark pipeline).
    pipeline: Option<PipelineCtx>,
}

struct PipelineCtx {
    view: SchemaView,
    denat: snails_sql::IdentifierMap,
}

impl TenantDb {
    fn engine_db(&self) -> &Database {
        match &self.source {
            TenantSource::Full(s) => &s.db,
            TenantSource::Raw { db, .. } => db,
        }
    }
}

/// Monotonic per-tenant request accounting, updated lock-free by workers.
///
/// These exist *beside* the `serve.*` registry metrics: the registry is
/// per-run telemetry, while these are per-tenant and queried live over the
/// wire ([`crate::protocol::Request::Stats`]), which is what the
/// reconciliation test compares against its own request log.
#[derive(Default)]
pub struct TenantCounters {
    /// Requests dispatched to this tenant.
    pub requests: AtomicU64,
    /// Responses without a typed error.
    pub ok: AtomicU64,
    /// Responses with a typed error.
    pub errors: AtomicU64,
    /// Requests shed at admission.
    pub shed: AtomicU64,
}

/// A live tenant namespace.
pub struct Tenant {
    /// Namespace name.
    pub name: String,
    /// Databases keyed by uppercased name.
    dbs: BTreeMap<String, TenantDb>,
    /// The tenant's private plan cache.
    pub plans: PlanCache,
    limits: ExecLimits,
    /// Live request accounting.
    pub counters: TenantCounters,
}

impl Tenant {
    /// Build a tenant from its spec, precomputing the native-variant
    /// pipeline context for every full database.
    pub fn new(spec: TenantSpec) -> Tenant {
        let mut dbs = BTreeMap::new();
        for source in spec.databases {
            let pipeline = match &source {
                TenantSource::Full(s) => Some(PipelineCtx {
                    view: SchemaView::new(s, SchemaVariant::Native),
                    denat: snails_llm::middleware::denaturalization_map(s, SchemaVariant::Native),
                }),
                TenantSource::Raw { .. } => None,
            };
            dbs.insert(source.name().to_uppercase(), TenantDb { source, pipeline });
        }
        Tenant {
            name: spec.name,
            dbs,
            plans: match spec.cache_capacity {
                Some(c) => PlanCache::with_capacity(c),
                None => PlanCache::new(),
            },
            limits: spec.limits,
            counters: TenantCounters::default(),
        }
    }

    /// Database names this tenant serves, sorted.
    pub fn database_names(&self) -> Vec<String> {
        self.dbs.values().map(|d| d.source.name().to_owned()).collect()
    }

    fn db(&self, name: &str) -> Result<&TenantDb, ServeError> {
        self.dbs.get(&name.to_uppercase()).ok_or(ServeError::UnknownDatabase)
    }

    fn exec_options(&self) -> ExecOptions {
        ExecOptions { limits: self.limits, ..ExecOptions::default() }
    }

    /// Run one SQL statement through the tenant's plan cache and budgets.
    pub fn run_sql(&self, database: &str, sql: &str) -> Result<ResultSet, ServeError> {
        let db = self.db(database)?;
        self.plans
            .run(db.engine_db(), sql, self.exec_options())
            .map_err(|e| ServeError::Engine(e.to_string()))
    }

    /// Run the full NL-to-SQL pipeline on gold question `question_id`.
    ///
    /// The response is a pure function of `(tenant state, request, seed)`:
    /// the simulated model inference is seeded, so asking the same question
    /// twice yields the same answer — which is what makes `Ask` responses
    /// replayable in the deterministic load tests.
    pub fn ask(
        &self,
        database: &str,
        question_id: u32,
        model: u8,
        seed: u64,
        tag: u64,
    ) -> Result<Response, ServeError> {
        let db = self.db(database)?;
        let (TenantSource::Full(snails), Some(ctx)) = (&db.source, &db.pipeline) else {
            return Err(ServeError::UnknownQuestion);
        };
        let model = *ModelKind::ALL
            .get(usize::from(model))
            .ok_or(ServeError::BadRequest)?;
        let pair = snails
            .questions
            .iter()
            .find(|p| p.id == question_id as usize)
            .ok_or(ServeError::UnknownQuestion)?;
        let (record, native_sql) = evaluate_cell_with(
            Workflow::ZeroShot(model),
            snails,
            &ctx.view,
            &ctx.denat,
            pair,
            seed,
            &self.plans,
            self.exec_options(),
        );
        let recall_permille = match record.linking {
            Some(l) => (l.recall * 1000.0).round() as u16,
            None => u16::MAX,
        };
        Ok(Response::Answer {
            tag,
            sql: native_sql.unwrap_or_default(),
            parse_ok: record.parse_ok,
            set_matched: record.set_matched,
            exec_correct: record.exec_correct,
            recall_permille,
        })
    }

    /// Snapshot this tenant's counters (wire shape).
    pub fn stats(&self) -> TenantStats {
        TenantStats {
            tenant: self.name.clone(),
            requests: self.counters.requests.load(Ordering::Relaxed),
            ok: self.counters.ok.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            cache_hits: self.plans.hits(),
            cache_misses: self.plans.misses(),
        }
    }
}

/// Flatten a result set to its wire shape, capping the row body at
/// [`MAX_RESPONSE_ROWS`] while reporting the true total.
pub fn rows_response(tag: u64, rs: &ResultSet) -> Response {
    Response::Rows {
        tag,
        total_rows: rs.rows.len() as u64,
        columns: rs.columns.clone(),
        rows: rs
            .rows
            .iter()
            .take(MAX_RESPONSE_ROWS)
            .map(|row| row.iter().map(WireValue::from).collect())
            .collect(),
    }
}
