//! The framed wire protocol.
//!
//! Every message — request or response — travels as one *frame*:
//!
//! ```text
//! frame   := length:u32le payload
//! payload := opcode:u8 body            (length = |payload|, 1 ..= MAX_FRAME)
//! str     := len:u32le utf8-bytes
//! value   := tag:u8 (0 null | 1 int:u64le | 2 float-bits:u64le | 3 str)
//! ```
//!
//! All integers are little-endian; floats travel as raw IEEE-754 bits so
//! encode∘decode is the identity on every value including NaNs — a
//! requirement for the byte-identical transcript gates. The decoder is
//! total: any byte sequence either decodes to a message or to a typed
//! [`ProtocolError`]; it never panics and never reads past the declared
//! length (the fuzz suite in `tests/protocol.rs` holds it to that).

use std::fmt;

/// Hard cap on a frame's payload length (1 MiB). A peer announcing more is
/// either corrupt or hostile; the connection is closed after a typed error.
pub const MAX_FRAME: usize = 1 << 20;

/// Rows beyond this cap are dropped from a [`Response::Rows`] body (the
/// `total_rows` field still reports the full count). Keeps every legal
/// response comfortably under [`MAX_FRAME`].
pub const MAX_RESPONSE_ROWS: usize = 256;

// Request opcodes.
const OP_PING: u8 = 0x01;
const OP_SQL: u8 = 0x02;
const OP_ASK: u8 = 0x03;
const OP_STATS: u8 = 0x04;
const OP_SHUTDOWN: u8 = 0x05;
// Response opcodes.
const OP_PONG: u8 = 0x81;
const OP_ROWS: u8 = 0x82;
const OP_ANSWER: u8 = 0x83;
const OP_STATS_REPORT: u8 = 0x84;
const OP_ERR: u8 = 0x85;
const OP_GOODBYE: u8 = 0x86;

/// A decoding failure. Typed so transports can answer with a precise error
/// frame before closing, and so tests can assert the *reason* a corrupt
/// frame was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// More bytes are needed (stream decoders treat this as "keep reading";
    /// at end-of-input it means the peer hung up mid-frame).
    Incomplete,
    /// The frame header declared a zero-length payload.
    ZeroLength,
    /// The frame header declared a payload above [`MAX_FRAME`].
    Oversized {
        /// The declared payload length.
        declared: u32,
    },
    /// The payload's first byte is not a known opcode.
    UnknownOpcode(u8),
    /// The payload ended before its body did.
    Truncated,
    /// The payload decoded fully but bytes were left over.
    TrailingBytes,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A value field carried an unknown type tag.
    BadValueTag(u8),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Incomplete => write!(f, "incomplete frame"),
            ProtocolError::ZeroLength => write!(f, "zero-length frame"),
            ProtocolError::Oversized { declared } => {
                write!(f, "oversized frame ({declared} > {MAX_FRAME} bytes)")
            }
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            ProtocolError::Truncated => write!(f, "truncated payload"),
            ProtocolError::TrailingBytes => write!(f, "trailing bytes after payload"),
            ProtocolError::BadUtf8 => write!(f, "string field is not UTF-8"),
            ProtocolError::BadValueTag(t) => write!(f, "unknown value tag {t}"),
        }
    }
}

/// A typed service-level error, carried inside a [`Response::Err`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue was full; the request was shed, not queued.
    Overloaded {
        /// The configured queue depth that was hit.
        depth: u32,
    },
    /// The server is draining: it finishes in-flight work but admits
    /// nothing new.
    Draining,
    /// No tenant by that name.
    UnknownTenant,
    /// The tenant has no database by that name.
    UnknownDatabase,
    /// No question with that id (or the tenant's database carries no
    /// question set to ask against).
    UnknownQuestion,
    /// The request was well-framed but semantically invalid.
    BadRequest,
    /// The engine rejected the statement (parse, binding, type, or budget).
    Engine(String),
    /// An injected transient fault (timeout / rate limit); the named kind
    /// is [`snails_llm::FaultKind::name`]. Retryable by the client.
    Transient(String),
    /// The request handler panicked and was isolated.
    Internal,
    /// The peer's frame failed to decode; sent before closing.
    Protocol(String),
}

impl ServeError {
    /// Stable discriminant used on the wire.
    fn code(&self) -> u8 {
        match self {
            ServeError::Overloaded { .. } => 0,
            ServeError::Draining => 1,
            ServeError::UnknownTenant => 2,
            ServeError::UnknownDatabase => 3,
            ServeError::UnknownQuestion => 4,
            ServeError::BadRequest => 5,
            ServeError::Engine(_) => 6,
            ServeError::Transient(_) => 7,
            ServeError::Internal => 8,
            ServeError::Protocol(_) => 9,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth } => write!(f, "overloaded (queue depth {depth})"),
            ServeError::Draining => write!(f, "draining"),
            ServeError::UnknownTenant => write!(f, "unknown tenant"),
            ServeError::UnknownDatabase => write!(f, "unknown database"),
            ServeError::UnknownQuestion => write!(f, "unknown question"),
            ServeError::BadRequest => write!(f, "bad request"),
            ServeError::Engine(m) => write!(f, "engine: {m}"),
            ServeError::Transient(k) => write!(f, "transient fault: {k}"),
            ServeError::Internal => write!(f, "internal error"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

/// A value cell in a [`Response::Rows`] body — the engine's
/// [`snails_engine::Value`] flattened to its wire shape.
#[derive(Debug, Clone, PartialEq)]
pub enum WireValue {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float (travels as raw bits; NaN-safe).
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl From<&snails_engine::Value> for WireValue {
    fn from(v: &snails_engine::Value) -> WireValue {
        match v {
            snails_engine::Value::Null => WireValue::Null,
            snails_engine::Value::Int(i) => WireValue::Int(*i),
            snails_engine::Value::Float(x) => WireValue::Float(*x),
            snails_engine::Value::Str(s) => WireValue::Str(s.to_string()),
        }
    }
}

/// A client request.
///
/// `tag` is an opaque client-chosen correlation id echoed on the matching
/// response. The load harness packs `client_id << 32 | seq` into it, which
/// doubles as the transport-invariant per-request fault seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping {
        /// Correlation id.
        tag: u64,
    },
    /// Execute SQL against one tenant database.
    Sql {
        /// Correlation id.
        tag: u64,
        /// Tenant namespace.
        tenant: String,
        /// Database name within the tenant.
        database: String,
        /// The statement.
        sql: String,
    },
    /// Run the full NL-to-SQL pipeline on a gold question.
    Ask {
        /// Correlation id.
        tag: u64,
        /// Tenant namespace.
        tenant: String,
        /// Database name within the tenant.
        database: String,
        /// Gold question id (1-based, per database).
        question_id: u32,
        /// Index into [`snails_llm::ModelKind::ALL`].
        model: u8,
    },
    /// Snapshot per-tenant counters.
    Stats,
    /// Drain in-flight work, answer [`Response::Goodbye`], stop accepting.
    Shutdown,
}

impl Request {
    /// The request's correlation id (0 for control requests).
    pub fn tag(&self) -> u64 {
        match self {
            Request::Ping { tag }
            | Request::Sql { tag, .. }
            | Request::Ask { tag, .. } => *tag,
            Request::Stats | Request::Shutdown => 0,
        }
    }

    /// The tenant this request addresses, if any.
    pub fn tenant(&self) -> Option<&str> {
        match self {
            Request::Sql { tenant, .. } | Request::Ask { tenant, .. } => Some(tenant),
            _ => None,
        }
    }
}

/// Per-tenant counter snapshot carried by [`Response::StatsReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant name.
    pub tenant: String,
    /// Requests dispatched to this tenant (admitted, not shed).
    pub requests: u64,
    /// Requests answered without a typed error.
    pub ok: u64,
    /// Requests answered with a typed error.
    pub errors: u64,
    /// Requests shed at admission that addressed this tenant.
    pub shed: u64,
    /// Tenant plan-cache hits.
    pub cache_hits: u64,
    /// Tenant plan-cache misses.
    pub cache_misses: u64,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong {
        /// Echoed correlation id.
        tag: u64,
    },
    /// Result set for [`Request::Sql`].
    Rows {
        /// Echoed correlation id.
        tag: u64,
        /// Full row count (rows beyond [`MAX_RESPONSE_ROWS`] are elided).
        total_rows: u64,
        /// Column names.
        columns: Vec<String>,
        /// Row data (at most [`MAX_RESPONSE_ROWS`]).
        rows: Vec<Vec<WireValue>>,
    },
    /// Pipeline outcome for [`Request::Ask`].
    Answer {
        /// Echoed correlation id.
        tag: u64,
        /// The denaturalized (native-namespace) SQL, when the pipeline
        /// reached execution; empty otherwise.
        sql: String,
        /// Whether the raw model output parsed.
        parse_ok: bool,
        /// Result set-superset match.
        set_matched: bool,
        /// Final execution correctness.
        exec_correct: bool,
        /// Schema-linking recall in per-mille (0..=1000), or `u16::MAX`
        /// when the output was unparseable. Fixed-point keeps the frame
        /// float-free and the transcript byte-stable.
        recall_permille: u16,
    },
    /// Answer to [`Request::Stats`].
    StatsReport {
        /// Per-tenant counters, in tenant-name order.
        tenants: Vec<TenantStats>,
    },
    /// Typed failure for any request.
    Err {
        /// Echoed correlation id (0 when the request never decoded).
        tag: u64,
        /// The failure.
        error: ServeError,
    },
    /// Answer to [`Request::Shutdown`], sent after the drain completes.
    Goodbye {
        /// Responses delivered over the server's lifetime.
        responses: u64,
    },
}

impl Response {
    /// The response's correlation id (0 for control responses).
    pub fn tag(&self) -> u64 {
        match self {
            Response::Pong { tag }
            | Response::Rows { tag, .. }
            | Response::Answer { tag, .. }
            | Response::Err { tag, .. } => *tag,
            Response::StatsReport { .. } | Response::Goodbye { .. } => 0,
        }
    }

    /// True when this response carries a [`ServeError`].
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Err { .. })
    }
}

/// Either side of the conversation, as decoded from a frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A client-to-server frame.
    Request(Request),
    /// A server-to-client frame.
    Response(Response),
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &WireValue) {
    match v {
        WireValue::Null => out.push(0),
        WireValue::Int(i) => {
            out.push(1);
            put_u64(out, *i as u64);
        }
        WireValue::Float(x) => {
            out.push(2);
            put_u64(out, x.to_bits());
        }
        WireValue::Str(s) => {
            out.push(3);
            put_str(out, s);
        }
    }
}

fn encode_payload_request(req: &Request, out: &mut Vec<u8>) {
    match req {
        Request::Ping { tag } => {
            out.push(OP_PING);
            put_u64(out, *tag);
        }
        Request::Sql { tag, tenant, database, sql } => {
            out.push(OP_SQL);
            put_u64(out, *tag);
            put_str(out, tenant);
            put_str(out, database);
            put_str(out, sql);
        }
        Request::Ask { tag, tenant, database, question_id, model } => {
            out.push(OP_ASK);
            put_u64(out, *tag);
            put_str(out, tenant);
            put_str(out, database);
            put_u32(out, *question_id);
            out.push(*model);
        }
        Request::Stats => out.push(OP_STATS),
        Request::Shutdown => out.push(OP_SHUTDOWN),
    }
}

fn encode_payload_response(resp: &Response, out: &mut Vec<u8>) {
    match resp {
        Response::Pong { tag } => {
            out.push(OP_PONG);
            put_u64(out, *tag);
        }
        Response::Rows { tag, total_rows, columns, rows } => {
            out.push(OP_ROWS);
            put_u64(out, *tag);
            put_u64(out, *total_rows);
            put_u32(out, columns.len() as u32);
            for c in columns {
                put_str(out, c);
            }
            put_u32(out, rows.len() as u32);
            for row in rows {
                put_u32(out, row.len() as u32);
                for v in row {
                    put_value(out, v);
                }
            }
        }
        Response::Answer { tag, sql, parse_ok, set_matched, exec_correct, recall_permille } => {
            out.push(OP_ANSWER);
            put_u64(out, *tag);
            put_str(out, sql);
            out.push(u8::from(*parse_ok));
            out.push(u8::from(*set_matched));
            out.push(u8::from(*exec_correct));
            out.extend_from_slice(&recall_permille.to_le_bytes());
        }
        Response::StatsReport { tenants } => {
            out.push(OP_STATS_REPORT);
            put_u32(out, tenants.len() as u32);
            for t in tenants {
                put_str(out, &t.tenant);
                put_u64(out, t.requests);
                put_u64(out, t.ok);
                put_u64(out, t.errors);
                put_u64(out, t.shed);
                put_u64(out, t.cache_hits);
                put_u64(out, t.cache_misses);
            }
        }
        Response::Err { tag, error } => {
            out.push(OP_ERR);
            put_u64(out, *tag);
            out.push(error.code());
            match error {
                ServeError::Overloaded { depth } => put_u32(out, *depth),
                ServeError::Engine(m) | ServeError::Transient(m) | ServeError::Protocol(m) => {
                    put_str(out, m)
                }
                _ => {}
            }
        }
        Response::Goodbye { responses } => {
            out.push(OP_GOODBYE);
            put_u64(out, *responses);
        }
    }
}

fn frame(payload: Vec<u8>) -> Vec<u8> {
    debug_assert!(!payload.is_empty() && payload.len() <= MAX_FRAME);
    let mut out = Vec::with_capacity(4 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}

/// Encode one request as a complete frame (header + payload).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut payload = Vec::new();
    encode_payload_request(req, &mut payload);
    frame(payload)
}

/// Encode one response as a complete frame (header + payload).
///
/// Every response the server can construct fits in [`MAX_FRAME`]: row
/// bodies are capped at [`MAX_RESPONSE_ROWS`] and error strings are short.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut payload = Vec::new();
    encode_payload_response(resp, &mut payload);
    frame(payload)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reader over one payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.pos.checked_add(n).ok_or(ProtocolError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtocolError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn str(&mut self) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8)
    }

    fn value(&mut self) -> Result<WireValue, ProtocolError> {
        match self.u8()? {
            0 => Ok(WireValue::Null),
            1 => Ok(WireValue::Int(self.u64()? as i64)),
            2 => Ok(WireValue::Float(f64::from_bits(self.u64()?))),
            3 => Ok(WireValue::Str(self.str()?)),
            t => Err(ProtocolError::BadValueTag(t)),
        }
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::TrailingBytes)
        }
    }
}

/// Decode one payload (the bytes *after* the length header).
pub fn decode_payload(payload: &[u8]) -> Result<Message, ProtocolError> {
    let mut r = Reader::new(payload);
    let op = r.u8()?;
    let msg = match op {
        OP_PING => Message::Request(Request::Ping { tag: r.u64()? }),
        OP_SQL => Message::Request(Request::Sql {
            tag: r.u64()?,
            tenant: r.str()?,
            database: r.str()?,
            sql: r.str()?,
        }),
        OP_ASK => Message::Request(Request::Ask {
            tag: r.u64()?,
            tenant: r.str()?,
            database: r.str()?,
            question_id: r.u32()?,
            model: r.u8()?,
        }),
        OP_STATS => Message::Request(Request::Stats),
        OP_SHUTDOWN => Message::Request(Request::Shutdown),
        OP_PONG => Message::Response(Response::Pong { tag: r.u64()? }),
        OP_ROWS => {
            let tag = r.u64()?;
            let total_rows = r.u64()?;
            let ncols = r.u32()? as usize;
            if ncols > MAX_FRAME {
                return Err(ProtocolError::Truncated);
            }
            let mut columns = Vec::with_capacity(ncols.min(1024));
            for _ in 0..ncols {
                columns.push(r.str()?);
            }
            let nrows = r.u32()? as usize;
            if nrows > MAX_FRAME {
                return Err(ProtocolError::Truncated);
            }
            let mut rows = Vec::with_capacity(nrows.min(1024));
            for _ in 0..nrows {
                let arity = r.u32()? as usize;
                if arity > MAX_FRAME {
                    return Err(ProtocolError::Truncated);
                }
                let mut row = Vec::with_capacity(arity.min(1024));
                for _ in 0..arity {
                    row.push(r.value()?);
                }
                rows.push(row);
            }
            Message::Response(Response::Rows { tag, total_rows, columns, rows })
        }
        OP_ANSWER => Message::Response(Response::Answer {
            tag: r.u64()?,
            sql: r.str()?,
            parse_ok: r.u8()? != 0,
            set_matched: r.u8()? != 0,
            exec_correct: r.u8()? != 0,
            recall_permille: r.u16()?,
        }),
        OP_STATS_REPORT => {
            let n = r.u32()? as usize;
            if n > MAX_FRAME {
                return Err(ProtocolError::Truncated);
            }
            let mut tenants = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                tenants.push(TenantStats {
                    tenant: r.str()?,
                    requests: r.u64()?,
                    ok: r.u64()?,
                    errors: r.u64()?,
                    shed: r.u64()?,
                    cache_hits: r.u64()?,
                    cache_misses: r.u64()?,
                });
            }
            Message::Response(Response::StatsReport { tenants })
        }
        OP_ERR => {
            let tag = r.u64()?;
            let code = r.u8()?;
            let error = match code {
                0 => ServeError::Overloaded { depth: r.u32()? },
                1 => ServeError::Draining,
                2 => ServeError::UnknownTenant,
                3 => ServeError::UnknownDatabase,
                4 => ServeError::UnknownQuestion,
                5 => ServeError::BadRequest,
                6 => ServeError::Engine(r.str()?),
                7 => ServeError::Transient(r.str()?),
                8 => ServeError::Internal,
                9 => ServeError::Protocol(r.str()?),
                t => return Err(ProtocolError::BadValueTag(t)),
            };
            Message::Response(Response::Err { tag, error })
        }
        OP_GOODBYE => Message::Response(Response::Goodbye { responses: r.u64()? }),
        op => return Err(ProtocolError::UnknownOpcode(op)),
    };
    r.finish()?;
    Ok(msg)
}

/// Incremental frame decoder for a byte stream.
///
/// Feed arbitrary chunks with [`FrameReader::extend`]; pull complete
/// messages with [`FrameReader::next_message`]. A header or payload split
/// across chunks is reassembled; a malformed frame surfaces as a typed
/// error and poisons the stream (framing can't be trusted past the first
/// bad frame, so the transport closes the connection).
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    poisoned: bool,
}

impl FrameReader {
    /// Fresh decoder with an empty buffer.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Append raw bytes read from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Try to decode the next complete message.
    ///
    /// * `Ok(Some(msg))` — one frame was consumed;
    /// * `Ok(None)` — the buffer holds no complete frame yet;
    /// * `Err(e)` — the stream is malformed; the caller should send a
    ///   [`ServeError::Protocol`] frame and close. Subsequent calls keep
    ///   returning the error.
    pub fn next_message(&mut self) -> Result<Option<Message>, ProtocolError> {
        if self.poisoned {
            return Err(ProtocolError::Truncated);
        }
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let declared = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if declared == 0 {
            self.poisoned = true;
            return Err(ProtocolError::ZeroLength);
        }
        if declared as usize > MAX_FRAME {
            self.poisoned = true;
            return Err(ProtocolError::Oversized { declared });
        }
        let total = 4 + declared as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let result = decode_payload(&self.buf[4..total]);
        match result {
            Ok(msg) => {
                self.buf.drain(..total);
                Ok(Some(msg))
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }
}

/// FNV-1a over a byte slice — the transcript hash the load harness and the
/// CLI print for byte-identity checks.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
