//! The server core: admission control, batching, dispatch, and drain.
//!
//! One bounded queue fronts a pool of worker shards (or, in `--serial`
//! mode, a caller-driven poll loop). Admission is all-or-nothing: a request
//! either enters the queue or is answered immediately with a typed
//! [`ServeError::Overloaded`] / [`ServeError::Draining`] — the queue never
//! grows past its configured depth, which is the bounded-memory invariant
//! the overload test asserts.
//!
//! # Determinism contract
//!
//! In serial mode the server is a deterministic state machine: batches are
//! popped in admission order, executed with the deterministic scheduler
//! (task ids keyed by request tag, so results and telemetry are identical
//! at any fan-out thread count), and replies are delivered in batch order.
//! Every response is a pure function of `(tenant state, request, seed)`,
//! so a fixed submission schedule replays byte-identical transcripts — the
//! contract the load-replay tests hold at threads 1/2/8. In concurrent
//! mode the same counters are recorded, but shed placement depends on
//! arrival timing; the byte-compare gates only ever run serially.

use crate::protocol::{Request, Response, ServeError, TenantStats};
use crate::tenant::{rows_response, Tenant, TenantSpec};
use snails_core::scheduler;
use snails_llm::faults::{self, FaultKind, FaultProfile};
use snails_llm::generate::mix_seed;
use snails_obs::{ClockMode, Metric, ObsCtx, Report};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Seed for simulated inference and fault draws; responses are pure
    /// functions of `(tenant state, request, seed)`.
    pub seed: u64,
    /// Admission-queue capacity; requests beyond it are shed.
    pub queue_depth: usize,
    /// Most requests a worker pops per batch.
    pub batch_max: usize,
    /// Worker shards (concurrent mode) or fan-out width per batch (serial
    /// mode). `0` means available parallelism.
    pub threads: usize,
    /// Deterministic mode: no worker threads; the owner drives execution
    /// via [`Server::poll_batch`] / [`Server::drain`].
    pub serial: bool,
    /// Fault injection for request execution ([`FaultProfile::NONE`]
    /// disables the fault path entirely).
    pub fault_profile: FaultProfile,
    /// Server-side retry budget for transient injected faults (attempts
    /// beyond the first) before answering [`ServeError::Transient`].
    pub fault_retries: u32,
    /// Collect telemetry (queue gauges, latency histograms, admission
    /// counters) into an [`ObsCtx`], surfaced by
    /// [`Server::telemetry_report`].
    pub telemetry: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 2024,
            queue_depth: 4096,
            batch_max: 64,
            threads: 0,
            serial: false,
            fault_profile: FaultProfile::NONE,
            fault_retries: 2,
            telemetry: false,
        }
    }
}

/// A boxed completion: called exactly once with the request's response.
pub type Reply = Box<dyn FnOnce(Response) + Send>;

/// Where a submitted request went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Entered the queue; the reply fires when a worker answers it.
    Queued,
    /// Queue full — the reply already fired with
    /// [`ServeError::Overloaded`].
    Shed,
    /// Server draining — the reply already fired with
    /// [`ServeError::Draining`].
    Refused,
}

struct Job {
    request: Request,
    reply: Reply,
}

struct QueueState {
    queue: VecDeque<Job>,
    accepting: bool,
    in_flight: usize,
    high_water: usize,
}

/// The multi-tenant server.
pub struct Server {
    cfg: ServeConfig,
    tenants: BTreeMap<String, Tenant>,
    state: Mutex<QueueState>,
    work_cv: Condvar,
    idle_cv: Condvar,
    obs: Option<Arc<ObsCtx>>,
    responses: AtomicU64,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Build the server and, unless `cfg.serial`, spawn its worker shards.
    pub fn start(cfg: ServeConfig, tenant_specs: Vec<TenantSpec>) -> Arc<Server> {
        if !cfg.fault_profile.is_inert() {
            // Injected panics are expected control flow under a fault
            // profile; keep them off stderr (real panics still print).
            faults::silence_injected_panics();
        }
        let mut tenants = BTreeMap::new();
        for spec in tenant_specs {
            let tenant = Tenant::new(spec);
            tenants.insert(tenant.name.clone(), tenant);
        }
        let obs = cfg.telemetry.then(|| Arc::new(ObsCtx::new(ClockMode::Sim)));
        let server = Arc::new(Server {
            cfg,
            tenants,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                accepting: true,
                in_flight: 0,
                high_water: 0,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            obs,
            responses: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        });
        if !server.cfg.serial {
            let shards = effective_threads(server.cfg.threads);
            let mut handles = Vec::with_capacity(shards);
            for _ in 0..shards {
                let s = Arc::clone(&server);
                handles.push(std::thread::spawn(move || s.worker_loop()));
            }
            *server.workers.lock().unwrap() = handles;
        }
        server
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Look up a tenant by name.
    pub fn tenant(&self, name: &str) -> Option<&Tenant> {
        self.tenants.get(name)
    }

    /// Per-tenant counter snapshots, in tenant-name order.
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        self.tenants.values().map(Tenant::stats).collect()
    }

    /// Responses delivered to admitted requests so far.
    pub fn responses_delivered(&self) -> u64 {
        self.responses.load(Ordering::Relaxed)
    }

    /// Highest queue occupancy observed so far.
    pub fn high_water(&self) -> usize {
        self.state.lock().unwrap().high_water
    }

    /// Current queue occupancy.
    pub fn queue_len(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }

    // -- admission ----------------------------------------------------------

    /// Submit a request. Either it queues (the reply fires later, exactly
    /// once) or the reply fires *before this returns* with a typed shed /
    /// drain error — no request is ever silently dropped.
    pub fn submit(&self, request: Request, reply: Reply) -> Admission {
        let tag = request.tag();
        let mut st = self.state.lock().unwrap();
        if !st.accepting {
            drop(st);
            self.obs_add(Metric::ServeDrainRefused, 1);
            reply(Response::Err { tag, error: ServeError::Draining });
            return Admission::Refused;
        }
        let depth = self.cfg.queue_depth.max(1);
        if st.queue.len() >= depth {
            drop(st);
            self.obs_add(Metric::ServeShed, 1);
            if let Some(t) = request.tenant().and_then(|n| self.tenants.get(n)) {
                t.counters.shed.fetch_add(1, Ordering::Relaxed);
            }
            reply(Response::Err { tag, error: ServeError::Overloaded { depth: depth as u32 } });
            return Admission::Shed;
        }
        st.queue.push_back(Job { request, reply });
        let occupancy = st.queue.len();
        st.high_water = st.high_water.max(occupancy);
        let high_water = st.high_water;
        drop(st);
        self.obs_add(Metric::ServeRequests, 1);
        self.obs_gauge(Metric::ServeQueueDepth, occupancy as i64);
        self.obs_gauge(Metric::ServeQueueHighWater, high_water as i64);
        self.work_cv.notify_one();
        Admission::Queued
    }

    // -- execution ----------------------------------------------------------

    /// Serial mode: pop and execute at most one batch, delivering its
    /// replies in admission order. Returns the number of requests answered
    /// (0 when the queue was empty). Intra-batch execution fans out through
    /// the deterministic scheduler, so results and deterministic telemetry
    /// are identical at any `threads` setting.
    pub fn poll_batch(&self) -> usize {
        let (requests, replies) = {
            let mut st = self.state.lock().unwrap();
            if st.queue.is_empty() {
                return 0;
            }
            self.pop_batch_locked(&mut st)
        };
        self.run_batch(requests, replies)
    }

    fn pop_batch_locked(&self, st: &mut QueueState) -> (Vec<Request>, Vec<Reply>) {
        let n = st.queue.len().min(self.cfg.batch_max.max(1));
        let mut requests = Vec::with_capacity(n);
        let mut replies = Vec::with_capacity(n);
        for job in st.queue.drain(..n) {
            requests.push(job.request);
            replies.push(job.reply);
        }
        st.in_flight += n;
        self.obs_gauge(Metric::ServeQueueDepth, st.queue.len() as i64);
        self.obs_gauge(Metric::ServeInflight, st.in_flight as i64);
        (requests, replies)
    }

    fn run_batch(&self, requests: Vec<Request>, replies: Vec<Reply>) -> usize {
        let n = requests.len();
        self.obs_add(Metric::ServeBatches, 1);
        self.obs_observe(Metric::ServeBatchSize, n as u64);
        let responses: Vec<Response> = if self.cfg.serial && n > 1 {
            scheduler::run_ordered_observed_keyed(
                &requests,
                effective_threads(self.cfg.threads),
                self.obs.as_ref(),
                |_, r| r.tag(),
                |_, r| self.execute(r),
                // `execute` catches panics itself; this is unreachable in
                // practice but keeps the batch total if it ever fires.
                |_, r, _| Response::Err { tag: r.tag(), error: ServeError::Internal },
            )
        } else {
            requests.iter().map(|r| self.execute_as_task(r)).collect()
        };
        for (resp, reply) in responses.into_iter().zip(replies) {
            self.responses.fetch_add(1, Ordering::Relaxed);
            self.obs_add(Metric::ServeResponses, 1);
            if resp.is_error() {
                self.obs_add(Metric::ServeErrors, 1);
            }
            reply(resp);
        }
        let mut st = self.state.lock().unwrap();
        st.in_flight -= n;
        self.obs_gauge(Metric::ServeInflight, st.in_flight as i64);
        if st.queue.is_empty() && st.in_flight == 0 {
            self.idle_cv.notify_all();
        }
        n
    }

    fn worker_loop(self: Arc<Server>) {
        let _scope = self.obs.as_ref().map(snails_obs::scope);
        loop {
            let (requests, replies) = {
                let mut st = self.state.lock().unwrap();
                loop {
                    if !st.queue.is_empty() {
                        break;
                    }
                    if !st.accepting {
                        return;
                    }
                    st = self.work_cv.wait(st).unwrap();
                }
                self.pop_batch_locked(&mut st)
            };
            self.run_batch(requests, replies);
        }
    }

    /// Execute one request inside an observability task labelled by its
    /// tag (the concurrent path; the serial path gets its task wrapper
    /// from the scheduler).
    fn execute_as_task(&self, request: &Request) -> Response {
        if self.obs.is_some() {
            snails_obs::task(request.tag(), || self.execute(request))
        } else {
            self.execute(request)
        }
    }

    /// Execute one request to its response. Panics — injected or real —
    /// are isolated to a typed [`ServeError::Internal`]: a server must
    /// never let one request take down its shard or hang its client.
    pub fn execute(&self, request: &Request) -> Response {
        let started = Instant::now();
        let resp = match catch_unwind(AssertUnwindSafe(|| self.dispatch(request))) {
            Ok(resp) => resp,
            Err(_) => Response::Err { tag: request.tag(), error: ServeError::Internal },
        };
        self.obs_observe(Metric::ServeExecWallNs, started.elapsed().as_nanos() as u64);
        resp
    }

    fn dispatch(&self, request: &Request) -> Response {
        let tag = request.tag();
        match request {
            Request::Ping { .. } => Response::Pong { tag },
            Request::Stats => Response::StatsReport { tenants: self.tenant_stats() },
            // Transports intercept Shutdown before admission (a drain from
            // inside a worker would deadlock on itself); a queued one just
            // reports the running response count.
            Request::Shutdown => {
                Response::Goodbye { responses: self.responses.load(Ordering::Relaxed) }
            }
            Request::Sql { tenant, database, sql, .. } => {
                let Some(t) = self.tenants.get(tenant) else {
                    return Response::Err { tag, error: ServeError::UnknownTenant };
                };
                t.counters.requests.fetch_add(1, Ordering::Relaxed);
                let resp = isolated(tag, || {
                    let outcome = match self.draw_fault(&t.name, tag) {
                        Some(kind) if kind.is_transient() => {
                            Err(ServeError::Transient(kind.name().to_owned()))
                        }
                        Some(FaultKind::Panic) => faults::injected_panic(),
                        Some(kind) => {
                            // Truncated / Garbage: the statement text
                            // arrives damaged, exactly like a corrupted
                            // completion — it then fails (or very
                            // occasionally still parses) deterministically
                            // downstream.
                            let seed = self.fault_seed(&t.name, tag);
                            t.run_sql(database, &faults::corrupt_completion(kind, sql, seed))
                        }
                        None => t.run_sql(database, sql),
                    };
                    match outcome {
                        Ok(rs) => rows_response(tag, &rs),
                        Err(e) => Response::Err { tag, error: e },
                    }
                });
                self.count_outcome(t, &resp);
                resp
            }
            Request::Ask { tenant, database, question_id, model, .. } => {
                let Some(t) = self.tenants.get(tenant) else {
                    return Response::Err { tag, error: ServeError::UnknownTenant };
                };
                t.counters.requests.fetch_add(1, Ordering::Relaxed);
                let resp = isolated(tag, || {
                    let outcome = match self.draw_fault(&t.name, tag) {
                        Some(kind) if kind.is_transient() => {
                            Err(ServeError::Transient(kind.name().to_owned()))
                        }
                        Some(FaultKind::Panic) => faults::injected_panic(),
                        Some(_) => {
                            // A corrupted completion is an unparseable
                            // answer — the paper's unusable-generation
                            // tail, answered as a well-formed parse
                            // failure rather than an error.
                            Ok(Response::Answer {
                                tag,
                                sql: String::new(),
                                parse_ok: false,
                                set_matched: false,
                                exec_correct: false,
                                recall_permille: u16::MAX,
                            })
                        }
                        None => t.ask(database, *question_id, *model, self.cfg.seed, tag),
                    };
                    match outcome {
                        Ok(resp) => resp,
                        Err(e) => Response::Err { tag, error: e },
                    }
                });
                self.count_outcome(t, &resp);
                resp
            }
        }
    }

    fn count_outcome(&self, tenant: &Tenant, resp: &Response) {
        let slot = if resp.is_error() { &tenant.counters.errors } else { &tenant.counters.ok };
        slot.fetch_add(1, Ordering::Relaxed);
    }

    fn fault_seed(&self, tenant: &str, tag: u64) -> u64 {
        mix_seed(&["serve-fault", tenant], &[self.cfg.seed, tag])
    }

    /// Terminal injected fault for this request, if any — a pure function
    /// of `(seed, tenant, tag)`, so it is identical across transports,
    /// thread counts, and replays.
    fn draw_fault(&self, tenant: &str, tag: u64) -> Option<FaultKind> {
        if self.cfg.fault_profile.is_inert() {
            return None;
        }
        let (kind, _attempts) = self
            .cfg
            .fault_profile
            .draw_terminal(self.fault_seed(tenant, tag), self.cfg.fault_retries);
        if kind.is_some() {
            self.obs_add(Metric::ServeFaultsInjected, 1);
        }
        kind
    }

    // -- shutdown -----------------------------------------------------------

    /// Stop admitting, finish everything queued and in flight, and return
    /// once the server is idle. New submissions during and after the drain
    /// answer [`ServeError::Draining`].
    pub fn drain(&self) {
        {
            let mut st = self.state.lock().unwrap();
            st.accepting = false;
        }
        self.work_cv.notify_all();
        if self.cfg.serial {
            while self.poll_batch() > 0 {}
        } else {
            let mut st = self.state.lock().unwrap();
            while !(st.queue.is_empty() && st.in_flight == 0) {
                st = self.idle_cv.wait(st).unwrap();
            }
        }
    }

    /// [`Server::drain`], then join the worker shards. Returns the total
    /// responses delivered (the [`Response::Goodbye`] payload).
    pub fn shutdown(&self) -> u64 {
        self.drain();
        let handles = std::mem::take(&mut *self.workers.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        self.responses.load(Ordering::Relaxed)
    }

    // -- telemetry ----------------------------------------------------------

    /// Snapshot the server's telemetry report (`None` unless
    /// [`ServeConfig::telemetry`]). Samples each tenant's current
    /// plan-cache hit rate into the volatile section as a side effect, so
    /// call it once, at the end of a run.
    pub fn telemetry_report(&self) -> Option<Report> {
        let ctx = self.obs.as_ref()?;
        for t in self.tenants.values() {
            let s = t.stats();
            let lookups = s.cache_hits + s.cache_misses;
            if let Some(rate) = (s.cache_hits * 100).checked_div(lookups) {
                ctx.registry.observe(Metric::ServeTenantHitRatePct, rate);
            }
        }
        Some(ctx.report())
    }

    fn obs_add(&self, m: Metric, n: u64) {
        if let Some(ctx) = &self.obs {
            ctx.registry.add(m, n);
        }
    }

    fn obs_gauge(&self, m: Metric, v: i64) {
        if let Some(ctx) = &self.obs {
            ctx.registry.gauge_set(m, v);
        }
    }

    fn obs_observe(&self, m: Metric, v: u64) {
        if let Some(ctx) = &self.obs {
            ctx.registry.observe(m, v);
        }
    }
}

/// Run `f` with panic isolation: an unwinding handler — an injected
/// [`FaultKind::Panic`] or a genuine bug — becomes a typed
/// [`ServeError::Internal`] response instead of taking down the shard,
/// *inside* the per-tenant accounting so counters still reconcile exactly.
fn isolated(tag: u64, f: impl FnOnce() -> Response) -> Response {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(resp) => resp,
        Err(_) => Response::Err { tag, error: ServeError::Internal },
    }
}

fn effective_threads(configured: usize) -> usize {
    if configured == 0 {
        scheduler::available_threads()
    } else {
        configured
    }
}
