//! Protocol property and fuzz tests (ISSUE 10, satellite 1).
//!
//! Two layers of assurance on the framed wire protocol:
//!
//! 1. property round-trips — every message the generators can produce
//!    encodes to a frame that decodes back to the identical message, in
//!    one piece, byte-at-a-time, and in random chunkings;
//! 2. a 512-case mutation gauntlet in the `CellStore` fuzz shape
//!    (truncate / bit-flip / splice-junk) plus a hand-built corpus of
//!    zero-length, oversized, unknown-opcode, trailing-byte, bad-UTF-8
//!    and bad-value-tag frames: the decoder must answer a typed
//!    [`ProtocolError`] or keep waiting for bytes — never panic, never
//!    hang, never read past the declared length.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use snails_serve::protocol::{
    decode_payload, encode_request, encode_response, fnv1a, MAX_FRAME,
};
use snails_serve::{FrameReader, Message, ProtocolError, Request, Response, ServeError, TenantStats, WireValue};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn arb_string(rng: &mut TestRng) -> String {
    const POOL: &[&str] = &[
        "", "alpha", "beta", "CWO", "SELECT * FROM t", "naïve-ütf8 ✓", "a b\tc\n",
        "tenant/with/slashes", "0", "\u{1F40C}",
    ];
    POOL[rng.below(POOL.len())].to_string()
}

fn arb_value(rng: &mut TestRng) -> WireValue {
    match rng.below(5) {
        0 => WireValue::Null,
        1 => WireValue::Int(rng.next_u64() as i64),
        2 => WireValue::Float(f64::from_bits(rng.next_u64())),
        3 => WireValue::Float(f64::NAN),
        _ => WireValue::Str(arb_string(rng)),
    }
}

fn arb_request(rng: &mut TestRng) -> Request {
    match rng.below(5) {
        0 => Request::Ping { tag: rng.next_u64() },
        1 => Request::Sql {
            tag: rng.next_u64(),
            tenant: arb_string(rng),
            database: arb_string(rng),
            sql: arb_string(rng),
        },
        2 => Request::Ask {
            tag: rng.next_u64(),
            tenant: arb_string(rng),
            database: arb_string(rng),
            question_id: rng.next_u64() as u32,
            model: rng.next_u64() as u8,
        },
        3 => Request::Stats,
        _ => Request::Shutdown,
    }
}

fn arb_error(rng: &mut TestRng) -> ServeError {
    match rng.below(10) {
        0 => ServeError::Overloaded { depth: rng.next_u64() as u32 },
        1 => ServeError::Draining,
        2 => ServeError::UnknownTenant,
        3 => ServeError::UnknownDatabase,
        4 => ServeError::UnknownQuestion,
        5 => ServeError::BadRequest,
        6 => ServeError::Engine(arb_string(rng)),
        7 => ServeError::Transient(arb_string(rng)),
        8 => ServeError::Internal,
        _ => ServeError::Protocol(arb_string(rng)),
    }
}

fn arb_response(rng: &mut TestRng) -> Response {
    match rng.below(6) {
        0 => Response::Pong { tag: rng.next_u64() },
        1 => {
            let ncols = rng.below(4);
            let nrows = rng.below(5);
            Response::Rows {
                tag: rng.next_u64(),
                total_rows: rng.next_u64(),
                columns: (0..ncols).map(|_| arb_string(rng)).collect(),
                rows: (0..nrows)
                    .map(|_| {
                        let arity = rng.below(4);
                        (0..arity).map(|_| arb_value(rng)).collect()
                    })
                    .collect(),
            }
        }
        2 => Response::Answer {
            tag: rng.next_u64(),
            sql: arb_string(rng),
            parse_ok: rng.below(2) == 0,
            set_matched: rng.below(2) == 0,
            exec_correct: rng.below(2) == 0,
            recall_permille: rng.next_u64() as u16,
        },
        3 => Response::StatsReport {
            tenants: (0..rng.below(3))
                .map(|_| TenantStats {
                    tenant: arb_string(rng),
                    requests: rng.next_u64(),
                    ok: rng.next_u64(),
                    errors: rng.next_u64(),
                    shed: rng.next_u64(),
                    cache_hits: rng.next_u64(),
                    cache_misses: rng.next_u64(),
                })
                .collect(),
        },
        4 => Response::Err { tag: rng.next_u64(), error: arb_error(rng) },
        _ => Response::Goodbye { responses: rng.next_u64() },
    }
}

fn arb_message(rng: &mut TestRng) -> (Message, Vec<u8>) {
    if rng.below(2) == 0 {
        let req = arb_request(rng);
        let bytes = encode_request(&req);
        (Message::Request(req), bytes)
    } else {
        let resp = arb_response(rng);
        let bytes = encode_response(&resp);
        (Message::Response(resp), bytes)
    }
}

fn reencode(msg: &Message) -> Vec<u8> {
    match msg {
        Message::Request(r) => encode_request(r),
        Message::Response(r) => encode_response(r),
    }
}

fn has_nan(msg: &Message) -> bool {
    let Message::Response(Response::Rows { rows, .. }) = msg else { return false };
    rows.iter().flatten().any(|v| matches!(v, WireValue::Float(x) if x.is_nan()))
}

/// Decode exactly one message from a byte string, requiring the reader to
/// consume everything.
fn decode_one(bytes: &[u8]) -> Message {
    let mut reader = FrameReader::new();
    reader.extend(bytes);
    let msg = reader.next_message().expect("valid frame").expect("complete frame");
    assert_eq!(reader.pending(), 0, "round trip must consume the whole frame");
    msg
}

// ---------------------------------------------------------------------------
// Property round-trips
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn message_round_trip(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        let (msg, bytes) = arb_message(&mut rng);
        let decoded = decode_one(&bytes);
        // Byte identity is the real property (it also holds for NaN
        // payloads, where `PartialEq` on the decoded message cannot).
        prop_assert_eq!(reencode(&decoded), bytes);
        if !has_nan(&msg) {
            prop_assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn round_trip_survives_arbitrary_chunking(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        // Several messages back to back, delivered in random-size chunks:
        // the decoder must reassemble split headers and split payloads.
        let n = 1 + rng.below(4);
        let mut msgs = Vec::new();
        let mut stream = Vec::new();
        for _ in 0..n {
            let (msg, bytes) = arb_message(&mut rng);
            msgs.push(msg);
            stream.extend_from_slice(&bytes);
        }
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        let mut pos = 0;
        while pos < stream.len() {
            let take = (1 + rng.below(7)).min(stream.len() - pos);
            reader.extend(&stream[pos..pos + take]);
            pos += take;
            while let Some(msg) = reader.next_message().expect("valid stream") {
                decoded.push(msg);
            }
        }
        let replayed: Vec<u8> = decoded.iter().flat_map(reencode).collect();
        prop_assert_eq!(decoded.len(), msgs.len());
        prop_assert_eq!(replayed, stream);
        prop_assert_eq!(reader.pending(), 0);
    }

    #[test]
    fn floats_round_trip_bit_exact(bits in any::<u64>()) {
        // Raw-bits float transport: NaN payloads and signed zeros included.
        let resp = Response::Rows {
            tag: 7,
            total_rows: 1,
            columns: vec!["x".into()],
            rows: vec![vec![WireValue::Float(f64::from_bits(bits))]],
        };
        let decoded = decode_one(&encode_response(&resp));
        let Message::Response(Response::Rows { rows, .. }) = decoded else {
            panic!("wrong shape");
        };
        let WireValue::Float(x) = rows[0][0] else { panic!("wrong value") };
        prop_assert_eq!(x.to_bits(), bits);
    }
}

#[test]
fn byte_at_a_time_feed_decodes_everything() {
    let mut rng = TestRng::new(0xbeef);
    for _ in 0..32 {
        let (msg, bytes) = arb_message(&mut rng);
        let mut reader = FrameReader::new();
        let mut got = None;
        for (i, b) in bytes.iter().enumerate() {
            reader.extend(std::slice::from_ref(b));
            match reader.next_message().expect("valid frame") {
                Some(m) => {
                    assert_eq!(i, bytes.len() - 1, "message complete only at the last byte");
                    got = Some(m);
                }
                None => assert!(i < bytes.len() - 1, "last byte must complete the frame"),
            }
        }
        let got = got.expect("stream ended without a message");
        assert_eq!(reencode(&got), bytes);
        if !has_nan(&msg) {
            assert_eq!(got, msg);
        }
    }
}

// ---------------------------------------------------------------------------
// Mutation gauntlet + hostile corpus
// ---------------------------------------------------------------------------

/// Feed arbitrary bytes to a fresh reader and pump it dry. The only legal
/// outcomes are: decoded messages then a clean "need more bytes", or a
/// typed error that then repeats (poisoned stream). Panics and infinite
/// loops are the failures under test.
fn pump(bytes: &[u8]) -> Result<Vec<Message>, ProtocolError> {
    let mut reader = FrameReader::new();
    reader.extend(bytes);
    let mut out = Vec::new();
    loop {
        match reader.next_message() {
            Ok(Some(msg)) => out.push(msg),
            Ok(None) => return Ok(out),
            Err(e) => {
                // Poisoned: the error must be sticky.
                assert!(reader.next_message().is_err(), "poisoned reader must stay poisoned");
                return Err(e);
            }
        }
    }
}

#[test]
fn mutation_fuzz_never_panics_and_errors_are_typed() {
    let mut rng = TestRng::new(0x5eed);
    // A pristine multi-frame stream to vandalize, covering every opcode.
    let mut pristine = Vec::new();
    for _ in 0..4 {
        pristine.extend_from_slice(&arb_message(&mut rng).1);
    }
    pristine.extend_from_slice(&encode_request(&Request::Stats));
    pristine.extend_from_slice(&encode_request(&Request::Shutdown));
    let clean = pump(&pristine).expect("pristine stream decodes").len();
    assert!(clean >= 6);

    for case in 0..512u32 {
        let mut bytes = pristine.clone();
        match case % 3 {
            0 => bytes.truncate(rng.below(pristine.len() + 1)),
            1 => {
                let p = rng.below(pristine.len());
                bytes[p] ^= 1 << rng.below(8);
            }
            _ => {
                let p = rng.below(pristine.len());
                bytes.splice(p..p, b"junk".iter().copied());
            }
        }
        // Either outcome is legal; panicking or hanging is not. When the
        // mutation was a no-op (full-length truncate), the stream must
        // still decode in full.
        match pump(&bytes) {
            Ok(msgs) => {
                if bytes == pristine {
                    assert_eq!(msgs.len(), clean, "case {case}: no-op mutation lost frames");
                }
            }
            Err(e) => {
                // The reason is always one of the typed variants — proven
                // by matching on it (a new variant would fail to compile
                // here, keeping the corpus honest).
                match e {
                    ProtocolError::Incomplete
                    | ProtocolError::ZeroLength
                    | ProtocolError::Oversized { .. }
                    | ProtocolError::UnknownOpcode(_)
                    | ProtocolError::Truncated
                    | ProtocolError::TrailingBytes
                    | ProtocolError::BadUtf8
                    | ProtocolError::BadValueTag(_) => {}
                }
            }
        }
    }
}

#[test]
fn hostile_corpus_gets_precise_errors() {
    // Zero-length frame.
    assert_eq!(pump(&[0, 0, 0, 0]), Err(ProtocolError::ZeroLength));
    // Oversized declaration (also: the reader must not try to buffer it).
    let declared = (MAX_FRAME as u32) + 1;
    let mut oversized = declared.to_le_bytes().to_vec();
    oversized.extend_from_slice(&[1, 2, 3]);
    assert_eq!(pump(&oversized), Err(ProtocolError::Oversized { declared }));
    // Unknown opcode.
    assert_eq!(pump(&[1, 0, 0, 0, 0x7f]), Err(ProtocolError::UnknownOpcode(0x7f)));
    // Declared length larger than the body a Ping needs → trailing bytes.
    let mut padded = encode_request(&Request::Ping { tag: 9 });
    padded[0] += 1; // declare one extra byte
    padded.push(0xaa);
    assert_eq!(pump(&padded), Err(ProtocolError::TrailingBytes));
    // Declared length shorter than the opcode's body → truncated payload.
    let mut cut = encode_request(&Request::Ping { tag: 9 });
    cut[0] -= 1;
    cut.pop();
    assert_eq!(pump(&cut), Err(ProtocolError::Truncated));
    // Bad UTF-8 inside a string field.
    let mut bad = encode_request(&Request::Sql {
        tag: 1,
        tenant: "ab".into(),
        database: "d".into(),
        sql: "s".into(),
    });
    let p = bad.len() - 8; // inside the tenant string body
    bad[p] = 0xff;
    assert!(matches!(pump(&bad), Err(ProtocolError::BadUtf8 | ProtocolError::Truncated)));
    // Bad value tag inside a rows body.
    let resp = Response::Rows {
        tag: 1,
        total_rows: 1,
        columns: vec!["c".into()],
        rows: vec![vec![WireValue::Null]],
    };
    let mut bytes = encode_response(&resp);
    let last = bytes.len() - 1;
    bytes[last] = 200; // the Null tag byte is the final byte
    assert_eq!(pump(&bytes), Err(ProtocolError::BadValueTag(200)));
    // A string whose declared length would run past the payload: must be
    // a typed error, not an attempted huge allocation.
    let mut huge = vec![0u8; 0];
    huge.extend_from_slice(&13u32.to_le_bytes()); // frame len: opcode + u64 + u32
    huge.push(0x02); // OP_SQL
    huge.extend_from_slice(&0u64.to_le_bytes());
    huge.extend_from_slice(&u32::MAX.to_le_bytes()); // tenant length: 4 GiB
    assert_eq!(pump(&huge), Err(ProtocolError::Truncated));
    // An empty chunk stream stays clean.
    assert_eq!(pump(&[]), Ok(vec![]));
    // A bare partial header is "keep reading", not an error.
    assert_eq!(pump(&[5, 0]), Ok(vec![]));
}

#[test]
fn decode_payload_rejects_empty_and_fnv_is_stable() {
    assert!(decode_payload(&[]).is_err());
    // Pinned FNV-1a vectors: the transcript hash must never drift.
    assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
}
