//! Serving-layer integration tests (ISSUE 10 tentpole + satellites 2–4):
//! tenant isolation, deterministic load replay across thread counts and
//! transports, fault-soak completeness, and overload/backpressure.

use snails_engine::{Database, DataType, ExecLimits, TableSchema, Value};
use snails_serve::load::{run_serial, run_unix_lockstep, DbWorkload, LoadPlan, TenantWorkload};
use snails_serve::server::{ServeConfig, Server};
use snails_serve::transport::{InProcClient, UnixClient, UnixServer};
use snails_serve::{Request, Response, ServeError, TenantSource, TenantSpec};
use std::sync::{Arc, OnceLock};

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

/// A raw engine database named `sales` whose `accounts` rows are
/// tenant-specific: same schema, same statements, different answers.
fn sales_db(rows: &[(i64, &str)]) -> Arc<Database> {
    let mut db = Database::new("sales");
    db.create_table(
        TableSchema::new("accounts")
            .column("id", DataType::Int)
            .column("name", DataType::Varchar),
    );
    for (id, name) in rows {
        db.insert("accounts", vec![Value::Int(*id), Value::Str((*name).into())])
            .expect("insert");
    }
    Arc::new(db)
}

fn raw_spec(tenant: &str, rows: &[(i64, &str)]) -> TenantSpec {
    TenantSpec {
        name: tenant.to_owned(),
        databases: vec![TenantSource::Raw { name: "sales".into(), db: sales_db(rows) }],
        limits: ExecLimits::guarded(),
        cache_capacity: None,
    }
}

/// Workload over the raw `sales` tenants: SQL + pings only (questions: 0),
/// so tests that don't need the NL-to-SQL pipeline stay fast.
fn raw_plan(tenants: &[&str], clients: usize, requests: usize, seed: u64) -> LoadPlan {
    LoadPlan {
        clients,
        requests_per_client: requests,
        seed,
        tenants: tenants
            .iter()
            .map(|t| TenantWorkload {
                name: (*t).to_string(),
                databases: vec![DbWorkload {
                    name: "sales".into(),
                    sqls: vec![
                        "SELECT name FROM accounts ORDER BY name".into(),
                        "SELECT COUNT(*) FROM accounts".into(),
                        "SELECT id, name FROM accounts WHERE id >= 2 ORDER BY id".into(),
                    ],
                    questions: 0,
                }],
            })
            .collect(),
    }
}

fn raw_specs() -> Vec<TenantSpec> {
    vec![
        raw_spec("acme", &[(1, "acme-alpha"), (2, "acme-beta"), (3, "acme-gamma")]),
        raw_spec("globex", &[(1, "globex-x"), (2, "globex-y")]),
    ]
}

/// The full-pipeline fixture, built once per test process (CWO is the
/// paper's most natural schema; its 40 gold questions back the `Ask` mix).
fn cwo() -> Arc<snails_data::SnailsDatabase> {
    static DB: OnceLock<Arc<snails_data::SnailsDatabase>> = OnceLock::new();
    Arc::clone(DB.get_or_init(|| Arc::new(snails_data::build_database("CWO"))))
}

fn full_specs() -> Vec<TenantSpec> {
    vec![
        TenantSpec::full("alpha", vec![cwo()]),
        TenantSpec::full("beta", vec![cwo()]),
    ]
}

fn full_plan(clients: usize, requests: usize, seed: u64) -> LoadPlan {
    LoadPlan {
        clients,
        requests_per_client: requests,
        seed,
        tenants: vec![
            TenantWorkload::from_full("alpha", &[cwo()]),
            TenantWorkload::from_full("beta", &[cwo()]),
        ],
    }
}

fn serial_cfg(threads: usize, queue_depth: usize, batch_max: usize) -> ServeConfig {
    ServeConfig {
        serial: true,
        threads,
        queue_depth,
        batch_max,
        telemetry: true,
        ..ServeConfig::default()
    }
}

// ---------------------------------------------------------------------------
// Satellite 2 — tenant isolation
// ---------------------------------------------------------------------------

#[test]
fn tenants_with_identical_sql_get_their_own_answers_and_caches() {
    let server = Server::start(ServeConfig { threads: 2, ..ServeConfig::default() }, raw_specs());
    let client = InProcClient::new(Arc::clone(&server));
    let sql_req = |tag: u64, tenant: &str, sql: &str| Request::Sql {
        tag,
        tenant: tenant.into(),
        database: "sales".into(),
        sql: sql.into(),
    };
    let names_of = |resp: &Response| -> Vec<String> {
        let Response::Rows { rows, .. } = resp else { panic!("expected rows, got {resp:?}") };
        rows.iter()
            .map(|r| match &r[0] {
                snails_serve::WireValue::Str(s) => s.clone(),
                v => panic!("expected a string cell, got {v:?}"),
            })
            .collect()
    };

    // The same normalized statement, repeatedly, against both tenants.
    // Interleaved on purpose: a shared cache would have to confuse them.
    let stmt = "SELECT name FROM accounts ORDER BY name";
    let count_stmt = "SELECT COUNT(*) FROM accounts";
    let mut log: Vec<(&str, Response)> = Vec::new();
    for round in 0..3u64 {
        for tenant in ["acme", "globex"] {
            log.push((tenant, client.call(sql_req(round, tenant, stmt))));
        }
    }
    log.push(("acme", client.call(sql_req(10, "acme", count_stmt))));
    log.push(("globex", client.call(sql_req(11, "globex", count_stmt))));

    // Same SQL, different answers — each tenant sees only its own rows.
    for (tenant, resp) in &log[..6] {
        let expected: Vec<String> = match *tenant {
            "acme" => vec!["acme-alpha".into(), "acme-beta".into(), "acme-gamma".into()],
            _ => vec!["globex-x".into(), "globex-y".into()],
        };
        assert_eq!(names_of(resp), expected, "tenant {tenant} got another tenant's rows");
    }

    // Per-tenant cache counters reconcile exactly with the request log:
    // each tenant ran 2 distinct statements over 4 lookups — 2 compulsory
    // misses, 2 hits — even though the *other* tenant ran the identical
    // normalized SQL in between. A shared (cross-serving) cache would
    // show hits on first sight or misses after warming.
    for tenant in ["acme", "globex"] {
        let sent = log.iter().filter(|(t, _)| *t == tenant).count() as u64;
        let stats = server.tenant(tenant).expect("tenant exists").stats();
        assert_eq!(stats.requests, sent);
        assert_eq!(stats.ok, sent, "all statements succeed");
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.cache_misses, 2, "one compulsory miss per distinct statement");
        assert_eq!(stats.cache_hits, sent - 2);
        assert_eq!(stats.cache_hits + stats.cache_misses, sent);
    }

    // The wire-level stats report carries the same numbers.
    let Response::StatsReport { tenants } = client.call(Request::Stats) else {
        panic!("expected stats report")
    };
    assert_eq!(tenants.len(), 2);
    assert!(tenants.iter().all(|t| t.requests == t.ok + t.errors));
    server.shutdown();
}

#[test]
fn unknown_tenant_database_and_question_get_typed_errors() {
    let server = Server::start(ServeConfig::default(), raw_specs());
    let client = InProcClient::new(Arc::clone(&server));
    let err = |resp: Response| match resp {
        Response::Err { error, .. } => error,
        other => panic!("expected an error, got {other:?}"),
    };
    let sql = |tenant: &str, database: &str| Request::Sql {
        tag: 1,
        tenant: tenant.into(),
        database: database.into(),
        sql: "SELECT 1".into(),
    };
    assert_eq!(err(client.call(sql("nobody", "sales"))), ServeError::UnknownTenant);
    assert_eq!(err(client.call(sql("acme", "missing"))), ServeError::UnknownDatabase);
    // A raw tenant has no question set: Ask is a typed error, not a panic.
    let ask = Request::Ask {
        tag: 2,
        tenant: "acme".into(),
        database: "sales".into(),
        question_id: 1,
        model: 0,
    };
    assert_eq!(err(client.call(ask)), ServeError::UnknownQuestion);
    // A bad SQL statement is an engine error with the message attached.
    let bad = client.call(sql_text("acme", "SELEC nope"));
    assert!(matches!(err(bad), ServeError::Engine(_)));
    server.shutdown();
}

fn sql_text(tenant: &str, sql: &str) -> Request {
    Request::Sql { tag: 3, tenant: tenant.into(), database: "sales".into(), sql: sql.into() }
}

// ---------------------------------------------------------------------------
// Satellite 3 — deterministic load replay
// ---------------------------------------------------------------------------

#[test]
fn serial_replay_is_byte_identical_across_runs_and_thread_counts() {
    // Queue depth below the burst size, so the transcript includes typed
    // sheds — determinism must cover the admission path, not just
    // execution.
    let plan = full_plan(48, 3, 7);
    let mut transcripts = std::collections::BTreeSet::new();
    let mut telemetries = std::collections::BTreeSet::new();
    let mut shed = 0;
    for threads in [1usize, 2, 8] {
        for _run in 0..2 {
            let server = Server::start(serial_cfg(threads, 32, 16), full_specs());
            let out = run_serial(&server, &plan, false);
            assert_eq!(out.dropped(), 0, "every request resolves");
            shed = out.shed;
            transcripts.insert(out.transcript);
            telemetries.insert(
                server
                    .telemetry_report()
                    .expect("telemetry enabled")
                    .deterministic_json(),
            );
            server.shutdown();
        }
    }
    assert!(shed > 0, "the burst must exercise the shed path");
    assert_eq!(transcripts.len(), 1, "response transcripts diverged");
    assert_eq!(telemetries.len(), 1, "deterministic telemetry diverged");
}

#[test]
fn lockstep_transcripts_are_identical_across_transports() {
    let plan = raw_plan(&["acme", "globex"], 6, 4, 99);

    // In-process, serial server, lockstep driver.
    let inproc_server = Server::start(serial_cfg(1, 64, 8), raw_specs());
    let inproc = run_serial(&inproc_server, &plan, true);
    inproc_server.shutdown();

    // Unix socket, worker-driven server, lockstep driver. Responses are
    // pure functions of (tenant state, request, seed), so the full
    // frame-encode → socket → decode → execute → encode path must
    // reproduce the in-process bytes exactly.
    let path = std::env::temp_dir().join(format!("snails-serve-xtrans-{}.sock", std::process::id()));
    let unix_server = Server::start(
        ServeConfig { threads: 1, queue_depth: 64, batch_max: 8, ..ServeConfig::default() },
        raw_specs(),
    );
    let listener = UnixServer::bind(&path, Arc::clone(&unix_server)).expect("bind socket");
    let unix = run_unix_lockstep(&path, &plan).expect("socket drive");
    drop(listener);
    unix_server.shutdown();

    assert_eq!(inproc.dropped(), 0);
    assert_eq!(unix.dropped(), 0);
    assert_eq!(inproc.transcript, unix.transcript, "transports produced different bytes");
    assert_eq!(inproc.transcript_hash, unix.transcript_hash);
}

#[test]
fn shutdown_frame_drains_and_reports_over_the_wire() {
    let path = std::env::temp_dir().join(format!("snails-serve-bye-{}.sock", std::process::id()));
    let server = Server::start(ServeConfig { threads: 1, ..ServeConfig::default() }, raw_specs());
    let mut listener = UnixServer::bind(&path, Arc::clone(&server)).expect("bind socket");
    let mut client = UnixClient::connect(&path).expect("connect");
    for tag in 0..5u64 {
        let resp = client.call(&Request::Ping { tag }).expect("ping");
        assert_eq!(resp, Response::Pong { tag });
    }
    let bye = client.call(&Request::Shutdown).expect("shutdown");
    assert_eq!(bye, Response::Goodbye { responses: 5 });
    assert!(listener.stopped(), "shutdown frame stops the listener");
    listener.wait();
    server.shutdown();
}

#[test]
fn malformed_frames_get_a_typed_protocol_error_then_a_clean_close() {
    let path = std::env::temp_dir().join(format!("snails-serve-bad-{}.sock", std::process::id()));
    let server = Server::start(ServeConfig { threads: 1, ..ServeConfig::default() }, raw_specs());
    let _listener = UnixServer::bind(&path, Arc::clone(&server)).expect("bind socket");

    // Garbage framing: typed Protocol error frame, then EOF — never a hang.
    let mut client = UnixClient::connect(&path).expect("connect");
    client.send_raw(&[0, 0, 0, 0]).expect("send zero-length frame");
    match client.recv().expect("typed error frame") {
        Some(Response::Err { error: ServeError::Protocol(_), .. }) => {}
        other => panic!("expected a protocol error, got {other:?}"),
    }
    assert_eq!(client.recv().expect("clean close"), None);

    // An oversized declaration gets the same treatment.
    let mut client = UnixClient::connect(&path).expect("connect");
    client.send_raw(&(2u32 * 1024 * 1024).to_le_bytes()).expect("send oversized header");
    match client.recv().expect("typed error frame") {
        Some(Response::Err { error: ServeError::Protocol(_), .. }) => {}
        other => panic!("expected a protocol error, got {other:?}"),
    }
    assert_eq!(client.recv().expect("clean close"), None);

    // The server is still healthy for well-behaved clients.
    let mut client = UnixClient::connect(&path).expect("connect");
    assert_eq!(client.call(&Request::Ping { tag: 1 }).expect("ping"), Response::Pong { tag: 1 });
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Fault soak — zero dropped requests under a flaky profile
// ---------------------------------------------------------------------------

#[test]
fn flaky_profile_never_drops_a_request_and_replays_identically() {
    let plan = raw_plan(&["acme", "globex"], 32, 4, 11);
    let flaky = |threads: usize| ServeConfig {
        fault_profile: snails_llm::FaultProfile::FLAKY,
        ..serial_cfg(threads, 96, 16)
    };
    let run = |threads: usize| {
        let server = Server::start(flaky(threads), raw_specs());
        let out = run_serial(&server, &plan, false);
        // Per-tenant accounting reconciles exactly even with injected
        // panics: isolation converts them to typed Internal errors inside
        // the counters.
        for t in ["acme", "globex"] {
            let s = server.tenant(t).expect("tenant").stats();
            assert_eq!(s.requests, s.ok + s.errors, "tenant {t} accounting leaked");
        }
        server.shutdown();
        out
    };
    let a = run(1);
    assert_eq!(a.dropped(), 0, "a fault must never eat a request");
    assert!(a.errors > 0, "the flaky profile must actually inject failures");
    // Same seed, different fan-out: byte-identical, faults included.
    let b = run(4);
    assert_eq!(b.dropped(), 0);
    assert_eq!(a.transcript, b.transcript);
    assert_eq!((a.ok, a.errors, a.shed), (b.ok, b.errors, b.shed));
}

// ---------------------------------------------------------------------------
// Satellite 4 — backpressure, overload, graceful drain
// ---------------------------------------------------------------------------

#[test]
fn queue_is_bounded_sheds_are_counted_and_drain_finishes_everything() {
    let depth = 8usize;
    let server = Server::start(serial_cfg(1, depth, 4), raw_specs());
    let client = InProcClient::new(Arc::clone(&server));

    // Burst 3× the queue depth without polling: exactly `depth` requests
    // queue, the rest shed immediately with a typed Overloaded response.
    let tickets: Vec<_> = (0..3 * depth as u64)
        .map(|tag| client.call_async(Request::Ping { tag }))
        .collect();
    let shed_now: Vec<_> = tickets.iter().map(|t| t.try_take()).collect();
    let sheds = shed_now
        .iter()
        .filter(|r| {
            matches!(
                r,
                Some(Response::Err { error: ServeError::Overloaded { depth: d }, .. })
                    if *d == depth as u32
            )
        })
        .count();
    assert_eq!(sheds, 2 * depth, "everything beyond the queue depth sheds, typed");
    assert_eq!(server.queue_len(), depth);
    assert_eq!(server.high_water(), depth, "occupancy never exceeds the configured depth");

    // Drain: every queued request still gets its response; nothing hangs.
    server.drain();
    assert_eq!(server.queue_len(), 0);
    let answered = tickets
        .iter()
        .zip(&shed_now)
        .filter(|(t, earlier)| earlier.is_some() || t.try_take().is_some())
        .count();
    assert_eq!(answered, tickets.len(), "drain must resolve every admitted request");
    assert_eq!(server.responses_delivered(), depth as u64);

    // The deterministic telemetry section agrees with what we observed.
    let report = server.telemetry_report().expect("telemetry enabled");
    assert_eq!(report.counter("serve.shed"), sheds as u64);
    assert_eq!(report.counter("serve.requests"), depth as u64);
    assert_eq!(report.counter("serve.responses"), depth as u64);

    // Post-drain submissions answer Draining, synchronously.
    let refused = client.call_async(Request::Ping { tag: 77 });
    assert!(matches!(
        refused.try_take(),
        Some(Response::Err { error: ServeError::Draining, .. })
    ));
    assert_eq!(report.counter("serve.drain_refused"), 0, "refusal landed after the snapshot");
    server.shutdown();
}

#[test]
fn concurrent_drain_waits_for_in_flight_work() {
    let server = Server::start(
        ServeConfig { threads: 2, queue_depth: 256, ..ServeConfig::default() },
        raw_specs(),
    );
    let client = InProcClient::new(Arc::clone(&server));
    let tickets: Vec<_> = (0..64u64)
        .map(|tag| {
            client.call_async(Request::Sql {
                tag,
                tenant: if tag % 2 == 0 { "acme" } else { "globex" }.into(),
                database: "sales".into(),
                sql: "SELECT name FROM accounts ORDER BY name".into(),
            })
        })
        .collect();
    server.drain();
    // After drain returns, every admitted request has its reply.
    let resolved = tickets.iter().filter(|t| t.try_take().is_some()).count();
    assert_eq!(resolved, 64, "drain returned with requests still unresolved");
    assert_eq!(server.queue_len(), 0);
    server.shutdown();
}

#[test]
fn admission_is_all_or_nothing() {
    // With a single slot, alternating submissions show Queued ↔ Shed with
    // no third state and no silent drop.
    let server = Server::start(serial_cfg(1, 1, 1), raw_specs());
    let client = InProcClient::new(Arc::clone(&server));
    let first = client.call_async(Request::Ping { tag: 1 });
    let second = client.call_async(Request::Ping { tag: 2 });
    assert!(first.try_take().is_none(), "queued request is pending until polled");
    assert!(matches!(
        second.try_take(),
        Some(Response::Err { error: ServeError::Overloaded { .. }, .. })
    ));
    assert_eq!(server.poll_batch(), 1);
    assert_eq!(first.try_take(), Some(Response::Pong { tag: 1 }));
    server.shutdown();
}
