//! Token-to-character ratio (appendix B.9, Equation 6).
//!
//! `TCR = |I_tokens| / |I_characters|`. More natural identifiers contain
//! in-vocabulary words and therefore have *lower* TCR; abbreviations fragment
//! into sub-tokens and have higher TCR. Figure 28 plots TCR by naturalness
//! level per tokenizer; Tables 31a/31b correlate mean query TCR with schema
//! linking.

use crate::Tokenizer;

/// Token-to-character ratio of an identifier under a tokenizer. Returns 0.0
/// for empty input (no characters, no signal).
pub fn token_character_ratio(tokenizer: &dyn Tokenizer, identifier: &str) -> f64 {
    let chars = identifier.chars().count();
    if chars == 0 {
        return 0.0;
    }
    tokenizer.token_count(identifier) as f64 / chars as f64
}

/// Aggregate TCR statistics over a set of identifiers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcrSummary {
    /// Arithmetic mean TCR.
    pub mean: f64,
    /// Minimum observed TCR.
    pub min: f64,
    /// Maximum observed TCR.
    pub max: f64,
    /// Number of identifiers summarized.
    pub n: usize,
}

impl TcrSummary {
    /// Summarize TCR over identifiers; `None` when the iterator is empty.
    pub fn compute<'a>(
        tokenizer: &dyn Tokenizer,
        identifiers: impl IntoIterator<Item = &'a str>,
    ) -> Option<TcrSummary> {
        let mut n = 0usize;
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for id in identifiers {
            let tcr = token_character_ratio(tokenizer, id);
            sum += tcr;
            min = min.min(tcr);
            max = max.max(tcr);
            n += 1;
        }
        (n > 0).then(|| TcrSummary { mean: sum / n as f64, min, max, n })
    }
}

/// Mean token count over identifiers (Figure 27 support).
pub fn mean_token_count<'a>(
    tokenizer: &dyn Tokenizer,
    identifiers: impl IntoIterator<Item = &'a str>,
) -> f64 {
    let mut n = 0usize;
    let mut sum = 0usize;
    for id in identifiers {
        sum += tokenizer.token_count(id);
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chars::CharTokenizer;
    use crate::{tokenizer_for, TokenizerProfile};

    #[test]
    fn char_tokenizer_tcr_is_one() {
        let t = CharTokenizer::new("c");
        assert_eq!(token_character_ratio(&t, "abcdef"), 1.0);
    }

    #[test]
    fn empty_identifier_tcr_zero() {
        let t = CharTokenizer::new("c");
        assert_eq!(token_character_ratio(&t, ""), 0.0);
    }

    #[test]
    fn natural_identifiers_have_lower_tcr() {
        let t = tokenizer_for(TokenizerProfile::GptLike);
        let regular = token_character_ratio(t, "vegetation_height");
        let least = token_character_ratio(t, "VgHt");
        assert!(regular < least, "regular {regular} !< least {least}");
    }

    #[test]
    fn summary_over_set() {
        let t = CharTokenizer::new("c");
        let s = TcrSummary::compute(&t, ["ab", "cd", "ef"]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 1.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1.0);
    }

    #[test]
    fn summary_empty_is_none() {
        let t = CharTokenizer::new("c");
        assert!(TcrSummary::compute(&t, std::iter::empty()).is_none());
    }

    #[test]
    fn mean_token_count_works() {
        let t = CharTokenizer::new("c");
        assert_eq!(mean_token_count(&t, ["ab", "abcd"]), 3.0);
        assert_eq!(mean_token_count(&t, std::iter::empty()), 0.0);
    }
}
