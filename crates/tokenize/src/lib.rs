#![warn(missing_docs)]

//! # snails-tokenize
//!
//! Tokenization substrate for the SNAILS benchmark. The paper analyses the
//! relationship between identifier naturalness and *tokenizer behaviour*
//! (appendix B.9): natural identifiers consist of in-vocabulary words and
//! tokenize to few tokens per character, while abbreviations fragment into
//! many sub-tokens. This drives the token-count CDFs (Figure 27), the
//! token-to-character-ratio analysis (Figure 28, Equation 6), and the
//! TCR ↔ QueryRecall Kendall-τ tables (Figures 31a/31b).
//!
//! The paper used the proprietary tiktoken / CodeLlama / Bison tokenizers;
//! this crate substitutes a from-scratch trainable byte-pair-encoding (BPE)
//! tokenizer trained on the embedded English corpus, plus a character-level
//! tokenizer modelling CANINE. The substitution preserves the property under
//! study: out-of-vocabulary character sequences split into multiple subtokens.

pub mod bpe;
pub mod chars;
pub mod corpus;
pub mod tcr;
pub mod vocab;

pub use bpe::{BpeTokenizer, BpeTrainer};
pub use chars::CharTokenizer;
pub use tcr::{token_character_ratio, TcrSummary};
pub use vocab::Vocabulary;

use std::sync::OnceLock;

/// A tokenizer that maps an identifier to a sequence of token ids.
pub trait Tokenizer {
    /// Human-readable tokenizer name (appears in figure legends).
    fn name(&self) -> &str;
    /// Encode text to token ids.
    fn encode(&self, text: &str) -> Vec<u32>;
    /// Number of tokens produced for `text` (may avoid materializing ids).
    fn token_count(&self, text: &str) -> usize {
        self.encode(text).len()
    }
}

/// Profiles mirroring the model tokenizers compared in Figures 27/28.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenizerProfile {
    /// Large-vocabulary BPE (tiktoken-like: GPT family).
    GptLike,
    /// Mid-vocabulary BPE (SentencePiece-BPE-like: CodeLlama family).
    CodeLlamaLike,
    /// Small-vocabulary BPE (legacy Bison-like).
    BisonLike,
    /// Character-level (CANINE-like).
    CharLevel,
}

impl TokenizerProfile {
    /// All profiles, in figure order.
    pub const ALL: [TokenizerProfile; 4] = [
        TokenizerProfile::GptLike,
        TokenizerProfile::CodeLlamaLike,
        TokenizerProfile::BisonLike,
        TokenizerProfile::CharLevel,
    ];

    /// Display name used in reproduced figures.
    pub fn display_name(&self) -> &'static str {
        match self {
            TokenizerProfile::GptLike => "gpt-bpe",
            TokenizerProfile::CodeLlamaLike => "codellama-bpe",
            TokenizerProfile::BisonLike => "bison-bpe",
            TokenizerProfile::CharLevel => "canine-char",
        }
    }

    /// Merge budget for the BPE trainer (ignored for CharLevel).
    fn merge_budget(&self) -> usize {
        match self {
            TokenizerProfile::GptLike => 4000,
            TokenizerProfile::CodeLlamaLike => 2000,
            TokenizerProfile::BisonLike => 800,
            TokenizerProfile::CharLevel => 0,
        }
    }
}

/// A lazily trained, process-wide tokenizer for each profile.
pub fn tokenizer_for(profile: TokenizerProfile) -> &'static dyn Tokenizer {
    static GPT: OnceLock<BpeTokenizer> = OnceLock::new();
    static LLAMA: OnceLock<BpeTokenizer> = OnceLock::new();
    static BISON: OnceLock<BpeTokenizer> = OnceLock::new();
    static CHAR: OnceLock<CharTokenizer> = OnceLock::new();

    fn train(profile: TokenizerProfile) -> BpeTokenizer {
        let corpus = corpus::english_training_corpus();
        BpeTrainer::new(profile.merge_budget())
            .with_name(profile.display_name())
            .train(&corpus)
    }

    match profile {
        TokenizerProfile::GptLike => GPT.get_or_init(|| train(profile)),
        TokenizerProfile::CodeLlamaLike => LLAMA.get_or_init(|| train(profile)),
        TokenizerProfile::BisonLike => BISON.get_or_init(|| train(profile)),
        TokenizerProfile::CharLevel => {
            CHAR.get_or_init(|| CharTokenizer::new("canine-char"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_distinct_names() {
        let names: std::collections::HashSet<_> =
            TokenizerProfile::ALL.iter().map(|p| p.display_name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn natural_words_tokenize_shorter_than_abbreviations() {
        let t = tokenizer_for(TokenizerProfile::GptLike);
        // Same semantics, decreasing naturalness. Per-character token cost
        // must increase as the identifier becomes less natural.
        let tcr_regular = t.token_count("vegetation") as f64 / "vegetation".len() as f64;
        let tcr_least = t.token_count("vgtn") as f64 / "vgtn".len() as f64;
        assert!(
            tcr_regular < tcr_least,
            "regular tcr {tcr_regular} !< least tcr {tcr_least}"
        );
    }

    #[test]
    fn char_level_is_one_token_per_char() {
        let t = tokenizer_for(TokenizerProfile::CharLevel);
        assert_eq!(t.token_count("AuthorID"), 8);
    }

    #[test]
    fn tokenizers_are_cached() {
        let a = tokenizer_for(TokenizerProfile::GptLike) as *const dyn Tokenizer;
        let b = tokenizer_for(TokenizerProfile::GptLike) as *const dyn Tokenizer;
        assert_eq!(a as *const u8, b as *const u8);
    }
}
