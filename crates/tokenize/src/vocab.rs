//! Token vocabulary: bidirectional token-string ↔ id mapping.

use std::collections::HashMap;

/// A growable vocabulary assigning dense `u32` ids to token strings.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    by_token: HashMap<String, u32>,
    by_id: Vec<String>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Id for `token`, inserting it if new.
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.by_token.get(token) {
            return id;
        }
        let id = self.by_id.len() as u32;
        self.by_token.insert(token.to_owned(), id);
        self.by_id.push(token.to_owned());
        id
    }

    /// Id for `token` if already present.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.by_token.get(token).copied()
    }

    /// Token string for `id`, if in range.
    pub fn token(&self, id: u32) -> Option<&str> {
        self.by_id.get(id as usize).map(String::as_str)
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterate `(id, token)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, t)| (i as u32, t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("veg");
        let b = v.intern("veg");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn round_trip() {
        let mut v = Vocabulary::new();
        let id = v.intern("height");
        assert_eq!(v.token(id), Some("height"));
        assert_eq!(v.get("height"), Some(id));
        assert_eq!(v.get("absent"), None);
        assert_eq!(v.token(999), None);
    }

    #[test]
    fn ids_are_dense() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("a"), 0);
        assert_eq!(v.intern("b"), 1);
        assert_eq!(v.intern("c"), 2);
        let ids: Vec<u32> = v.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, [0, 1, 2]);
    }
}
