//! BPE training corpus.
//!
//! Model tokenizers are trained on web-scale natural text; the key property
//! for SNAILS is that *English words and common morphemes are in-vocabulary*
//! while arbitrary consonant skeletons are not. We approximate that by
//! training on the embedded dictionary with Zipf-like frequency weights
//! (shorter, more common words get higher weight), plus the conventional
//! abbreviation table at low weight (real tokenizers have seen some code).

use snails_lexicon::abbrev::CONVENTIONAL_ABBREVIATIONS;
use snails_lexicon::dictionary;

/// Zipf-ish weight for a word: frequency inversely related to length rank.
fn weight_for(word: &str) -> u64 {
    match word.len() {
        0..=3 => 400,
        4..=5 => 180,
        6..=7 => 90,
        8..=9 => 45,
        10..=12 => 20,
        _ => 8,
    }
}

/// The standard English training corpus: `(word, frequency)` pairs.
pub fn english_training_corpus() -> Vec<(String, u64)> {
    let dict = dictionary();
    let mut corpus: Vec<(String, u64)> = dict
        .iter()
        .map(|w| (w.to_owned(), weight_for(w)))
        .collect();
    // A sprinkle of conventional abbreviations (code exposure).
    for (abbr, _) in CONVENTIONAL_ABBREVIATIONS {
        corpus.push(((*abbr).to_owned(), 3));
    }
    // Deterministic order for reproducible training.
    corpus.sort();
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_nonempty_and_sorted() {
        let c = english_training_corpus();
        assert!(c.len() > 1500);
        assert!(c.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn short_words_weigh_more() {
        assert!(weight_for("the") > weight_for("vegetation"));
    }

    #[test]
    fn deterministic() {
        assert_eq!(english_training_corpus(), english_training_corpus());
    }
}
