//! Character-level tokenizer (CANINE substitute).
//!
//! CANINE tokenizes at the character level; the paper selected it precisely
//! because abbreviation detection needs sub-word granularity. This tokenizer
//! maps each Unicode scalar to a stable id (its code point).

use crate::Tokenizer;

/// One token per character; id = code point.
#[derive(Debug, Clone)]
pub struct CharTokenizer {
    name: String,
}

impl CharTokenizer {
    /// New named character tokenizer.
    pub fn new(name: &str) -> Self {
        CharTokenizer { name: name.to_owned() }
    }
}

impl Tokenizer for CharTokenizer {
    fn name(&self) -> &str {
        &self.name
    }

    fn encode(&self, text: &str) -> Vec<u32> {
        text.chars().map(|c| c as u32).collect()
    }

    fn token_count(&self, text: &str) -> usize {
        text.chars().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_token_per_char() {
        let t = CharTokenizer::new("c");
        assert_eq!(t.token_count("VgHt"), 4);
        assert_eq!(t.encode("ab"), [97, 98]);
    }

    #[test]
    fn empty_text() {
        let t = CharTokenizer::new("c");
        assert!(t.encode("").is_empty());
        assert_eq!(t.token_count(""), 0);
    }

    #[test]
    fn name_round_trips() {
        assert_eq!(CharTokenizer::new("canine").name(), "canine");
    }
}
