//! From-scratch byte-pair-encoding tokenizer.
//!
//! Standard BPE: start from single characters, repeatedly merge the most
//! frequent adjacent pair in the training corpus, record the merge order, and
//! at encode time greedily apply merges by rank. Word-internal only — text is
//! first split at non-alphanumeric boundaries and camel-case transitions
//! (identifier-aware pre-tokenization, matching how code tokenizers treat
//! identifiers).

use crate::vocab::Vocabulary;
use crate::Tokenizer;
use std::collections::HashMap;

/// A learned merge rule: `(left, right) → rank` (lower rank = earlier merge).
type MergeTable = HashMap<(String, String), usize>;

/// Trainer configuration for [`BpeTokenizer`].
#[derive(Debug, Clone)]
pub struct BpeTrainer {
    merges: usize,
    name: String,
}

impl BpeTrainer {
    /// Trainer that will learn at most `merges` merge rules.
    pub fn new(merges: usize) -> Self {
        BpeTrainer { merges, name: "bpe".to_owned() }
    }

    /// Set the tokenizer display name.
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_owned();
        self
    }

    /// Train on a corpus of `(word, frequency)` pairs.
    pub fn train_weighted(&self, corpus: &[(String, u64)]) -> BpeTokenizer {
        // Represent each corpus word as a symbol sequence.
        let mut words: Vec<(Vec<String>, u64)> = corpus
            .iter()
            .filter(|(w, _)| !w.is_empty())
            .map(|(w, f)| {
                (
                    w.chars().map(|c| c.to_string()).collect::<Vec<_>>(),
                    *f,
                )
            })
            .collect();

        let mut merge_table: MergeTable = HashMap::new();
        for rank in 0..self.merges {
            // Count adjacent pairs.
            let mut pair_counts: HashMap<(&str, &str), u64> = HashMap::new();
            for (symbols, freq) in &words {
                for pair in symbols.windows(2) {
                    *pair_counts
                        .entry((pair[0].as_str(), pair[1].as_str()))
                        .or_insert(0) += freq;
                }
            }
            // Deterministic arg-max: highest count, then lexicographic.
            let best = pair_counts
                .iter()
                .filter(|(_, &c)| c >= 2)
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)));
            let Some((&(left, right), _)) = best else { break };
            let (left, right) = (left.to_owned(), right.to_owned());
            let merged = format!("{left}{right}");

            for (symbols, _) in &mut words {
                let mut i = 0;
                while i + 1 < symbols.len() {
                    if symbols[i] == left && symbols[i + 1] == right {
                        symbols[i] = merged.clone();
                        symbols.remove(i + 1);
                    } else {
                        i += 1;
                    }
                }
            }
            merge_table.insert((left, right), rank);
        }

        // Build the vocabulary: all single chars seen + all merged symbols.
        let mut vocab = Vocabulary::new();
        for (w, _) in corpus {
            for c in w.chars() {
                vocab.intern(&c.to_string());
            }
        }
        for (symbols, _) in &words {
            for s in symbols {
                vocab.intern(s);
            }
        }
        for (l, r) in merge_table.keys() {
            vocab.intern(&format!("{l}{r}"));
        }

        BpeTokenizer { name: self.name.clone(), merges: merge_table, vocab }
    }

    /// Train on raw text: whitespace-split, lowercase, frequency-counted.
    pub fn train(&self, corpus: &[(String, u64)]) -> BpeTokenizer {
        self.train_weighted(corpus)
    }
}

/// A trained BPE tokenizer.
#[derive(Debug, Clone)]
pub struct BpeTokenizer {
    name: String,
    merges: MergeTable,
    vocab: Vocabulary,
}

impl BpeTokenizer {
    /// Number of learned merge rules.
    pub fn merge_count(&self) -> usize {
        self.merges.len()
    }

    /// The tokenizer's vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Tokenize one pre-split word into subword strings.
    pub fn encode_word(&self, word: &str) -> Vec<String> {
        let mut symbols: Vec<String> = word.chars().map(|c| c.to_string()).collect();
        if symbols.len() < 2 {
            return symbols;
        }
        loop {
            // Find the lowest-rank applicable merge.
            let mut best: Option<(usize, usize)> = None; // (rank, index)
            for i in 0..symbols.len() - 1 {
                if let Some(&rank) = self
                    .merges
                    .get(&(symbols[i].clone(), symbols[i + 1].clone()))
                {
                    if best.is_none_or(|(r, _)| rank < r) {
                        best = Some((rank, i));
                    }
                }
            }
            let Some((_, i)) = best else { break };
            let merged = format!("{}{}", symbols[i], symbols[i + 1]);
            symbols[i] = merged;
            symbols.remove(i + 1);
            if symbols.len() < 2 {
                break;
            }
        }
        symbols
    }

    /// Pre-tokenize into word chunks: lowercase alphanumeric runs split at
    /// case transitions and separators, mirroring code-model pre-tokenizers.
    fn pre_tokenize(text: &str) -> Vec<String> {
        snails_lexicon::split_identifier(text)
            .into_iter()
            .map(|t| t.text.to_ascii_lowercase())
            .collect()
    }

    /// Tokenize arbitrary text into subword strings.
    pub fn encode_strings(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        for chunk in Self::pre_tokenize(text) {
            out.extend(self.encode_word(&chunk));
        }
        out
    }
}

impl Tokenizer for BpeTokenizer {
    fn name(&self) -> &str {
        &self.name
    }

    fn encode(&self, text: &str) -> Vec<u32> {
        self.encode_strings(text)
            .into_iter()
            .map(|s| self.vocab.get(&s).unwrap_or(u32::MAX))
            .collect()
    }
}

#[cfg(test)]
mod test_util {
    use super::*;

    pub fn tiny_tokenizer() -> BpeTokenizer {
        let corpus: Vec<(String, u64)> = [
            ("height", 50),
            ("weight", 40),
            ("vegetation", 30),
            ("station", 30),
            ("nation", 20),
            ("the", 100),
            ("then", 40),
        ]
        .into_iter()
        .map(|(w, f)| (w.to_owned(), f))
        .collect();
        BpeTrainer::new(200).with_name("tiny").train(&corpus)
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::tiny_tokenizer;
    use super::*;

    #[test]
    fn trained_words_become_single_tokens() {
        let t = tiny_tokenizer();
        assert_eq!(t.encode_word("height"), ["height"]);
        assert_eq!(t.encode_word("the"), ["the"]);
    }

    #[test]
    fn shared_suffixes_merge() {
        let t = tiny_tokenizer();
        // "ation" appears in vegetation/station/nation — unseen "cation"
        // should still benefit from the shared merges.
        let toks = t.encode_word("cation");
        assert!(toks.len() <= 3, "no merges applied: {toks:?}");
    }

    #[test]
    fn oov_fragments_into_more_tokens() {
        let t = tiny_tokenizer();
        let natural = t.encode_word("height").len();
        let abbreviated = t.encode_word("hght").len();
        assert!(abbreviated > natural);
    }

    #[test]
    fn single_char_and_empty() {
        let t = tiny_tokenizer();
        assert_eq!(t.encode_word("x"), ["x"]);
        assert!(t.encode_word("").is_empty());
    }

    #[test]
    fn encode_splits_identifiers() {
        let t = tiny_tokenizer();
        let toks = t.encode_strings("VegHeight_2");
        assert!(toks.iter().any(|s| s.contains('h')), "{toks:?}");
        // Separator is dropped; digits tokenized separately.
        assert!(toks.iter().all(|s| !s.contains('_')));
    }

    #[test]
    fn encode_ids_are_in_vocab() {
        let t = tiny_tokenizer();
        for id in t.encode("vegetation height") {
            assert!(t.vocabulary().token(id).is_some());
        }
    }

    #[test]
    fn merge_budget_respected() {
        let corpus: Vec<(String, u64)> =
            [("aaaa", 10u64), ("aaab", 10)].map(|(w, f)| (w.to_owned(), f)).to_vec();
        let t = BpeTrainer::new(1).train(&corpus);
        assert!(t.merge_count() <= 1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::test_util::tiny_tokenizer;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn encode_word_preserves_characters(word in "[a-z]{1,16}") {
            let t = tiny_tokenizer();
            let toks = t.encode_word(&word);
            let rebuilt: String = toks.concat();
            prop_assert_eq!(rebuilt, word);
        }

        #[test]
        fn token_count_le_char_count(word in "[a-z]{1,16}") {
            let t = tiny_tokenizer();
            prop_assert!(t.encode_word(&word).len() <= word.len());
        }
    }
}
