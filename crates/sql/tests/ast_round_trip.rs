//! Property test: every AST the generator can produce renders to SQL text
//! that reparses to the identical AST. This is the invariant the whole
//! middleware stack (naturalization, denaturalization, mutation) relies on.

use proptest::prelude::*;
use snails_sql::*;

fn arb_ident() -> impl Strategy<Value = String> {
    // Mix plain identifiers, keyword-colliding names, and names needing
    // bracket quoting.
    prop_oneof![
        "[a-z][a-z0-9_]{0,10}",
        Just("order".to_owned()),
        Just("Group".to_owned()),
        Just("loc type".to_owned()),
        Just("tbl_Locations".to_owned()),
        Just("2fast".to_owned()),
    ]
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        any::<i32>().prop_map(|n| Literal::Int(n as i64)),
        (-1000i32..1000).prop_map(|n| Literal::Float(n as f64 / 8.0)),
        "[a-zA-Z' ]{0,12}".prop_map(Literal::Str),
        Just(Literal::Null),
    ]
}

fn arb_column() -> impl Strategy<Value = Expr> {
    (proptest::option::of(arb_ident()), arb_ident())
        .prop_map(|(qualifier, name)| Expr::Column(ColumnRef { qualifier, name }))
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![arb_column(), arb_literal().prop_map(Expr::Literal)];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just(BinOp::Eq), Just(BinOp::NotEq), Just(BinOp::Lt), Just(BinOp::LtEq),
                Just(BinOp::Gt), Just(BinOp::GtEq), Just(BinOp::And), Just(BinOp::Or),
                Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul), Just(BinOp::Div),
                Just(BinOp::Mod),
            ])
                .prop_map(|(l, r, op)| Expr::binary(l, op, r)),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e)
            }),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated
            }),
            (inner.clone(), proptest::collection::vec(inner.clone(), 1..3), any::<bool>())
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated
                }),
            (inner.clone(), "[a-z%_]{0,8}", any::<bool>()).prop_map(|(e, pattern, negated)| {
                Expr::Like { expr: Box::new(e), pattern, negated }
            }),
            (
                proptest::option::of(inner.clone()),
                proptest::collection::vec((inner.clone(), inner.clone()), 1..3),
                proptest::option::of(inner.clone()),
            )
                .prop_map(|(operand, branches, else_expr)| Expr::Case {
                    operand: operand.map(Box::new),
                    branches,
                    else_expr: else_expr.map(Box::new),
                }),
            (
                prop_oneof![
                    Just("SUM"), Just("AVG"), Just("MIN"), Just("MAX"), Just("YEAR"),
                    Just("UPPER"), Just("LOWER"), Just("LEN"), Just("ABS"), Just("ROUND"),
                    Just("MYFUNC"),
                ],
                proptest::collection::vec(inner.clone(), 0..3),
                any::<bool>()
            )
                .prop_map(|(name, args, distinct)| Expr::Function {
                    name: name.to_owned(),
                    args: args.into_iter().map(FunctionArg::Expr).collect(),
                    distinct,
                }),
        ]
    })
}

fn arb_source() -> impl Strategy<Value = TableSource> {
    (arb_ident(), proptest::option::of(arb_ident()), proptest::option::of("[a-z]{1,4}"))
        .prop_map(|(name, schema, alias)| TableSource::Named { schema, name, alias })
}

fn arb_select() -> impl Strategy<Value = SelectStatement> {
    (
        any::<bool>(),
        proptest::option::of(0u64..100),
        proptest::collection::vec(
            prop_oneof![
                Just(SelectItem::Wildcard),
                (arb_expr(), proptest::option::of(arb_ident()))
                    .prop_map(|(expr, alias)| SelectItem::Expr { expr, alias }),
            ],
            1..4,
        ),
        proptest::option::of(arb_source()),
        proptest::collection::vec(
            (
                prop_oneof![
                    Just(JoinKind::Inner),
                    Just(JoinKind::Left),
                    Just(JoinKind::Right),
                    Just(JoinKind::Full)
                ],
                arb_source(),
                arb_expr(),
            )
                .prop_map(|(kind, source, on)| Join { kind, source, on: Some(on) }),
            0..3,
        ),
        proptest::option::of(arb_expr()),
        proptest::collection::vec(arb_expr(), 0..3),
        proptest::option::of(arb_expr()),
        proptest::collection::vec(
            (arb_expr(), any::<bool>()).prop_map(|(expr, descending)| OrderItem {
                expr,
                descending,
            }),
            0..3,
        ),
    )
        .prop_map(
            |(distinct, top, items, from, joins, where_clause, group_by, having, order_by)| {
                SelectStatement {
                    distinct,
                    top,
                    items,
                    // Joins/filters only make sense with a FROM; keep the AST
                    // well-formed.
                    joins: if from.is_some() { joins } else { Vec::new() },
                    where_clause: if from.is_some() { where_clause } else { None },
                    group_by: if from.is_some() { group_by } else { Vec::new() },
                    having: if from.is_some() { having } else { None },
                    from,
                    order_by,
                    union: None,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// render → parse is the identity on well-formed ASTs.
    #[test]
    fn render_parse_round_trip(select in arb_select()) {
        let stmt = Statement::Select(select);
        let rendered = stmt.to_string();
        let reparsed = parse(&rendered)
            .unwrap_or_else(|e| panic!("render produced unparseable SQL: {e}\n{rendered}"));
        prop_assert_eq!(&reparsed, &stmt, "round trip changed AST\nSQL: {}", rendered);
        // And rendering is stable (idempotent normalization).
        prop_assert_eq!(reparsed.to_string(), rendered);
    }

    /// Identifier extraction never panics and aliases never leak into the
    /// identifier sets.
    #[test]
    fn extraction_total(select in arb_select()) {
        let stmt = Statement::Select(select);
        let ids = extract_identifiers(&stmt);
        for alias in &ids.aliases {
            // An identifier used only as an alias must not be counted...
            // unless it is also a real table/column name in the query, which
            // the generator can produce; so we only check the sets are
            // internally consistent (uppercase).
            prop_assert_eq!(alias.to_ascii_uppercase(), alias.clone());
        }
        for t in ids.tables.iter().chain(ids.columns.iter()) {
            prop_assert_eq!(t.to_ascii_uppercase(), t.clone());
        }
    }

    /// Renaming through an empty map is the identity on arbitrary ASTs.
    #[test]
    fn empty_rename_identity(select in arb_select()) {
        let stmt = Statement::Select(select);
        let renamed = rename_identifiers(&stmt, &IdentifierMap::new());
        prop_assert_eq!(renamed, stmt);
    }
}
