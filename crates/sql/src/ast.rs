//! Abstract syntax tree for the SNAILS T-SQL subset.

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT ...`
    Select(SelectStatement),
    /// `CREATE VIEW schema.[name] AS SELECT ...` (natural-view support, §6).
    CreateView {
        /// Optional schema qualifier, e.g. `db_nl`.
        schema: Option<String>,
        /// View name.
        name: String,
        /// The view body.
        query: SelectStatement,
    },
}

/// A `SELECT` statement, optionally followed by `UNION [ALL]` branches.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStatement {
    /// `DISTINCT` flag.
    pub distinct: bool,
    /// `TOP n` (T-SQL replaces `LIMIT`).
    pub top: Option<u64>,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// `FROM` source (absent for e.g. `SELECT 1`).
    pub from: Option<TableSource>,
    /// `JOIN` clauses in order.
    pub joins: Vec<Join>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderItem>,
    /// `UNION [ALL] <select>` continuation (`(kind, rhs)`), applied after
    /// this block's clauses; the chain is right-nested.
    pub union: Option<(UnionKind, Box<SelectStatement>)>,
}

/// Set-operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnionKind {
    /// `UNION` — set semantics (duplicates removed).
    Distinct,
    /// `UNION ALL` — bag semantics.
    All,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional output alias.
        alias: Option<String>,
    },
}

/// A `FROM` / `JOIN` source.
#[derive(Debug, Clone, PartialEq)]
pub enum TableSource {
    /// A named table, optionally schema-qualified and aliased.
    Named {
        /// Optional schema qualifier (`dbo`, `db_nl`).
        schema: Option<String>,
        /// Table name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// `( SELECT ... ) alias` — derived table.
    Derived {
        /// Subquery body.
        query: Box<SelectStatement>,
        /// Required alias.
        alias: String,
    },
}

impl TableSource {
    /// The name this source binds in scope (alias, else table name).
    pub fn binding_name(&self) -> &str {
        match self {
            TableSource::Named { alias: Some(a), .. } => a,
            TableSource::Named { name, .. } => name,
            TableSource::Derived { alias, .. } => alias,
        }
    }
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN`
    Inner,
    /// `LEFT [OUTER] JOIN`
    Left,
    /// `RIGHT [OUTER] JOIN`
    Right,
    /// `FULL [OUTER] JOIN`
    Full,
    /// `CROSS JOIN`
    Cross,
}

impl JoinKind {
    /// Canonical SQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            JoinKind::Inner => "JOIN",
            JoinKind::Left => "LEFT JOIN",
            JoinKind::Right => "RIGHT JOIN",
            JoinKind::Full => "FULL JOIN",
            JoinKind::Cross => "CROSS JOIN",
        }
    }
}

/// A join clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Join kind.
    pub kind: JoinKind,
    /// The joined source.
    pub source: TableSource,
    /// `ON` predicate (`None` for `CROSS JOIN`).
    pub on: Option<Expr>,
}

/// `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort expression.
    pub expr: Expr,
    /// Descending flag (`DESC`).
    pub descending: bool,
}

/// A (possibly qualified) column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Table name or alias qualifier.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
}

impl ColumnRef {
    /// Unqualified reference.
    pub fn bare(name: &str) -> Self {
        ColumnRef { qualifier: None, name: name.to_owned() }
    }

    /// Qualified reference.
    pub fn qualified(qualifier: &str, name: &str) -> Self {
        ColumnRef { qualifier: Some(qualifier.to_owned()), name: name.to_owned() }
    }
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// `NULL`.
    Null,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical `NOT`.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Binary operators, in SQL spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Eq, NotEq, Lt, LtEq, Gt, GtEq, And, Or, Add, Sub, Mul, Div, Mod,
}

impl BinOp {
    /// Canonical SQL spelling.
    pub fn as_str(&self) -> &'static str {
        use BinOp::*;
        match self {
            Eq => "=", NotEq => "<>", Lt => "<", LtEq => "<=", Gt => ">", GtEq => ">=",
            And => "AND", Or => "OR", Add => "+", Sub => "-", Mul => "*", Div => "/",
            Mod => "%",
        }
    }

    /// True for comparison operators.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal value.
    Literal(Literal),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Function call, e.g. `COUNT(*)`, `SUM(x)`, `YEAR(d)`.
    Function {
        /// Function name, stored uppercase.
        name: String,
        /// Arguments ([`FunctionArg`]).
        args: Vec<FunctionArg>,
        /// `DISTINCT` inside the call.
        distinct: bool,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// `NOT IN` when true.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)`
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// Subquery.
        query: Box<SelectStatement>,
        /// `NOT IN` when true.
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT ...)`
    Exists {
        /// Subquery.
        query: Box<SelectStatement>,
        /// `NOT EXISTS` when true.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// `NOT BETWEEN` when true.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern (with `%` / `_` wildcards).
        pattern: String,
        /// `NOT LIKE` when true.
        negated: bool,
    },
    /// Scalar subquery `(SELECT ...)`.
    Subquery(Box<SelectStatement>),
    /// `CASE [operand] WHEN ... THEN ... [ELSE ...] END`
    Case {
        /// Simple-case operand (`CASE x WHEN 1 ...`); `None` for searched
        /// case (`CASE WHEN x = 1 ...`).
        operand: Option<Box<Expr>>,
        /// `(WHEN, THEN)` pairs, in order.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` expression.
        else_expr: Option<Box<Expr>>,
    },
    /// `*` as a function argument is modelled in [`FunctionArg`]; this
    /// variant handles a bare `*` in expression position inside `COUNT(*)`
    /// parsing only and never survives into a finished AST.
    Wildcard,
}

/// Function call arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum FunctionArg {
    /// `*` — only valid in `COUNT(*)`.
    Wildcard,
    /// An ordinary expression argument.
    Expr(Expr),
}

impl Expr {
    /// Build `left op right`.
    pub fn binary(left: Expr, op: BinOp, right: Expr) -> Expr {
        Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
    }

    /// Build an `AND` chain from a non-empty list.
    pub fn and_all(mut exprs: Vec<Expr>) -> Option<Expr> {
        let first = if exprs.is_empty() { return None } else { exprs.remove(0) };
        Some(exprs.into_iter().fold(first, |acc, e| Expr::binary(acc, BinOp::And, e)))
    }

    /// Count of nodes in this expression tree (complexity metric support).
    pub fn node_count(&self) -> usize {
        let mut count = 1;
        self.visit_children(&mut |child| count += child.node_count());
        count
    }

    /// Invoke `f` on each direct child expression.
    pub fn visit_children(&self, f: &mut dyn FnMut(&Expr)) {
        match self {
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => f(expr),
            Expr::Binary { left, right, .. } => {
                f(left);
                f(right);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    if let FunctionArg::Expr(e) = a {
                        f(e);
                    }
                }
            }
            Expr::InList { expr, list, .. } => {
                f(expr);
                for e in list {
                    f(e);
                }
            }
            Expr::InSubquery { expr, .. } => f(expr),
            Expr::Between { expr, low, high, .. } => {
                f(expr);
                f(low);
                f(high);
            }
            Expr::Like { expr, .. } => f(expr),
            Expr::Case { operand, branches, else_expr } => {
                if let Some(op) = operand {
                    f(op);
                }
                for (when, then) in branches {
                    f(when);
                    f(then);
                }
                if let Some(e) = else_expr {
                    f(e);
                }
            }
            Expr::Column(_)
            | Expr::Literal(_)
            | Expr::Exists { .. }
            | Expr::Subquery(_)
            | Expr::Wildcard => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_all_builds_chain() {
        let e = Expr::and_all(vec![
            Expr::Literal(Literal::Int(1)),
            Expr::Literal(Literal::Int(2)),
            Expr::Literal(Literal::Int(3)),
        ])
        .unwrap();
        assert_eq!(e.node_count(), 5);
        assert!(Expr::and_all(vec![]).is_none());
    }

    #[test]
    fn binding_name_prefers_alias() {
        let t = TableSource::Named {
            schema: None,
            name: "OHEM".into(),
            alias: Some("employees".into()),
        };
        assert_eq!(t.binding_name(), "employees");
        let t2 = TableSource::Named { schema: None, name: "OHEM".into(), alias: None };
        assert_eq!(t2.binding_name(), "OHEM");
    }

    #[test]
    fn column_ref_constructors() {
        assert_eq!(ColumnRef::bare("x").qualifier, None);
        assert_eq!(
            ColumnRef::qualified("t", "x"),
            ColumnRef { qualifier: Some("t".into()), name: "x".into() }
        );
    }

    #[test]
    fn comparison_ops() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::And.is_comparison());
    }

    #[test]
    fn node_count_nested() {
        let e = Expr::IsNull {
            expr: Box::new(Expr::Column(ColumnRef::bare("a"))),
            negated: true,
        };
        assert_eq!(e.node_count(), 2);
    }
}
