#![warn(missing_docs)]

//! # snails-sql
//!
//! SQL substrate for the SNAILS benchmark: a lexer, recursive-descent parser,
//! AST, and SQL renderer for the T-SQL dialect subset exercised by the SNAILS
//! gold queries (Table 3 clause inventory: `TOP`, aggregate functions, joins
//! including composite-key joins, `EXISTS`, subqueries, `WHERE`, negation,
//! `GROUP BY`, `ORDER BY`, `HAVING`), plus the analysis services the paper's
//! ANTLR-based Java parser provided:
//!
//! * **identifier extraction** — the set of table and column identifiers in a
//!   query, with aliases tracked and excluded (appendix E.4);
//! * **identifier tagging** — re-render a query with `<TABLE_NAME>` /
//!   `<COLUMN_NAME>` tags encasing identifiers (appendix D.4), which guides
//!   the replacement algorithm during query "denaturalization";
//! * **identifier replacement** — rename tables/columns through a mapping,
//!   both via the tagged-string pathway and directly on the AST;
//! * **clause counting** — the per-query clause profile used for the Table 3
//!   complexity inventory.

pub mod analyze;
pub mod ast;
pub mod lexer;
pub mod parser;
pub mod render;
pub mod tag;

pub use analyze::{clause_profile, extract_identifiers, ClauseProfile, QueryIdentifiers};
pub use ast::{
    BinOp, ColumnRef, Expr, FunctionArg, Join, JoinKind, Literal, OrderItem, SelectItem,
    SelectStatement, Statement, TableSource, UnaryOp, UnionKind,
};
pub use lexer::{tokenize, LexError, Token, TokenKind};
pub use parser::{parse, parse_select, ParseError};
pub use tag::{denaturalize_query, rename_identifiers, tag_query, IdentifierMap};

/// Parse then re-render, normalizing whitespace and keyword case.
///
/// Returns an error when the input is not valid SNAILS-dialect SQL.
pub fn normalize(sql: &str) -> Result<String, ParseError> {
    Ok(parse(sql)?.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_round_trips() {
        let sql = "select   a, b from T where a = 1";
        let norm = normalize(sql).unwrap();
        assert_eq!(norm, "SELECT a, b FROM T WHERE a = 1");
        // Normalization is idempotent.
        assert_eq!(normalize(&norm).unwrap(), norm);
    }

    #[test]
    fn normalize_rejects_garbage() {
        assert!(normalize("this is not sql").is_err());
    }
}
