#![warn(missing_docs)]

//! # snails-sql
//!
//! SQL substrate for the SNAILS benchmark: a lexer, recursive-descent parser,
//! AST, and SQL renderer for the T-SQL dialect subset exercised by the SNAILS
//! gold queries (Table 3 clause inventory: `TOP`, aggregate functions, joins
//! including composite-key joins, `EXISTS`, subqueries, `WHERE`, negation,
//! `GROUP BY`, `ORDER BY`, `HAVING`), plus the analysis services the paper's
//! ANTLR-based Java parser provided:
//!
//! * **identifier extraction** — the set of table and column identifiers in a
//!   query, with aliases tracked and excluded (appendix E.4);
//! * **identifier tagging** — re-render a query with `<TABLE_NAME>` /
//!   `<COLUMN_NAME>` tags encasing identifiers (appendix D.4), which guides
//!   the replacement algorithm during query "denaturalization";
//! * **identifier replacement** — rename tables/columns through a mapping,
//!   both via the tagged-string pathway and directly on the AST;
//! * **clause counting** — the per-query clause profile used for the Table 3
//!   complexity inventory.

pub mod analyze;
pub mod ast;
pub mod lexer;
pub mod parser;
pub mod render;
pub mod tag;

pub use analyze::{clause_profile, extract_identifiers, ClauseProfile, QueryIdentifiers};
pub use ast::{
    BinOp, ColumnRef, Expr, FunctionArg, Join, JoinKind, Literal, OrderItem, SelectItem,
    SelectStatement, Statement, TableSource, UnaryOp, UnionKind,
};
pub use lexer::{tokenize, LexError, Token, TokenKind};
pub use parser::{parse, parse_select, ParseError};
pub use tag::{denaturalize_query, rename_identifiers, tag_query, IdentifierMap};

/// Parse then re-render, normalizing whitespace and keyword case.
///
/// Returns an error when the input is not valid SNAILS-dialect SQL.
pub fn normalize(sql: &str) -> Result<String, ParseError> {
    Ok(parse(sql)?.to_string())
}

/// Token-stream cache key: a cheap normalization for plan/statement caches.
///
/// Two inputs get the same key **iff** they lex to the same token stream —
/// whitespace, comments, and keyword case vanish, while identifier
/// spelling, literals, and token order are preserved (identifier case
/// affects output column names, so it must survive). Since the parser is a
/// pure function of the token stream, equal keys imply equal ASTs; the
/// length-prefixed encoding keeps distinct streams from colliding (e.g. a
/// string literal containing `SELECT` never merges with the keyword).
///
/// Returns `None` when the input does not lex; callers fall back to the
/// uncached parse path for its exact error.
pub fn cache_key(sql: &str) -> Option<String> {
    let tokens = tokenize(sql).ok()?;
    let mut key = String::with_capacity(sql.len());
    for t in &tokens {
        match &t.kind {
            TokenKind::Keyword(k) => {
                key.push('k');
                key.push_str(k.as_str());
            }
            TokenKind::Identifier { .. } => {
                key.push('i');
                key.push_str(&t.text.len().to_string());
                key.push(':');
                key.push_str(&t.text);
            }
            TokenKind::StringLit => {
                key.push('s');
                key.push_str(&t.text.len().to_string());
                key.push(':');
                key.push_str(&t.text);
            }
            TokenKind::Integer(n) => {
                key.push('#');
                key.push_str(&n.to_string());
            }
            TokenKind::Float(x) => {
                // Bit pattern, so -0.0 / NaN spellings stay distinct and
                // no formatting round-trip can merge different floats.
                key.push('f');
                key.push_str(&x.to_bits().to_string());
            }
            TokenKind::Symbol(s) => {
                key.push('y');
                key.push_str(s.as_str());
            }
        }
        key.push(' ');
    }
    Some(key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_round_trips() {
        let sql = "select   a, b from T where a = 1";
        let norm = normalize(sql).unwrap();
        assert_eq!(norm, "SELECT a, b FROM T WHERE a = 1");
        // Normalization is idempotent.
        assert_eq!(normalize(&norm).unwrap(), norm);
    }

    #[test]
    fn normalize_rejects_garbage() {
        assert!(normalize("this is not sql").is_err());
    }

    #[test]
    fn cache_key_ignores_whitespace_and_keyword_case() {
        let a = cache_key("SELECT a FROM t WHERE x = 'hi'").unwrap();
        let b = cache_key("select   a\n FROM  T where x='hi'").unwrap();
        // Keyword case and spacing normalize away; identifier case does not.
        assert_ne!(a, b); // `t` vs `T`
        let c = cache_key("select a from t WHERE x = 'hi'").unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn cache_key_distinguishes_literals_and_identifiers() {
        // A string literal spelling a keyword never merges with the keyword.
        assert_ne!(cache_key("SELECT 'FROM'"), cache_key("SELECT FROM"));
        // Adjacent tokens cannot re-associate across the length prefix.
        assert_ne!(cache_key("SELECT 'ab', 'c'"), cache_key("SELECT 'a', 'bc'"));
        assert_ne!(cache_key("SELECT 1"), cache_key("SELECT 1.0"));
        assert!(cache_key("SELECT 'unterminated").is_none());
    }
}
