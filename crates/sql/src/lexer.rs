//! SQL lexer.
//!
//! Produces a token stream with byte offsets. Supports:
//! * bare identifiers (`tbl_Locations`), bracket-quoted identifiers
//!   (`[Loc Type]` — T-SQL), and double-quoted identifiers;
//! * case-insensitive keywords;
//! * integer, decimal, and string (`'...'` with `''` escape) literals;
//! * comparison / arithmetic operators and punctuation;
//! * `--` line comments and `/* */` block comments.

use std::fmt;

/// Lexical error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input.
    pub position: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword (uppercased canonical text in [`Token::text`]).
    Keyword(Keyword),
    /// Identifier; `quoted` records bracket/double-quote quoting.
    Identifier {
        /// True when the identifier was `[bracketed]` or `"quoted"`.
        quoted: bool,
    },
    /// Integer literal.
    Integer(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (unescaped content in [`Token::text`]).
    StringLit,
    /// Operator or punctuation, e.g. `=`, `<>`, `(`, `,`.
    Symbol(Symbol),
}

/// Recognized keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Select, From, Where, Group, Order, By, Having, Top, Distinct, As, Join, Inner, Left,
    Right, Full, Outer, Cross, On, And, Or, Not, In, Exists, Between, Like, Is, Null,
    Asc, Desc, Union, All, Case, When, Then, Else, End, Create, View, Schema, Table,
}

impl Keyword {
    /// Canonical uppercase spelling.
    pub fn as_str(&self) -> &'static str {
        use Keyword::*;
        match self {
            Select => "SELECT", From => "FROM", Where => "WHERE", Group => "GROUP",
            Order => "ORDER", By => "BY", Having => "HAVING", Top => "TOP",
            Distinct => "DISTINCT", As => "AS", Join => "JOIN", Inner => "INNER",
            Left => "LEFT", Right => "RIGHT", Full => "FULL", Outer => "OUTER",
            Cross => "CROSS", On => "ON", And => "AND", Or => "OR", Not => "NOT",
            In => "IN", Exists => "EXISTS", Between => "BETWEEN", Like => "LIKE",
            Is => "IS", Null => "NULL", Asc => "ASC", Desc => "DESC", Union => "UNION",
            All => "ALL", Case => "CASE", When => "WHEN", Then => "THEN", Else => "ELSE",
            End => "END", Create => "CREATE", View => "VIEW", Schema => "SCHEMA",
            Table => "TABLE",
        }
    }

    fn from_str_ci(s: &str) -> Option<Keyword> {
        use Keyword::*;
        const ALL_KW: &[Keyword] = &[
            Select, From, Where, Group, Order, By, Having, Top, Distinct, As, Join, Inner,
            Left, Right, Full, Outer, Cross, On, And, Or, Not, In, Exists, Between, Like,
            Is, Null, Asc, Desc, Union, All, Case, When, Then, Else, End, Create, View,
            Schema, Table,
        ];
        ALL_KW.iter().copied().find(|k| k.as_str().eq_ignore_ascii_case(s))
    }
}

/// Operators and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Symbol {
    Eq, NotEq, Lt, LtEq, Gt, GtEq, Plus, Minus, Star, Slash, Percent,
    LParen, RParen, Comma, Dot, Semicolon,
}

impl Symbol {
    /// Canonical spelling.
    pub fn as_str(&self) -> &'static str {
        use Symbol::*;
        match self {
            Eq => "=", NotEq => "<>", Lt => "<", LtEq => "<=", Gt => ">", GtEq => ">=",
            Plus => "+", Minus => "-", Star => "*", Slash => "/", Percent => "%",
            LParen => "(", RParen => ")", Comma => ",", Dot => ".", Semicolon => ";",
        }
    }
}

/// A lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// Source text (identifier spelling, unescaped string content, etc.).
    pub text: String,
    /// Byte offset of the token start.
    pub position: usize,
}

struct Lexer<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.input.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(LexError {
                                    message: "unterminated block comment".into(),
                                    position: start,
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number(&mut self) -> Result<Token, LexError> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|b| b.is_ascii_digit()) {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .expect("digits are utf8")
            .to_owned();
        let kind = if is_float {
            TokenKind::Float(text.parse().map_err(|_| LexError {
                message: format!("bad float literal {text}"),
                position: start,
            })?)
        } else {
            TokenKind::Integer(text.parse().map_err(|_| LexError {
                message: format!("bad integer literal {text}"),
                position: start,
            })?)
        };
        Ok(Token { kind, text, position: start })
    }

    fn lex_string(&mut self) -> Result<Token, LexError> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut content = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        content.push('\'');
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Some(b) => content.push(b as char),
                None => {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        position: start,
                    })
                }
            }
        }
        Ok(Token { kind: TokenKind::StringLit, text: content, position: start })
    }

    fn lex_bracketed(&mut self, close: u8) -> Result<Token, LexError> {
        let start = self.pos;
        self.pos += 1; // opening bracket/quote
        let mut content = String::new();
        loop {
            match self.bump() {
                Some(b) if b == close => break,
                Some(b) => content.push(b as char),
                None => {
                    return Err(LexError {
                        message: "unterminated quoted identifier".into(),
                        position: start,
                    })
                }
            }
        }
        Ok(Token {
            kind: TokenKind::Identifier { quoted: true },
            text: content,
            position: start,
        })
    }

    fn lex_word(&mut self) -> Token {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'@' || b == b'#')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .expect("ascii word")
            .to_owned();
        match Keyword::from_str_ci(&text) {
            Some(kw) => Token {
                kind: TokenKind::Keyword(kw),
                text: kw.as_str().to_owned(),
                position: start,
            },
            None => Token {
                kind: TokenKind::Identifier { quoted: false },
                text,
                position: start,
            },
        }
    }

    fn lex_symbol(&mut self) -> Result<Token, LexError> {
        let start = self.pos;
        let b = self.bump().expect("caller checked non-empty");
        let sym = match b {
            b'=' => Symbol::Eq,
            b'<' => match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    Symbol::NotEq
                }
                Some(b'=') => {
                    self.pos += 1;
                    Symbol::LtEq
                }
                _ => Symbol::Lt,
            },
            b'>' => match self.peek() {
                Some(b'=') => {
                    self.pos += 1;
                    Symbol::GtEq
                }
                _ => Symbol::Gt,
            },
            b'!' => match self.peek() {
                Some(b'=') => {
                    self.pos += 1;
                    Symbol::NotEq
                }
                _ => {
                    return Err(LexError {
                        message: "bare '!' is not an operator".into(),
                        position: start,
                    })
                }
            },
            b'+' => Symbol::Plus,
            b'-' => Symbol::Minus,
            b'*' => Symbol::Star,
            b'/' => Symbol::Slash,
            b'%' => Symbol::Percent,
            b'(' => Symbol::LParen,
            b')' => Symbol::RParen,
            b',' => Symbol::Comma,
            b'.' => Symbol::Dot,
            b';' => Symbol::Semicolon,
            other => {
                return Err(LexError {
                    message: format!("unexpected character {:?}", other as char),
                    position: start,
                })
            }
        };
        Ok(Token {
            kind: TokenKind::Symbol(sym),
            text: sym.as_str().to_owned(),
            position: start,
        })
    }
}

/// Tokenize SQL text into a token vector.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, LexError> {
    let mut lexer = Lexer { input: sql.as_bytes(), pos: 0 };
    let mut tokens = Vec::new();
    loop {
        lexer.skip_trivia()?;
        let Some(b) = lexer.peek() else { break };
        let token = match b {
            b'0'..=b'9' => lexer.lex_number()?,
            b'\'' => lexer.lex_string()?,
            b'[' => lexer.lex_bracketed(b']')?,
            b'"' => lexer.lex_bracketed(b'"')?,
            b if b.is_ascii_alphabetic() || b == b'_' || b == b'@' || b == b'#' => {
                lexer.lex_word()
            }
            _ => lexer.lex_symbol()?,
        };
        tokens.push(token);
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = tokenize("select FROM Where").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Keyword(Keyword::Select));
        assert_eq!(toks[1].kind, TokenKind::Keyword(Keyword::From));
        assert_eq!(toks[2].kind, TokenKind::Keyword(Keyword::Where));
        assert_eq!(toks[0].text, "SELECT");
    }

    #[test]
    fn identifiers_preserve_case() {
        let toks = tokenize("tbl_Locations").unwrap();
        assert_eq!(toks[0].text, "tbl_Locations");
        assert_eq!(toks[0].kind, TokenKind::Identifier { quoted: false });
    }

    #[test]
    fn bracketed_identifiers() {
        let toks = tokenize("[Loc Type]").unwrap();
        assert_eq!(toks[0].text, "Loc Type");
        assert_eq!(toks[0].kind, TokenKind::Identifier { quoted: true });
    }

    #[test]
    fn string_literals_with_escape() {
        let toks = tokenize("'Shasta''s County'").unwrap();
        assert_eq!(toks[0].text, "Shasta's County");
        assert_eq!(toks[0].kind, TokenKind::StringLit);
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42"), [TokenKind::Integer(42)]);
        assert_eq!(kinds("3.5"), [TokenKind::Float(3.5)]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= <> != <= >= < >"),
            [
                TokenKind::Symbol(Symbol::Eq),
                TokenKind::Symbol(Symbol::NotEq),
                TokenKind::Symbol(Symbol::NotEq),
                TokenKind::Symbol(Symbol::LtEq),
                TokenKind::Symbol(Symbol::GtEq),
                TokenKind::Symbol(Symbol::Lt),
                TokenKind::Symbol(Symbol::Gt),
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT -- comment\n a /* block */ FROM t").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn positions_recorded() {
        let toks = tokenize("a = 1").unwrap();
        assert_eq!(toks[0].position, 0);
        assert_eq!(toks[1].position, 2);
        assert_eq!(toks[2].position, 4);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
        assert!(tokenize("[oops").is_err());
        assert!(tokenize("/* oops").is_err());
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").unwrap().is_empty());
        assert!(tokenize("   \n\t ").unwrap().is_empty());
    }

    #[test]
    fn unexpected_char_errors() {
        let err = tokenize("a ? b").unwrap_err();
        assert_eq!(err.position, 2);
    }
}
