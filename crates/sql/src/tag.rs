//! Identifier tagging and replacement (appendix D.2 / D.4).
//!
//! During virtual-schema experiments the LLM sees modified identifiers; the
//! generated query must be "denaturalized" (modified identifiers replaced by
//! their Native counterparts) before execution. Plain string replacement is
//! unsafe because identifiers can be substrings of one another, so the paper
//! tags table and column names with XML-like markers via its parser and
//! replaces tagged spans. This module provides:
//!
//! * [`tag_query`] — the tagged rendering (`<TABLE_NAME>LOCS</TABLE_NAME>`),
//!   reproduced for fidelity with the paper's middleware;
//! * [`rename_identifiers`] — a direct AST rename, the mechanism actually
//!   used by the benchmark pipeline (equivalent, and immune to string-level
//!   corruption by construction);
//! * [`denaturalize_query`] — parse → rename → render.

use crate::ast::*;
use crate::parser::{parse, ParseError};
use std::collections::{BTreeSet, HashMap};

/// Case-insensitive identifier → replacement mapping.
#[derive(Debug, Clone, Default)]
pub struct IdentifierMap {
    map: HashMap<String, String>,
}

impl IdentifierMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(from, to)` pairs.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> Self {
        let mut m = Self::new();
        for (from, to) in pairs {
            m.insert(from, to);
        }
        m
    }

    /// Insert a mapping (case-insensitive on the source side).
    pub fn insert(&mut self, from: &str, to: &str) {
        self.map.insert(from.to_ascii_uppercase(), to.to_owned());
    }

    /// Look up the replacement for `ident`, if any.
    pub fn get(&self, ident: &str) -> Option<&str> {
        self.map.get(&ident.to_ascii_uppercase()).map(String::as_str)
    }

    /// Replacement for `ident`, or `ident` itself.
    pub fn resolve<'a>(&'a self, ident: &'a str) -> &'a str {
        self.get(ident).unwrap_or(ident)
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no mappings exist.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Invert the map (replacement → original). Fails silently on collisions
    /// by keeping the first entry (callers build bijective crosswalks).
    pub fn inverted(&self) -> IdentifierMap {
        let mut inv = IdentifierMap::new();
        let mut entries: Vec<_> = self.map.iter().collect();
        entries.sort();
        for (from, to) in entries {
            if inv.get(to).is_none() {
                inv.insert(to, from);
            }
        }
        inv
    }
}

fn alias_set(stmt: &Statement) -> BTreeSet<String> {
    crate::analyze::extract_identifiers(stmt).aliases
}

/// Rename table and column identifiers through `map`, leaving aliases (and
/// references to aliases) untouched. Returns a new statement.
pub fn rename_identifiers(stmt: &Statement, map: &IdentifierMap) -> Statement {
    let aliases = alias_set(stmt);
    let mut stmt = stmt.clone();
    match &mut stmt {
        Statement::Select(s) => rename_select(s, map, &aliases),
        Statement::CreateView { query, .. } => rename_select(query, map, &aliases),
    }
    stmt
}

fn rename_select(s: &mut SelectStatement, map: &IdentifierMap, aliases: &BTreeSet<String>) {
    let rename_source = |src: &mut TableSource| match src {
        TableSource::Named { name, .. } => {
            if let Some(new) = map.get(name) {
                *name = new.to_owned();
            }
        }
        TableSource::Derived { query, .. } => rename_select(query, map, aliases),
    };
    if let Some(from) = &mut s.from {
        rename_source(from);
    }
    for j in &mut s.joins {
        rename_source(&mut j.source);
        if let Some(on) = &mut j.on {
            rename_expr(on, map, aliases);
        }
    }
    for item in &mut s.items {
        if let SelectItem::Expr { expr, .. } = item {
            rename_expr(expr, map, aliases);
        }
    }
    if let Some(w) = &mut s.where_clause {
        rename_expr(w, map, aliases);
    }
    for g in &mut s.group_by {
        rename_expr(g, map, aliases);
    }
    if let Some(h) = &mut s.having {
        rename_expr(h, map, aliases);
    }
    for o in &mut s.order_by {
        rename_expr(&mut o.expr, map, aliases);
    }
    if let Some((_, rhs)) = &mut s.union {
        rename_select(rhs, map, aliases);
    }
}

fn rename_expr(e: &mut Expr, map: &IdentifierMap, aliases: &BTreeSet<String>) {
    match e {
        Expr::Column(c) => {
            if !aliases.contains(&c.name.to_ascii_uppercase()) {
                if let Some(new) = map.get(&c.name) {
                    c.name = new.to_owned();
                }
            }
            if let Some(q) = &mut c.qualifier {
                if !aliases.contains(&q.to_ascii_uppercase()) {
                    if let Some(new) = map.get(q) {
                        *q = new.to_owned();
                    }
                }
            }
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => {
            rename_expr(expr, map, aliases)
        }
        Expr::Binary { left, right, .. } => {
            rename_expr(left, map, aliases);
            rename_expr(right, map, aliases);
        }
        Expr::Function { args, .. } => {
            for a in args {
                if let FunctionArg::Expr(e) = a {
                    rename_expr(e, map, aliases);
                }
            }
        }
        Expr::InList { expr, list, .. } => {
            rename_expr(expr, map, aliases);
            for item in list {
                rename_expr(item, map, aliases);
            }
        }
        Expr::InSubquery { expr, query, .. } => {
            rename_expr(expr, map, aliases);
            rename_select(query, map, aliases);
        }
        Expr::Exists { query, .. } => rename_select(query, map, aliases),
        Expr::Between { expr, low, high, .. } => {
            rename_expr(expr, map, aliases);
            rename_expr(low, map, aliases);
            rename_expr(high, map, aliases);
        }
        Expr::Subquery(q) => rename_select(q, map, aliases),
        Expr::Case { operand, branches, else_expr } => {
            if let Some(op) = operand {
                rename_expr(op, map, aliases);
            }
            for (when, then) in branches {
                rename_expr(when, map, aliases);
                rename_expr(then, map, aliases);
            }
            if let Some(e) = else_expr {
                rename_expr(e, map, aliases);
            }
        }
        Expr::Literal(_) | Expr::Wildcard => {}
    }
}

/// Render `stmt` with `<TABLE_NAME>` / `<COLUMN_NAME>` tags around table and
/// column identifiers (the paper's tagged-query intermediate form).
///
/// Aliases are not tagged. The tagged string is for middleware/debugging; it
/// is not itself parseable SQL.
pub fn tag_query(stmt: &Statement) -> String {
    // Rename every distinct identifier to a unique sentinel, render through
    // the canonical renderer, then substitute tagged originals. Sentinels are
    // plain identifiers so rendering cannot quote or alter them.
    let ids = crate::analyze::extract_identifiers(stmt);
    let mut map = IdentifierMap::new();
    let mut sentinels: Vec<(String, String)> = Vec::new();
    for (i, t) in ids.tables.iter().enumerate() {
        let sentinel = format!("__SNAILS_T{i}__");
        map.insert(t, &sentinel);
        sentinels.push((sentinel, format!("<TABLE_NAME>{t}</TABLE_NAME>")));
    }
    for (i, c) in ids.columns.iter().enumerate() {
        let sentinel = format!("__SNAILS_C{i}__");
        map.insert(c, &sentinel);
        sentinels.push((sentinel, format!("<COLUMN_NAME>{c}</COLUMN_NAME>")));
    }
    let mut rendered = rename_identifiers(stmt, &map).to_string();
    for (sentinel, tagged) in sentinels {
        rendered = rendered.replace(&sentinel, &tagged);
    }
    rendered
}

/// Parse `sql`, rename identifiers through `map` (modified → native), and
/// render the executable native-schema query.
pub fn denaturalize_query(sql: &str, map: &IdentifierMap) -> Result<String, ParseError> {
    let stmt = parse(sql)?;
    Ok(rename_identifiers(&stmt, map).to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::extract_identifiers;

    #[test]
    fn paper_denaturalization_example() {
        // Appendix D.4: GPT-3.5's query over the least-natural KIS schema.
        let generated = "SELECT LcTp, COUNT(*) AS LocationCount FROM Locs \
                         WHERE Cty = 'Shasta County' GROUP BY LcTp";
        let map = IdentifierMap::from_pairs([
            ("LOCS", "tbl_Locations"),
            ("LCTP", "Loc_Type"),
            ("CTY", "County"),
        ]);
        let native = denaturalize_query(generated, &map).unwrap();
        assert_eq!(
            native,
            "SELECT Loc_Type, COUNT(*) AS LocationCount FROM tbl_Locations \
             WHERE County = 'Shasta County' GROUP BY Loc_Type"
        );
    }

    #[test]
    fn aliases_survive_rename() {
        let sql = "SELECT e.empId FROM OHEM e JOIN HTM1 t ON e.empId = t.empID";
        let map = IdentifierMap::from_pairs([("OHEM", "employees"), ("EMPID", "employee_id")]);
        let out = denaturalize_query(sql, &map).unwrap();
        assert!(out.contains("FROM employees e"), "{out}");
        assert!(out.contains("e.employee_id"), "{out}");
        // Alias `e` unchanged even though identifiers were renamed.
        assert!(!out.contains("employees.empId"), "{out}");
    }

    #[test]
    fn substring_identifiers_safe() {
        // `Loc` is a prefix-substring of `Location`; AST renaming cannot
        // corrupt either (the paper's motivation for tagging).
        let sql = "SELECT Loc, Location FROM t";
        let map = IdentifierMap::from_pairs([("LOC", "place")]);
        let out = denaturalize_query(sql, &map).unwrap();
        assert_eq!(out, "SELECT place, Location FROM t");
    }

    #[test]
    fn rename_is_case_insensitive() {
        let map = IdentifierMap::from_pairs([("locs", "tbl_Locations")]);
        let out = denaturalize_query("SELECT a FROM LOCS", &map).unwrap();
        assert!(out.contains("tbl_Locations"));
    }

    #[test]
    fn rename_reaches_subqueries() {
        let sql = "SELECT a FROM t WHERE EXISTS (SELECT x FROM u WHERE u.x = t.a)";
        let map = IdentifierMap::from_pairs([("U", "users"), ("X", "ux")]);
        let out = denaturalize_query(sql, &map).unwrap();
        assert!(out.contains("FROM users"), "{out}");
        assert!(out.contains("users.ux"), "{out}");
    }

    #[test]
    fn rename_to_identifier_needing_quotes() {
        let map = IdentifierMap::from_pairs([("T", "My Table")]);
        let out = denaturalize_query("SELECT a FROM t", &map).unwrap();
        assert_eq!(out, "SELECT a FROM [My Table]");
    }

    #[test]
    fn tagging_marks_tables_and_columns() {
        let stmt = parse("SELECT LcTp FROM Locs WHERE Cty = 'X'").unwrap();
        let tagged = tag_query(&stmt);
        assert!(tagged.contains("<TABLE_NAME>LOCS</TABLE_NAME>"), "{tagged}");
        assert!(tagged.contains("<COLUMN_NAME>LCTP</COLUMN_NAME>"), "{tagged}");
        assert!(tagged.contains("<COLUMN_NAME>CTY</COLUMN_NAME>"), "{tagged}");
        assert!(tagged.contains("'X'"));
    }

    #[test]
    fn tagging_skips_aliases() {
        let stmt = parse("SELECT COUNT(*) AS n FROM t ORDER BY n").unwrap();
        let tagged = tag_query(&stmt);
        assert!(!tagged.contains("<COLUMN_NAME>N</COLUMN_NAME>"), "{tagged}");
    }

    #[test]
    fn inverted_round_trip() {
        let map = IdentifierMap::from_pairs([("A", "x"), ("B", "y")]);
        let inv = map.inverted();
        assert_eq!(inv.get("x"), Some("A"));
        assert_eq!(inv.get("y"), Some("B"));
    }

    #[test]
    fn resolve_defaults_to_input() {
        let map = IdentifierMap::new();
        assert_eq!(map.resolve("unknown"), "unknown");
        assert!(map.is_empty());
    }

    #[test]
    fn denaturalize_then_extract_sees_native_ids() {
        let map = IdentifierMap::from_pairs([("LOCS", "TBL_LOCATIONS")]);
        let out = denaturalize_query("SELECT a FROM Locs", &map).unwrap();
        let ids = extract_identifiers(&parse(&out).unwrap());
        assert!(ids.tables.contains("TBL_LOCATIONS"));
        assert!(!ids.tables.contains("LOCS"));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Renaming with an empty map is the identity (modulo rendering).
        #[test]
        fn empty_map_is_identity(a in "[a-z]{1,6}", b in "[a-z]{1,6}") {
            let sql = format!("SELECT {a} FROM {b}");
            if let Ok(stmt) = parse(&sql) {
                let renamed = rename_identifiers(&stmt, &IdentifierMap::new());
                prop_assert_eq!(renamed, stmt);
            }
        }

        /// Rename forward then backward restores the original statement when
        /// the map is a bijection that does not collide with existing names.
        #[test]
        fn rename_round_trip(t in "[a-d]{1,4}", c in "[e-h]{1,4}") {
            let sql = format!("SELECT {c} FROM {t} WHERE {c} = 1");
            if let Ok(stmt) = parse(&sql) {
                let fwd = IdentifierMap::from_pairs([
                    (t.as_str(), "zzz_table"), (c.as_str(), "zzz_col"),
                ]);
                let renamed = rename_identifiers(&stmt, &fwd);
                let back = rename_identifiers(&renamed, &fwd.inverted());
                // Compare uppercased renderings (rename loses case of source).
                prop_assert_eq!(
                    back.to_string().to_ascii_uppercase(),
                    stmt.to_string().to_ascii_uppercase()
                );
            }
        }
    }
}
