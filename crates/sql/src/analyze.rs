//! Query analysis: identifier extraction (appendix E.4) and clause profiling
//! (Table 3).

use crate::ast::*;
use std::collections::BTreeSet;

/// The identifier sets extracted from one query.
///
/// Identifiers are uppercased for set comparison, matching the paper's
/// linking-evaluation example (appendix E.4) where `QI` sets hold uppercase
/// names and aliases are excluded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryIdentifiers {
    /// Table names referenced in `FROM` / `JOIN` clauses (all nesting levels).
    pub tables: BTreeSet<String>,
    /// Column names referenced anywhere (aliases excluded).
    pub columns: BTreeSet<String>,
    /// Aliases defined by the query (table aliases, derived-table aliases,
    /// projection aliases); consumers ignore these during set comparison.
    pub aliases: BTreeSet<String>,
}

impl QueryIdentifiers {
    /// Union of table and column identifiers — the paper's `QI` set.
    pub fn all(&self) -> BTreeSet<String> {
        self.tables.union(&self.columns).cloned().collect()
    }

    /// Total identifier count (tables + columns).
    pub fn len(&self) -> usize {
        self.all().len()
    }

    /// True when no identifiers were extracted.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty() && self.columns.is_empty()
    }
}

/// Extract the identifier sets from a statement.
pub fn extract_identifiers(stmt: &Statement) -> QueryIdentifiers {
    let select = match stmt {
        Statement::Select(s) => s,
        Statement::CreateView { query, .. } => query,
    };
    let mut out = QueryIdentifiers::default();
    collect_aliases(select, &mut out.aliases);
    collect_select(select, &mut out);
    // An alias can shadow a column name; identifiers that are only ever
    // aliases must not count, but a name used both as a real column and an
    // alias stays (we already only insert non-alias usages).
    out
}

fn up(s: &str) -> String {
    s.to_ascii_uppercase()
}

fn collect_aliases(select: &SelectStatement, aliases: &mut BTreeSet<String>) {
    for item in &select.items {
        if let SelectItem::Expr { alias: Some(a), .. } = item {
            aliases.insert(up(a));
        }
    }
    let mut sources: Vec<&TableSource> = select.from.iter().collect();
    sources.extend(select.joins.iter().map(|j| &j.source));
    for src in sources {
        match src {
            TableSource::Named { alias: Some(a), .. } => {
                aliases.insert(up(a));
            }
            TableSource::Derived { alias, query } => {
                aliases.insert(up(alias));
                collect_aliases(query, aliases);
            }
            TableSource::Named { .. } => {}
        }
    }
    visit_subqueries(select, &mut |q| collect_aliases(q, aliases));
    if let Some((_, rhs)) = &select.union {
        collect_aliases(rhs, aliases);
    }
}

/// Call `f` on each directly nested subquery of `select`'s expressions.
fn visit_subqueries(select: &SelectStatement, f: &mut dyn FnMut(&SelectStatement)) {
    fn walk_expr(e: &Expr, f: &mut dyn FnMut(&SelectStatement)) {
        match e {
            Expr::Subquery(q) | Expr::InSubquery { query: q, .. } | Expr::Exists { query: q, .. } => {
                f(q)
            }
            _ => {}
        }
        e.visit_children(&mut |child| walk_expr(child, f));
    }
    for item in &select.items {
        if let SelectItem::Expr { expr, .. } = item {
            walk_expr(expr, f);
        }
    }
    for j in &select.joins {
        if let Some(on) = &j.on {
            walk_expr(on, f);
        }
    }
    if let Some(w) = &select.where_clause {
        walk_expr(w, f);
    }
    for g in &select.group_by {
        walk_expr(g, f);
    }
    if let Some(h) = &select.having {
        walk_expr(h, f);
    }
    for o in &select.order_by {
        walk_expr(&o.expr, f);
    }
}

fn collect_select(select: &SelectStatement, out: &mut QueryIdentifiers) {
    let mut sources: Vec<&TableSource> = select.from.iter().collect();
    sources.extend(select.joins.iter().map(|j| &j.source));
    for src in sources {
        match src {
            TableSource::Named { name, .. } => {
                out.tables.insert(up(name));
            }
            TableSource::Derived { query, .. } => collect_select(query, out),
        }
    }

    let mut handle_expr = |e: &Expr| collect_expr(e, out);
    for item in &select.items {
        if let SelectItem::Expr { expr, .. } = item {
            handle_expr(expr);
        }
    }
    for j in &select.joins {
        if let Some(on) = &j.on {
            handle_expr(on);
        }
    }
    if let Some(w) = &select.where_clause {
        handle_expr(w);
    }
    for g in &select.group_by {
        handle_expr(g);
    }
    if let Some(h) = &select.having {
        handle_expr(h);
    }
    for o in &select.order_by {
        handle_expr(&o.expr);
    }
    if let Some((_, rhs)) = &select.union {
        collect_select(rhs, out);
    }
}

fn collect_expr(e: &Expr, out: &mut QueryIdentifiers) {
    match e {
        Expr::Column(c) => {
            let name = up(&c.name);
            if !out.aliases.contains(&name) {
                out.columns.insert(name);
            }
            // A qualifier that is not an alias is a table reference.
            if let Some(q) = &c.qualifier {
                let q = up(q);
                if !out.aliases.contains(&q) {
                    out.tables.insert(q);
                }
            }
        }
        Expr::Subquery(q) | Expr::InSubquery { query: q, .. } | Expr::Exists { query: q, .. } => {
            collect_select(q, out);
            if let Expr::InSubquery { expr, .. } = e {
                collect_expr(expr, out);
            }
            return;
        }
        _ => {}
    }
    e.visit_children(&mut |child| collect_expr(child, out));
}

/// Per-query clause profile — the columns of Table 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClauseProfile {
    /// `TOP n` present.
    pub top: bool,
    /// Number of function calls (aggregates and scalar functions).
    pub functions: usize,
    /// Number of `JOIN` clauses.
    pub joins: usize,
    /// Number of joins whose `ON` predicate conjoins 2+ equalities
    /// (composite-key joins, the NTSB pattern).
    pub composite_key_joins: usize,
    /// Number of `[NOT] EXISTS` predicates.
    pub exists: usize,
    /// Number of non-`EXISTS` subqueries (scalar, `IN`, derived tables).
    pub subqueries: usize,
    /// `WHERE` present.
    pub where_clause: bool,
    /// Negation present (`NOT`, `NOT IN`, `NOT EXISTS`, `NOT LIKE`, `<>`).
    pub negation: bool,
    /// `GROUP BY` present.
    pub group_by: bool,
    /// `ORDER BY` present.
    pub order_by: bool,
    /// `HAVING` present.
    pub having: bool,
}

impl ClauseProfile {
    /// A rough scalar complexity score: clause + function + join count.
    pub fn complexity(&self) -> usize {
        usize::from(self.top)
            + self.functions
            + self.joins
            + self.exists
            + self.subqueries
            + usize::from(self.where_clause)
            + usize::from(self.group_by)
            + usize::from(self.order_by)
            + usize::from(self.having)
    }
}

/// Compute the clause profile of a statement.
pub fn clause_profile(stmt: &Statement) -> ClauseProfile {
    let select = match stmt {
        Statement::Select(s) => s,
        Statement::CreateView { query, .. } => query,
    };
    let mut p = ClauseProfile::default();
    profile_select(select, &mut p, true);
    p
}

fn profile_select(select: &SelectStatement, p: &mut ClauseProfile, top_level: bool) {
    if top_level {
        p.top |= select.top.is_some();
        p.where_clause |= select.where_clause.is_some();
        p.group_by |= !select.group_by.is_empty();
        p.order_by |= !select.order_by.is_empty();
        p.having |= select.having.is_some();
    }
    p.joins += select.joins.len();
    for j in &select.joins {
        if let Some(on) = &j.on {
            if count_equality_conjuncts(on) >= 2 {
                p.composite_key_joins += 1;
            }
        }
    }
    let mut sources: Vec<&TableSource> = select.from.iter().collect();
    sources.extend(select.joins.iter().map(|j| &j.source));
    for src in sources {
        if let TableSource::Derived { query, .. } = src {
            p.subqueries += 1;
            profile_select(query, p, false);
        }
    }
    let mut handle = |e: &Expr| profile_expr(e, p);
    for item in &select.items {
        if let SelectItem::Expr { expr, .. } = item {
            handle(expr);
        }
    }
    for j in &select.joins {
        if let Some(on) = &j.on {
            handle(on);
        }
    }
    if let Some(w) = &select.where_clause {
        handle(w);
    }
    for g in &select.group_by {
        handle(g);
    }
    if let Some(h) = &select.having {
        handle(h);
    }
    for o in &select.order_by {
        handle(&o.expr);
    }
    if let Some((_, rhs)) = &select.union {
        profile_select(rhs, p, top_level);
    }
}

fn count_equality_conjuncts(e: &Expr) -> usize {
    match e {
        Expr::Binary { op: BinOp::And, left, right } => {
            count_equality_conjuncts(left) + count_equality_conjuncts(right)
        }
        Expr::Binary { op: BinOp::Eq, .. } => 1,
        _ => 0,
    }
}

fn profile_expr(e: &Expr, p: &mut ClauseProfile) {
    match e {
        Expr::Function { .. } => p.functions += 1,
        Expr::Unary { op: UnaryOp::Not, .. } => p.negation = true,
        Expr::Binary { op: BinOp::NotEq, .. } => p.negation = true,
        Expr::InList { negated, .. } | Expr::Like { negated, .. } | Expr::Between { negated, .. } => {
            p.negation |= *negated;
        }
        Expr::IsNull { negated, .. } => p.negation |= *negated,
        Expr::Exists { query, negated } => {
            p.exists += 1;
            p.negation |= *negated;
            profile_select(query, p, false);
        }
        Expr::InSubquery { query, negated, .. } => {
            p.subqueries += 1;
            p.negation |= *negated;
            profile_select(query, p, false);
        }
        Expr::Subquery(q) => {
            p.subqueries += 1;
            profile_select(q, p, false);
        }
        _ => {}
    }
    e.visit_children(&mut |child| profile_expr(child, p));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn ids(sql: &str) -> QueryIdentifiers {
        extract_identifiers(&parse(sql).unwrap())
    }

    fn profile(sql: &str) -> ClauseProfile {
        clause_profile(&parse(sql).unwrap())
    }

    #[test]
    fn paper_linking_example() {
        // Appendix E.4: the Code Llama predicted query over ATBI.
        let predicted = "SELECT DISTINCT tlu_PlantSpecies.genus, tlu_PlantSpecies.subgenus, \
            tlu_PlantSpecies.species, tlu_PlantSpecies.subspecies, \
            tlu_PlantSpecies.SpeciesCode, tlu_PlantSpecies.CommonName \
            FROM tlu_PlantSpecies \
            LEFT JOIN tbl_Overstory ON tbl_Overstory.SpCode = tlu_PlantSpecies.SpeciesCode \
            LEFT JOIN tbl_Saplings ON tbl_Saplings.SpCode = tlu_PlantSpecies.SpeciesCode \
            WHERE tbl_Overstory.SpCode IS NOT NULL AND tbl_Saplings.SpCode IS NULL \
            ORDER BY tlu_PlantSpecies.genus";
        let qi = ids(predicted);
        let expected: BTreeSet<String> = [
            "TLU_PLANTSPECIES", "TBL_OVERSTORY", "TBL_SAPLINGS", "SPECIES", "SPECIESCODE",
            "COMMONNAME", "SPCODE", "GENUS", "SUBSPECIES", "SUBGENUS",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(qi.all(), expected);
    }

    #[test]
    fn aliases_excluded() {
        let qi = ids(
            "SELECT stage, sum(cnt) minnowCountSum FROM tblFieldDataMinnowTrapSurveys \
             WHERE locationID = 'X' GROUP BY stage",
        );
        assert!(qi.aliases.contains("MINNOWCOUNTSUM"));
        assert!(!qi.columns.contains("MINNOWCOUNTSUM"));
        assert!(qi.columns.contains("STAGE"));
        assert!(qi.columns.contains("CNT"));
        assert!(qi.tables.contains("TBLFIELDDATAMINNOWTRAPSURVEYS"));
    }

    #[test]
    fn table_alias_qualifiers_not_tables() {
        let qi = ids("SELECT e.name FROM OHEM e JOIN OHTM t ON e.teamId = t.teamId");
        assert_eq!(
            qi.tables,
            ["OHEM", "OHTM"].iter().map(|s| s.to_string()).collect()
        );
        assert!(!qi.tables.contains("E"));
    }

    #[test]
    fn unaliased_qualifier_counts_as_table() {
        let qi = ids("SELECT t.a FROM t");
        assert!(qi.tables.contains("T"));
        assert_eq!(qi.tables.len(), 1);
    }

    #[test]
    fn subquery_identifiers_collected() {
        let qi = ids(
            "SELECT a FROM t WHERE EXISTS (SELECT x FROM u WHERE u.k = t.k) \
             AND b IN (SELECT y FROM v)",
        );
        for t in ["T", "U", "V"] {
            assert!(qi.tables.contains(t), "missing table {t}");
        }
        for c in ["A", "X", "K", "B", "Y"] {
            assert!(qi.columns.contains(c), "missing column {c}");
        }
    }

    #[test]
    fn wildcard_has_no_columns() {
        let qi = ids("SELECT * FROM t");
        assert!(qi.columns.is_empty());
        assert_eq!(qi.tables.len(), 1);
    }

    #[test]
    fn clause_profile_simple() {
        let p = profile("SELECT a FROM t");
        assert_eq!(p, ClauseProfile::default());
        assert_eq!(p.complexity(), 0);
    }

    #[test]
    fn clause_profile_full() {
        let p = profile(
            "SELECT TOP 5 a, COUNT(*) FROM t \
             JOIN u ON t.x = u.x AND t.y = u.y \
             JOIN v ON t.z = v.z \
             WHERE a <> 1 AND NOT EXISTS (SELECT 1 FROM w) \
             GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC",
        );
        assert!(p.top);
        assert_eq!(p.functions, 2);
        assert_eq!(p.joins, 2);
        assert_eq!(p.composite_key_joins, 1);
        assert_eq!(p.exists, 1);
        assert!(p.where_clause);
        assert!(p.negation);
        assert!(p.group_by);
        assert!(p.order_by);
        assert!(p.having);
    }

    #[test]
    fn subquery_kinds_counted() {
        let p = profile(
            "SELECT x.n FROM (SELECT COUNT(*) n FROM t) x \
             WHERE x.n > (SELECT AVG(m) FROM u) AND x.n IN (SELECT k FROM v)",
        );
        assert_eq!(p.subqueries, 3);
        assert_eq!(p.exists, 0);
    }

    #[test]
    fn negation_via_not_in() {
        assert!(profile("SELECT a FROM t WHERE a NOT IN (1)").negation);
        assert!(profile("SELECT a FROM t WHERE a NOT LIKE 'x%'").negation);
        assert!(!profile("SELECT a FROM t WHERE a IN (1)").negation);
    }

    #[test]
    fn inner_clauses_do_not_count_as_top_level() {
        let p = profile("SELECT a FROM t WHERE a IN (SELECT b FROM u WHERE b > 1 GROUP BY b)");
        assert!(p.where_clause);
        // Subquery's GROUP BY is not the outer query's GROUP BY.
        assert!(!p.group_by);
    }
}
