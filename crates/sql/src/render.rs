//! SQL rendering: `Display` implementations producing canonical T-SQL text.
//!
//! Rendering quotes identifiers with brackets only when necessary (spaces or
//! non-word characters), uppercases keywords, and round-trips through the
//! parser (`parse(render(ast)) == ast` up to literal float formatting).

use crate::ast::*;
use std::fmt::{self, Display, Formatter, Write};

/// True when an identifier needs `[...]` quoting.
fn needs_quoting(ident: &str) -> bool {
    ident.is_empty()
        || ident
            .bytes()
            .any(|b| !(b.is_ascii_alphanumeric() || b == b'_' || b == b'@' || b == b'#'))
        || ident.bytes().next().is_some_and(|b| b.is_ascii_digit())
        || crate::lexer::tokenize(ident)
            .map(|t| {
                t.len() != 1 || !matches!(t[0].kind, crate::lexer::TokenKind::Identifier { .. })
            })
            .unwrap_or(true)
}

/// Write an identifier, bracket-quoting when required.
pub fn write_ident(f: &mut impl Write, ident: &str) -> fmt::Result {
    if needs_quoting(ident) {
        write!(f, "[{ident}]")
    } else {
        f.write_str(ident)
    }
}

/// An identifier as SQL text, bracket-quoted when required (keywords,
/// spaces, leading digits).
pub fn quoted(ident: &str) -> String {
    if needs_quoting(ident) {
        format!("[{ident}]")
    } else {
        ident.to_owned()
    }
}

fn escape_string(s: &str) -> String {
    s.replace('\'', "''")
}

impl Display for Statement {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => s.fmt(f),
            Statement::CreateView { schema, name, query } => {
                f.write_str("CREATE VIEW ")?;
                if let Some(sch) = schema {
                    write_ident(f, sch)?;
                    f.write_char('.')?;
                }
                write_ident(f, name)?;
                write!(f, " AS {query}")
            }
        }
    }
}

impl Display for SelectStatement {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if let Some(n) = self.top {
            write!(f, "TOP {n} ")?;
        }
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            item.fmt(f)?;
        }
        if let Some(from) = &self.from {
            write!(f, " FROM {from}")?;
        }
        for join in &self.joins {
            write!(f, " {join}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                g.fmt(f)?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                o.expr.fmt(f)?;
                if o.descending {
                    f.write_str(" DESC")?;
                }
            }
        }
        if let Some((kind, rhs)) = &self.union {
            match kind {
                UnionKind::Distinct => f.write_str(" UNION ")?,
                UnionKind::All => f.write_str(" UNION ALL ")?,
            }
            rhs.fmt(f)?;
        }
        Ok(())
    }
}

impl Display for SelectItem {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_char('*'),
            SelectItem::QualifiedWildcard(q) => {
                write_ident(f, q)?;
                f.write_str(".*")
            }
            SelectItem::Expr { expr, alias } => {
                expr.fmt(f)?;
                if let Some(a) = alias {
                    f.write_str(" AS ")?;
                    write_ident(f, a)?;
                }
                Ok(())
            }
        }
    }
}

impl Display for TableSource {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        match self {
            TableSource::Named { schema, name, alias } => {
                if let Some(sch) = schema {
                    write_ident(f, sch)?;
                    f.write_char('.')?;
                }
                write_ident(f, name)?;
                if let Some(a) = alias {
                    f.write_char(' ')?;
                    write_ident(f, a)?;
                }
                Ok(())
            }
            TableSource::Derived { query, alias } => {
                write!(f, "({query}) ")?;
                write_ident(f, alias)
            }
        }
    }
}

impl Display for Join {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind.as_str(), self.source)?;
        if let Some(on) = &self.on {
            write!(f, " ON {on}")?;
        }
        Ok(())
    }
}

impl Display for ColumnRef {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        if let Some(q) = &self.qualifier {
            write_ident(f, q)?;
            f.write_char('.')?;
        }
        write_ident(f, &self.name)
    }
}

impl Display for Literal {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(n) => write!(f, "{n}"),
            Literal::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", escape_string(s)),
            Literal::Null => f.write_str("NULL"),
        }
    }
}

/// Operator precedence for parenthesization decisions.
fn precedence(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => match op {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
        },
        Expr::Unary { op: UnaryOp::Not, .. } => 3,
        Expr::IsNull { .. }
        | Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Between { .. }
        | Expr::Like { .. } => 4,
        _ => 10,
    }
}

fn fmt_child(f: &mut Formatter<'_>, child: &Expr, parent_prec: u8) -> fmt::Result {
    if precedence(child) < parent_prec {
        write!(f, "({child})")
    } else {
        write!(f, "{child}")
    }
}

impl Display for Expr {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => c.fmt(f),
            Expr::Literal(l) => l.fmt(f),
            Expr::Unary { op: UnaryOp::Not, expr } => {
                f.write_str("NOT ")?;
                fmt_child(f, expr, 4)
            }
            Expr::Unary { op: UnaryOp::Neg, expr } => {
                f.write_char('-')?;
                fmt_child(f, expr, 7)
            }
            Expr::Binary { left, op, right } => {
                let prec = precedence(self);
                // Comparisons and other predicates share precedence 4 and are
                // NON-associative in the grammar: `a = b = c` does not parse,
                // so an equal-precedence left child needs parentheses too.
                if precedence(left) < prec || (op.is_comparison() && precedence(left) == prec) {
                    write!(f, "({left})")?;
                } else {
                    write!(f, "{left}")?;
                }
                write!(f, " {} ", op.as_str())?;
                // The right child needs strictly higher precedence: the
                // grammar is left-associative, so a right-nested equal-
                // precedence child (including AND/OR chains) must keep its
                // parentheses to reparse with the same shape.
                if precedence(right) <= prec {
                    write!(f, "({right})")
                } else {
                    fmt_child(f, right, prec)
                }
            }
            Expr::Function { name, args, distinct } => {
                write!(f, "{name}(")?;
                if *distinct {
                    f.write_str("DISTINCT ")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    match a {
                        FunctionArg::Wildcard => f.write_char('*')?,
                        FunctionArg::Expr(e) => e.fmt(f)?,
                    }
                }
                f.write_char(')')
            }
            Expr::IsNull { expr, negated } => {
                fmt_child(f, expr, 5)?;
                f.write_str(if *negated { " IS NOT NULL" } else { " IS NULL" })
            }
            Expr::InList { expr, list, negated } => {
                fmt_child(f, expr, 5)?;
                f.write_str(if *negated { " NOT IN (" } else { " IN (" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    // List items parse at additive precedence; anything
                    // lower (comparisons, AND/OR, other predicates) must be
                    // parenthesized to survive a round trip.
                    fmt_child(f, e, 5)?;
                }
                f.write_char(')')
            }
            Expr::InSubquery { expr, query, negated } => {
                fmt_child(f, expr, 5)?;
                f.write_str(if *negated { " NOT IN (" } else { " IN (" })?;
                write!(f, "{query})")
            }
            Expr::Exists { query, negated } => {
                if *negated {
                    f.write_str("NOT ")?;
                }
                write!(f, "EXISTS ({query})")
            }
            Expr::Between { expr, low, high, negated } => {
                fmt_child(f, expr, 5)?;
                f.write_str(if *negated { " NOT BETWEEN " } else { " BETWEEN " })?;
                fmt_child(f, low, 5)?;
                f.write_str(" AND ")?;
                fmt_child(f, high, 5)
            }
            Expr::Like { expr, pattern, negated } => {
                fmt_child(f, expr, 5)?;
                f.write_str(if *negated { " NOT LIKE " } else { " LIKE " })?;
                write!(f, "'{}'", escape_string(pattern))
            }
            Expr::Subquery(q) => write!(f, "({q})"),
            Expr::Case { operand, branches, else_expr } => {
                f.write_str("CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (when, then) in branches {
                    write!(f, " WHEN {when} THEN {then}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Expr::Wildcard => f.write_char('*'),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_select};

    fn round_trip(sql: &str) {
        let ast = parse(sql).expect("parse input");
        let rendered = ast.to_string();
        let reparsed = parse(&rendered)
            .unwrap_or_else(|e| panic!("render of {sql:?} produced unparseable {rendered:?}: {e}"));
        assert_eq!(ast, reparsed, "render round-trip changed AST for {sql:?}");
    }

    #[test]
    fn round_trips() {
        for sql in [
            "SELECT * FROM t",
            "SELECT TOP 3 a, b AS c FROM t ORDER BY a DESC",
            "SELECT DISTINCT a FROM t WHERE a IS NOT NULL",
            "SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2",
            "SELECT a FROM t JOIN u ON t.x = u.y LEFT JOIN v ON u.z = v.z",
            "SELECT a FROM t WHERE x IN (1, 2) AND y NOT IN (SELECT z FROM u)",
            "SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u WHERE u.k = t.k)",
            "SELECT a FROM t WHERE b BETWEEN 1 AND 5 OR c LIKE 'x%'",
            "SELECT [Loc Type] FROM [My Table] x",
            "SELECT a + b * c - d FROM t",
            "SELECT x.n FROM (SELECT COUNT(*) AS n FROM t) x",
            "CREATE VIEW db_nl.v AS SELECT a AS b FROM dbo.t",
            "SELECT a FROM t WHERE s = 'it''s'",
            "SELECT -a FROM t WHERE -b < 3",
        ] {
            round_trip(sql);
        }
    }

    #[test]
    fn quoting_only_when_needed() {
        let s = parse_select("SELECT [plain] FROM [tbl_Locations]").unwrap();
        assert_eq!(s.to_string(), "SELECT plain FROM tbl_Locations");
        let s = parse_select("SELECT [Loc Type] FROM t").unwrap();
        assert_eq!(s.to_string(), "SELECT [Loc Type] FROM t");
    }

    #[test]
    fn keywordish_identifiers_are_quoted() {
        // An identifier spelled like a keyword must be re-quoted.
        let ast = Statement::Select(SelectStatement {
            items: vec![SelectItem::Expr {
                expr: Expr::Column(ColumnRef::bare("Order")),
                alias: None,
            }],
            from: Some(TableSource::Named { schema: None, name: "t".into(), alias: None }),
            ..Default::default()
        });
        let rendered = ast.to_string();
        assert!(rendered.contains("[Order]"), "{rendered}");
        round_trip(&rendered);
    }

    #[test]
    fn string_escaping() {
        let e = Expr::Literal(Literal::Str("O'Brien".into()));
        assert_eq!(e.to_string(), "'O''Brien'");
    }

    #[test]
    fn float_rendering() {
        assert_eq!(Expr::Literal(Literal::Float(2.0)).to_string(), "2.0");
        assert_eq!(Expr::Literal(Literal::Float(2.5)).to_string(), "2.5");
    }

    #[test]
    fn precedence_parens_preserved() {
        round_trip("SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3");
        let s = parse_select("SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3").unwrap();
        assert!(s.to_string().contains("(x = 1 OR y = 2)"));
    }

    #[test]
    fn subtraction_right_assoc_parens() {
        round_trip("SELECT a - (b - c) FROM t");
        let s = parse_select("SELECT a - (b - c) FROM t").unwrap();
        assert!(s.to_string().contains("a - (b - c)"), "{s}");
    }
}
