//! Recursive-descent parser for the SNAILS T-SQL subset.

use crate::ast::*;
use crate::lexer::{tokenize, Keyword as Kw, LexError, Symbol as Sym, Token, TokenKind};
use std::fmt;

/// Parse error with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset of the offending token (input length at EOF).
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { message: e.message, position: e.position }
    }
}

/// Parse a single SQL statement (`SELECT ...` or `CREATE VIEW ...`).
pub fn parse(sql: &str) -> Result<Statement, ParseError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0, input_len: sql.len() };
    let stmt = p.parse_statement()?;
    p.consume_symbol_if(Sym::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `SELECT` statement, rejecting other statement kinds.
pub fn parse_select(sql: &str) -> Result<SelectStatement, ParseError> {
    match parse(sql)? {
        Statement::Select(s) => Ok(s),
        Statement::CreateView { .. } => Err(ParseError {
            message: "expected SELECT, found CREATE VIEW".into(),
            position: 0,
        }),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_kind(&self) -> Option<&TokenKind> {
        self.peek().map(|t| &t.kind)
    }

    fn current_position(&self) -> usize {
        self.peek().map_or(self.input_len, |t| t.position)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { message: message.into(), position: self.current_position() }
    }

    fn at_keyword(&self, kw: Kw) -> bool {
        matches!(self.peek_kind(), Some(TokenKind::Keyword(k)) if *k == kw)
    }

    fn consume_keyword_if(&mut self, kw: Kw) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: Kw) -> Result<(), ParseError> {
        if self.consume_keyword_if(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {}", kw.as_str())))
        }
    }

    fn at_symbol(&self, sym: Sym) -> bool {
        matches!(self.peek_kind(), Some(TokenKind::Symbol(s)) if *s == sym)
    }

    fn consume_symbol_if(&mut self, sym: Sym) -> bool {
        if self.at_symbol(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: Sym) -> Result<(), ParseError> {
        if self.consume_symbol_if(sym) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", sym.as_str())))
        }
    }

    fn expect_identifier(&mut self) -> Result<String, ParseError> {
        match self.peek_kind() {
            Some(TokenKind::Identifier { .. }) => {
                Ok(self.bump().expect("peeked identifier").text)
            }
            _ => Err(self.error("expected identifier")),
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.error("unexpected trailing tokens"))
        }
    }

    fn parse_statement(&mut self) -> Result<Statement, ParseError> {
        if self.consume_keyword_if(Kw::Create) {
            self.expect_keyword(Kw::View)?;
            let first = self.expect_identifier()?;
            let (schema, name) = if self.consume_symbol_if(Sym::Dot) {
                (Some(first), self.expect_identifier()?)
            } else {
                (None, first)
            };
            self.expect_keyword(Kw::As)?;
            let query = self.parse_select_statement()?;
            Ok(Statement::CreateView { schema, name, query })
        } else {
            Ok(Statement::Select(self.parse_select_statement()?))
        }
    }

    fn parse_select_statement(&mut self) -> Result<SelectStatement, ParseError> {
        self.expect_keyword(Kw::Select)?;
        let mut stmt = SelectStatement::default();

        if self.consume_keyword_if(Kw::Top) {
            match self.peek_kind() {
                Some(&TokenKind::Integer(n)) if n >= 0 => {
                    stmt.top = Some(n as u64);
                    self.pos += 1;
                }
                _ => return Err(self.error("expected non-negative integer after TOP")),
            }
        }
        if self.consume_keyword_if(Kw::Distinct) {
            stmt.distinct = true;
        } else {
            self.consume_keyword_if(Kw::All);
        }

        loop {
            stmt.items.push(self.parse_select_item()?);
            if !self.consume_symbol_if(Sym::Comma) {
                break;
            }
        }

        if self.consume_keyword_if(Kw::From) {
            stmt.from = Some(self.parse_table_source()?);
            loop {
                let kind = if self.consume_keyword_if(Kw::Join)
                    || (self.at_keyword(Kw::Inner) && {
                        self.pos += 1;
                        self.expect_keyword(Kw::Join)?;
                        true
                    }) {
                    JoinKind::Inner
                } else if self.consume_keyword_if(Kw::Left) {
                    self.consume_keyword_if(Kw::Outer);
                    self.expect_keyword(Kw::Join)?;
                    JoinKind::Left
                } else if self.consume_keyword_if(Kw::Right) {
                    self.consume_keyword_if(Kw::Outer);
                    self.expect_keyword(Kw::Join)?;
                    JoinKind::Right
                } else if self.consume_keyword_if(Kw::Full) {
                    self.consume_keyword_if(Kw::Outer);
                    self.expect_keyword(Kw::Join)?;
                    JoinKind::Full
                } else if self.consume_keyword_if(Kw::Cross) {
                    self.expect_keyword(Kw::Join)?;
                    JoinKind::Cross
                } else {
                    break;
                };
                let source = self.parse_table_source()?;
                let on = if kind == JoinKind::Cross {
                    None
                } else {
                    self.expect_keyword(Kw::On)?;
                    Some(self.parse_expr()?)
                };
                stmt.joins.push(Join { kind, source, on });
            }
        }

        if self.consume_keyword_if(Kw::Where) {
            stmt.where_clause = Some(self.parse_expr()?);
        }
        if self.at_keyword(Kw::Group) {
            self.pos += 1;
            self.expect_keyword(Kw::By)?;
            loop {
                stmt.group_by.push(self.parse_expr()?);
                if !self.consume_symbol_if(Sym::Comma) {
                    break;
                }
            }
        }
        if self.consume_keyword_if(Kw::Having) {
            stmt.having = Some(self.parse_expr()?);
        }
        if self.at_keyword(Kw::Order) {
            self.pos += 1;
            self.expect_keyword(Kw::By)?;
            loop {
                let expr = self.parse_expr()?;
                let descending = if self.consume_keyword_if(Kw::Desc) {
                    true
                } else {
                    self.consume_keyword_if(Kw::Asc);
                    false
                };
                stmt.order_by.push(OrderItem { expr, descending });
                if !self.consume_symbol_if(Sym::Comma) {
                    break;
                }
            }
        }
        if self.consume_keyword_if(Kw::Union) {
            let kind = if self.consume_keyword_if(Kw::All) {
                UnionKind::All
            } else {
                UnionKind::Distinct
            };
            let rhs = self.parse_select_statement()?;
            stmt.union = Some((kind, Box::new(rhs)));
        }
        Ok(stmt)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.consume_symbol_if(Sym::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let (Some(TokenKind::Identifier { .. }), Some(t1), Some(t2)) = (
            self.peek_kind(),
            self.tokens.get(self.pos + 1),
            self.tokens.get(self.pos + 2),
        ) {
            if t1.kind == TokenKind::Symbol(Sym::Dot)
                && t2.kind == TokenKind::Symbol(Sym::Star)
            {
                let q = self.bump().expect("identifier").text;
                self.pos += 2;
                return Ok(SelectItem::QualifiedWildcard(q));
            }
        }
        let expr = self.parse_expr()?;
        let alias = if self.consume_keyword_if(Kw::As) {
            Some(self.expect_identifier()?)
        } else if matches!(self.peek_kind(), Some(TokenKind::Identifier { .. })) {
            Some(self.bump().expect("identifier").text)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_source(&mut self) -> Result<TableSource, ParseError> {
        if self.consume_symbol_if(Sym::LParen) {
            let query = Box::new(self.parse_select_statement()?);
            self.expect_symbol(Sym::RParen)?;
            self.consume_keyword_if(Kw::As);
            let alias = self.expect_identifier()?;
            return Ok(TableSource::Derived { query, alias });
        }
        let first = self.expect_identifier()?;
        let (schema, name) = if self.consume_symbol_if(Sym::Dot) {
            (Some(first), self.expect_identifier()?)
        } else {
            (None, first)
        };
        let alias = if self.consume_keyword_if(Kw::As) {
            Some(self.expect_identifier()?)
        } else if matches!(self.peek_kind(), Some(TokenKind::Identifier { .. })) {
            Some(self.bump().expect("identifier").text)
        } else {
            None
        };
        Ok(TableSource::Named { schema, name, alias })
    }

    // Expression grammar (lowest to highest precedence):
    //   or_expr    := and_expr (OR and_expr)*
    //   and_expr   := not_expr (AND not_expr)*
    //   not_expr   := NOT not_expr | predicate
    //   predicate  := additive [comparison | IS | IN | LIKE | BETWEEN]
    //   additive   := multiplicative ((+|-) multiplicative)*
    //   multiplicative := unary ((*|/|%) unary)*
    //   unary      := - unary | primary
    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.consume_keyword_if(Kw::Or) {
            let right = self.parse_and()?;
            left = Expr::binary(left, BinOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_not()?;
        while self.consume_keyword_if(Kw::And) {
            let right = self.parse_not()?;
            left = Expr::binary(left, BinOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.at_keyword(Kw::Not) && !self.next_is_exists() {
            self.pos += 1;
            let inner = self.parse_not()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.parse_predicate()
    }

    fn next_is_exists(&self) -> bool {
        matches!(
            self.tokens.get(self.pos + 1).map(|t| &t.kind),
            Some(TokenKind::Keyword(Kw::Exists))
        )
    }

    fn parse_predicate(&mut self) -> Result<Expr, ParseError> {
        // [NOT] EXISTS (subquery)
        let negated_exists = self.at_keyword(Kw::Not) && self.next_is_exists();
        if negated_exists {
            self.pos += 1;
        }
        if self.consume_keyword_if(Kw::Exists) {
            self.expect_symbol(Sym::LParen)?;
            let query = Box::new(self.parse_select_statement()?);
            self.expect_symbol(Sym::RParen)?;
            return Ok(Expr::Exists { query, negated: negated_exists });
        }

        let left = self.parse_additive()?;

        // IS [NOT] NULL
        if self.consume_keyword_if(Kw::Is) {
            let negated = self.consume_keyword_if(Kw::Not);
            self.expect_keyword(Kw::Null)?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }

        // [NOT] IN / LIKE / BETWEEN
        let negated = self.consume_keyword_if(Kw::Not);
        if self.consume_keyword_if(Kw::In) {
            self.expect_symbol(Sym::LParen)?;
            if self.at_keyword(Kw::Select) {
                let query = Box::new(self.parse_select_statement()?);
                self.expect_symbol(Sym::RParen)?;
                return Ok(Expr::InSubquery { expr: Box::new(left), query, negated });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.parse_additive()?);
                if !self.consume_symbol_if(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.consume_keyword_if(Kw::Like) {
            let pattern = match self.peek_kind() {
                Some(TokenKind::StringLit) => self.bump().expect("string").text,
                _ => return Err(self.error("expected string pattern after LIKE")),
            };
            return Ok(Expr::Like { expr: Box::new(left), pattern, negated });
        }
        if self.consume_keyword_if(Kw::Between) {
            let low = Box::new(self.parse_additive()?);
            self.expect_keyword(Kw::And)?;
            let high = Box::new(self.parse_additive()?);
            return Ok(Expr::Between { expr: Box::new(left), low, high, negated });
        }
        if negated {
            return Err(self.error("expected IN, LIKE, or BETWEEN after NOT"));
        }

        // Comparison operators.
        let op = match self.peek_kind() {
            Some(TokenKind::Symbol(Sym::Eq)) => Some(BinOp::Eq),
            Some(TokenKind::Symbol(Sym::NotEq)) => Some(BinOp::NotEq),
            Some(TokenKind::Symbol(Sym::Lt)) => Some(BinOp::Lt),
            Some(TokenKind::Symbol(Sym::LtEq)) => Some(BinOp::LtEq),
            Some(TokenKind::Symbol(Sym::Gt)) => Some(BinOp::Gt),
            Some(TokenKind::Symbol(Sym::GtEq)) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek_kind() {
                Some(TokenKind::Symbol(Sym::Plus)) => BinOp::Add,
                Some(TokenKind::Symbol(Sym::Minus)) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek_kind() {
                Some(TokenKind::Symbol(Sym::Star)) => BinOp::Mul,
                Some(TokenKind::Symbol(Sym::Slash)) => BinOp::Div,
                Some(TokenKind::Symbol(Sym::Percent)) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.consume_symbol_if(Sym::Minus) {
            let inner = self.parse_unary()?;
            // Fold negated numeric literals so `-1` parses to `Int(-1)`,
            // keeping render → parse a fixed point.
            return Ok(match inner {
                Expr::Literal(Literal::Int(n)) => Expr::Literal(Literal::Int(-n)),
                Expr::Literal(Literal::Float(x)) => Expr::Literal(Literal::Float(-x)),
                other => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(other) },
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek_kind().cloned() {
            Some(TokenKind::Integer(n)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Int(n)))
            }
            Some(TokenKind::Float(f)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Float(f)))
            }
            Some(TokenKind::StringLit) => {
                let t = self.bump().expect("string");
                Ok(Expr::Literal(Literal::Str(t.text)))
            }
            Some(TokenKind::Keyword(Kw::Null)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Null))
            }
            Some(TokenKind::Symbol(Sym::LParen)) => {
                self.pos += 1;
                if self.at_keyword(Kw::Select) {
                    let q = Box::new(self.parse_select_statement()?);
                    self.expect_symbol(Sym::RParen)?;
                    Ok(Expr::Subquery(q))
                } else {
                    let e = self.parse_expr()?;
                    self.expect_symbol(Sym::RParen)?;
                    Ok(e)
                }
            }
            Some(TokenKind::Keyword(Kw::Case)) => {
                self.pos += 1;
                self.parse_case()
            }
            Some(TokenKind::Identifier { .. }) => self.parse_identifier_expr(),
            _ => Err(self.error("expected expression")),
        }
    }

    /// `CASE [operand] WHEN e THEN e ... [ELSE e] END` (CASE consumed).
    fn parse_case(&mut self) -> Result<Expr, ParseError> {
        let operand = if self.at_keyword(Kw::When) {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        let mut branches = Vec::new();
        while self.consume_keyword_if(Kw::When) {
            let when = self.parse_expr()?;
            self.expect_keyword(Kw::Then)?;
            let then = self.parse_expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(self.error("CASE requires at least one WHEN branch"));
        }
        let else_expr = if self.consume_keyword_if(Kw::Else) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword(Kw::End)?;
        Ok(Expr::Case { operand, branches, else_expr })
    }

    /// Identifier-led expressions: `col`, `tbl.col`, `FUNC(...)`.
    fn parse_identifier_expr(&mut self) -> Result<Expr, ParseError> {
        let first = self.bump().expect("identifier").text;
        if self.consume_symbol_if(Sym::LParen) {
            // Function call.
            let name = first.to_ascii_uppercase();
            let distinct = self.consume_keyword_if(Kw::Distinct);
            let mut args = Vec::new();
            if !self.at_symbol(Sym::RParen) {
                loop {
                    if self.consume_symbol_if(Sym::Star) {
                        args.push(FunctionArg::Wildcard);
                    } else {
                        args.push(FunctionArg::Expr(self.parse_expr()?));
                    }
                    if !self.consume_symbol_if(Sym::Comma) {
                        break;
                    }
                }
            }
            self.expect_symbol(Sym::RParen)?;
            return Ok(Expr::Function { name, args, distinct });
        }
        if self.consume_symbol_if(Sym::Dot) {
            let col = self.expect_identifier()?;
            return Ok(Expr::Column(ColumnRef::qualified(&first, &col)));
        }
        Ok(Expr::Column(ColumnRef::bare(&first)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let s = parse_select("SELECT a, b FROM t").unwrap();
        assert_eq!(s.items.len(), 2);
        assert!(matches!(s.from, Some(TableSource::Named { ref name, .. }) if name == "t"));
    }

    #[test]
    fn count_star_group_by() {
        let s = parse_select(
            "SELECT LcTp, COUNT(*) AS LocationCount FROM Locs \
             WHERE Cty = 'Shasta County' GROUP BY LcTp",
        )
        .unwrap();
        assert_eq!(s.group_by.len(), 1);
        assert!(s.where_clause.is_some());
        match &s.items[1] {
            SelectItem::Expr { expr: Expr::Function { name, args, .. }, alias } => {
                assert_eq!(name, "COUNT");
                assert_eq!(args, &[FunctionArg::Wildcard]);
                assert_eq!(alias.as_deref(), Some("LocationCount"));
            }
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn joins_with_aliases() {
        let s = parse_select(
            "SELECT StatusOfP FROM OHEM employees \
             JOIN HTM1 teamMembers ON employees.empId = teamMembers.empID \
             JOIN OHTM emplTeams ON teamMembers.teamID = emplTeams.teamID \
             WHERE emplTeams.name = 'Purchasing'",
        )
        .unwrap();
        assert_eq!(s.joins.len(), 2);
        assert_eq!(s.joins[0].kind, JoinKind::Inner);
        assert_eq!(s.joins[0].source.binding_name(), "teamMembers");
    }

    #[test]
    fn left_join_and_is_null() {
        let s = parse_select(
            "SELECT DISTINCT p.species FROM tlu_PlantSpecies p \
             LEFT JOIN tbl_Saplings s ON s.SpCode = p.SpeciesCode \
             WHERE s.SpCode IS NULL",
        )
        .unwrap();
        assert!(s.distinct);
        assert_eq!(s.joins[0].kind, JoinKind::Left);
        assert!(matches!(
            s.where_clause,
            Some(Expr::IsNull { negated: false, .. })
        ));
    }

    #[test]
    fn exists_and_not_exists() {
        let s = parse_select(
            "SELECT species FROM tlu_PlantSpecies sp WHERE EXISTS( \
               SELECT overstory_id FROM tbl_Overstory WHERE SpCode = sp.SpeciesCode ) \
             AND NOT EXISTS ( \
               SELECT Seedlings_ID FROM tbl_Seedlings WHERE SpCode = sp.SpeciesCode )",
        )
        .unwrap();
        let w = s.where_clause.unwrap();
        match w {
            Expr::Binary { left, op: BinOp::And, right } => {
                assert!(matches!(*left, Expr::Exists { negated: false, .. }));
                assert!(matches!(*right, Expr::Exists { negated: true, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn top_and_order_by() {
        let s = parse_select("SELECT TOP 5 a FROM t ORDER BY a DESC, b").unwrap();
        assert_eq!(s.top, Some(5));
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].descending);
        assert!(!s.order_by[1].descending);
    }

    #[test]
    fn in_list_and_in_subquery() {
        let s = parse_select("SELECT a FROM t WHERE a IN (1, 2, 3)").unwrap();
        assert!(matches!(
            s.where_clause,
            Some(Expr::InList { negated: false, ref list, .. }) if list.len() == 3
        ));
        let s = parse_select("SELECT a FROM t WHERE a NOT IN (SELECT b FROM u)").unwrap();
        assert!(matches!(
            s.where_clause,
            Some(Expr::InSubquery { negated: true, .. })
        ));
    }

    #[test]
    fn between_and_like() {
        let s = parse_select("SELECT a FROM t WHERE a BETWEEN 1 AND 10 AND b LIKE 'x%'")
            .unwrap();
        assert!(s.where_clause.is_some());
        let s2 =
            parse_select("SELECT a FROM t WHERE b NOT LIKE '%y' AND a NOT BETWEEN 2 AND 3")
                .unwrap();
        assert!(s2.where_clause.is_some());
    }

    #[test]
    fn having_clause() {
        let s = parse_select(
            "SELECT stage, SUM(count_) c FROM surveys GROUP BY stage HAVING SUM(count_) > 10",
        )
        .unwrap();
        assert!(s.having.is_some());
    }

    #[test]
    fn derived_table() {
        let s = parse_select(
            "SELECT x.n FROM (SELECT COUNT(*) AS n FROM t GROUP BY a) x WHERE x.n > 2",
        )
        .unwrap();
        assert!(matches!(s.from, Some(TableSource::Derived { ref alias, .. }) if alias == "x"));
    }

    #[test]
    fn bracketed_identifiers_parse() {
        let s = parse_select("SELECT [LOC_TYPE] FROM [TBL_LOCATIONS] WHERE [COUNTY] = 'X'")
            .unwrap();
        assert!(matches!(s.from, Some(TableSource::Named { ref name, .. }) if name == "TBL_LOCATIONS"));
    }

    #[test]
    fn schema_qualified_table() {
        let s = parse_select("SELECT a FROM db_nl.locations").unwrap();
        assert!(matches!(
            s.from,
            Some(TableSource::Named { schema: Some(ref sch), ref name, .. })
                if sch == "db_nl" && name == "locations"
        ));
    }

    #[test]
    fn create_view() {
        let stmt = parse(
            "CREATE VIEW db_nl.[table_deadwood] AS SELECT [MPD] AS [Midpoint_Diameter] \
             FROM dbo.[tbl_Deadwood]",
        )
        .unwrap();
        assert!(matches!(stmt, Statement::CreateView { .. }));
    }

    #[test]
    fn arithmetic_precedence() {
        let s = parse_select("SELECT a + b * c FROM t").unwrap();
        match &s.items[0] {
            SelectItem::Expr { expr: Expr::Binary { op: BinOp::Add, right, .. }, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let s = parse_select("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3").unwrap();
        assert!(matches!(
            s.where_clause,
            Some(Expr::Binary { op: BinOp::Or, .. })
        ));
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse("SELECT a FROM t;").is_ok());
    }

    #[test]
    fn errors_are_positioned() {
        let err = parse_select("SELECT FROM t").unwrap_err();
        assert_eq!(err.position, 7);
        assert!(parse_select("SELECT a FROM").is_err());
        assert!(parse_select("").is_err());
        assert!(parse_select("SELECT a FROM t WHERE").is_err());
        assert!(parse_select("SELECT a FROM t extra garbage tokens +").is_err());
    }

    #[test]
    fn not_predicate() {
        let s = parse_select("SELECT a FROM t WHERE NOT a = 1").unwrap();
        assert!(matches!(
            s.where_clause,
            Some(Expr::Unary { op: UnaryOp::Not, .. })
        ));
    }

    #[test]
    fn scalar_subquery() {
        let s = parse_select("SELECT a FROM t WHERE a > (SELECT AVG(a) FROM t)").unwrap();
        match s.where_clause.unwrap() {
            Expr::Binary { right, .. } => assert!(matches!(*right, Expr::Subquery(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn union_parses_and_chains() {
        let s = parse_select("SELECT a FROM t UNION SELECT a FROM u UNION ALL SELECT a FROM v")
            .unwrap();
        let (k1, rhs) = s.union.as_ref().expect("first union");
        assert_eq!(*k1, UnionKind::Distinct);
        let (k2, _) = rhs.union.as_ref().expect("second union");
        assert_eq!(*k2, UnionKind::All);
        // Render round trip.
        let stmt = Statement::Select(s);
        assert_eq!(parse(&stmt.to_string()).unwrap(), stmt);
    }

    #[test]
    fn case_expressions_parse() {
        let s = parse_select(
            "SELECT CASE WHEN a > 1 THEN 'hi' WHEN a > 0 THEN 'mid' ELSE 'lo' END FROM t",
        )
        .unwrap();
        match &s.items[0] {
            SelectItem::Expr { expr: Expr::Case { operand, branches, else_expr }, .. } => {
                assert!(operand.is_none());
                assert_eq!(branches.len(), 2);
                assert!(else_expr.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        // Simple case with operand, no else.
        let s = parse_select("SELECT CASE status WHEN 'open' THEN 1 END FROM t").unwrap();
        match &s.items[0] {
            SelectItem::Expr { expr: Expr::Case { operand, else_expr, .. }, .. } => {
                assert!(operand.is_some());
                assert!(else_expr.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
        // Missing WHEN is an error.
        assert!(parse_select("SELECT CASE ELSE 1 END FROM t").is_err());
        assert!(parse_select("SELECT CASE WHEN a THEN 1 FROM t").is_err());
    }

    #[test]
    fn function_with_distinct_arg() {
        let s = parse_select("SELECT COUNT(DISTINCT species) FROM obs").unwrap();
        match &s.items[0] {
            SelectItem::Expr { expr: Expr::Function { distinct, .. }, .. } => {
                assert!(distinct)
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The parser must never panic, whatever the input.
        #[test]
        fn parser_never_panics(input in ".{0,120}") {
            let _ = parse(&input);
        }

        /// Identifier-shaped garbage parses or errors cleanly.
        #[test]
        fn sqlish_fuzz(
            a in "[A-Za-z_][A-Za-z0-9_]{0,8}",
            b in "[A-Za-z_][A-Za-z0-9_]{0,8}",
            n in 0i64..1000
        ) {
            let q = format!("SELECT {a} FROM {b} WHERE {a} = {n}");
            let parsed = parse_select(&q);
            // Keywords can collide with generated identifiers; both outcomes
            // are acceptable, but success must produce a FROM clause.
            if let Ok(s) = parsed {
                prop_assert!(s.from.is_some());
            }
        }
    }
}
