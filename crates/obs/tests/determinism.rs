//! Observability determinism: the deterministic report section and the
//! exact span trees must be bit-identical regardless of how many worker
//! threads recorded them, as long as the *work* is the same.
//!
//! The tests drive the crate the way the core scheduler does — one
//! [`snails_obs::scope`] per worker, one [`snails_obs::task`] per item,
//! items claimed from a shared atomic cursor so the interleaving differs
//! wildly across runs — and assert byte equality across thread counts
//! {1, 2, 8} under the simulated clock.

use snails_obs::{ClockMode, Metric, ObsCtx, SpanRecord};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const TASKS: u64 = 64;

/// Deterministic per-task workload: counters, a histogram observation, and
/// a small span tree whose shape depends only on the task id.
fn work(task: u64) {
    snails_obs::add(Metric::EngineExecStatements, 1);
    snails_obs::observe(Metric::EngineExecSteps, task * 7 % 113);
    let _outer = snails_obs::span("outer");
    if task % 2 == 0 {
        let _inner = snails_obs::span("inner");
        snails_obs::add(Metric::EnginePlanCacheHit, 1);
    }
    if task % 3 == 0 {
        let _sibling = snails_obs::span("sibling");
        snails_obs::observe(Metric::EngineOpScanRows, task);
    }
    // Cost-based planner telemetry (engine.opt.*): synthetic decisions
    // whose shape depends only on the task id, so planner counters and
    // the cardinality-error histogram join the thread-invariance bytes.
    if task % 4 == 0 {
        snails_obs::add(Metric::EngineOptPlans, 1);
        snails_obs::add(Metric::EngineOptPredicatesPushed, task % 3);
        snails_obs::observe(Metric::EngineOptCardErrPct, task * 13 % 220);
        if task % 8 == 0 {
            snails_obs::add(Metric::EngineOptJoinsReordered, 1);
            snails_obs::add(Metric::EngineOptIndexProbes, task % 2);
        }
    }
}

/// Run all `TASKS` items on `threads` workers claiming task ids from a
/// shared cursor (arbitrary interleaving, every task exactly once).
fn run(threads: usize) -> Arc<ObsCtx> {
    let ctx = Arc::new(ObsCtx::new(ClockMode::Sim));
    let cursor = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let _scope = snails_obs::scope(&ctx);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= TASKS {
                        break;
                    }
                    snails_obs::task(i, || work(i));
                }
            });
        }
    });
    ctx
}

#[test]
fn deterministic_report_is_byte_identical_across_thread_counts() {
    let baseline = run(1).report().deterministic_json();
    for threads in [2usize, 8] {
        let json = run(threads).report().deterministic_json();
        assert_eq!(json, baseline, "threads = {threads}");
    }
    // The baseline itself reflects the workload, not an empty registry.
    let report = run(1).report();
    assert_eq!(report.counter("engine.exec.statements"), TASKS);
    assert_eq!(report.counter("engine.plan.cache_hit"), TASKS / 2);
    assert_eq!(report.spans["outer"].count, TASKS);
    assert_eq!(report.spans["inner"].count, TASKS / 2);
    // Planner counters reconcile with the synthetic decision schedule and
    // their histogram landed in the deterministic bytes compared above.
    assert_eq!(report.counter("engine.opt.plans"), TASKS / 4);
    assert_eq!(report.counter("engine.opt.joins_reordered"), TASKS / 8);
    assert!(report.deterministic_json().contains("engine.opt.card_err_pct"));
}

#[test]
fn span_records_are_identical_across_thread_counts() {
    let baseline: Vec<SpanRecord> = run(1).tracer.drain_sorted();
    assert!(!baseline.is_empty());
    for threads in [2usize, 8] {
        let spans = run(threads).tracer.drain_sorted();
        assert_eq!(spans, baseline, "threads = {threads}");
    }
}

#[test]
fn sim_clock_span_tree_has_exact_shape() {
    // Task 6 hits every branch: outer(seq 0) wraps inner(1) and sibling(2).
    // Sim ticks advance by one per clock read, per task, so the tree's
    // start/end ticks are fully predictable.
    let spans = run(1).tracer.drain_sorted();
    let task6: Vec<&SpanRecord> = spans.iter().filter(|s| s.task == 6).collect();
    assert_eq!(task6.len(), 3);
    // drain_sorted orders by (task, seq): outer started first.
    let [outer, inner, sibling] = task6[..] else { unreachable!() };
    assert_eq!((outer.name, outer.seq, outer.parent), ("outer", 0, None));
    assert_eq!((inner.name, inner.seq, inner.parent), ("inner", 1, Some(0)));
    assert_eq!((sibling.name, sibling.seq, sibling.parent), ("sibling", 2, Some(0)));
    assert_eq!((outer.start, outer.end), (0, 5));
    assert_eq!((inner.start, inner.end), (1, 2));
    assert_eq!((sibling.start, sibling.end), (3, 4));
}

#[test]
fn volatile_metrics_stay_out_of_the_deterministic_section() {
    let ctx = Arc::new(ObsCtx::new(ClockMode::Sim));
    {
        let _scope = snails_obs::scope(&ctx);
        snails_obs::task(0, || {
            snails_obs::add(Metric::EngineExecStatements, 1);
            // Scheduler-shape metrics legitimately vary with the thread
            // count; recording one must not perturb deterministic bytes.
            snails_obs::add(Metric::CoreSchedulerChunksClaimed, 41);
            snails_obs::gauge_set(Metric::CoreSchedulerWorkers, 8);
        });
    }
    let report = ctx.report();
    let det = report.deterministic_json();
    assert!(!det.contains("core.scheduler.chunks_claimed"));
    assert!(!det.contains("core.scheduler.workers"));
    assert!(report.volatile_json().contains("core.scheduler.chunks_claimed"));
    assert_eq!(report.counter("engine.exec.statements"), 1);
}
