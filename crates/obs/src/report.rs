//! The structured telemetry report: one JSON document combining the
//! metrics snapshot with the span rollup.

use crate::metrics::Snapshot;
use crate::trace::{rollup_to_json, ClockMode, SpanStat};
use std::collections::BTreeMap;

/// A point-in-time telemetry report for one observed run.
///
/// The report is split into a **deterministic** section — counters, gauges,
/// and histograms whose values are pure functions of the workload, plus the
/// span rollup when the tracer ran on the simulated clock — an **assembly**
/// section (plan-cache and checkpoint accounting: thread-count invariant
/// but legitimately different between fresh, checkpoint-resumed, and
/// shard-merged runs) — and a **volatile** section (wall-clock timings,
/// scheduler shape, and the span rollup under the wall clock). Two runs of
/// the same workload at any thread counts render byte-identical
/// deterministic sections; resumed and merged runs of the same workload do
/// too, which is the checkpoint layer's reconciliation contract.
#[derive(Debug, Clone)]
pub struct Report {
    /// Metrics snapshot (both sections).
    pub metrics: Snapshot,
    /// Per-name span aggregate.
    pub spans: BTreeMap<&'static str, SpanStat>,
    /// Clock the spans were recorded on (decides which section they join).
    pub clock: ClockMode,
}

impl Report {
    /// The deterministic section as one JSON object. This is the byte
    /// string compared across thread counts.
    pub fn deterministic_json(&self) -> String {
        let mut out = self.metrics.deterministic.to_json();
        if self.clock == ClockMode::Sim {
            out.pop(); // strip the closing brace, append the span rollup
            out.push_str(",\"spans\":");
            out.push_str(&rollup_to_json(&self.spans));
            out.push('}');
        }
        out
    }

    /// The assembly section as one JSON object.
    pub fn assembly_json(&self) -> String {
        self.metrics.assembly.to_json()
    }

    /// The volatile section as one JSON object.
    pub fn volatile_json(&self) -> String {
        let mut out = self.metrics.volatile.to_json();
        if self.clock == ClockMode::Wall {
            out.pop();
            out.push_str(",\"spans\":");
            out.push_str(&rollup_to_json(&self.spans));
            out.push('}');
        }
        out
    }

    /// The full report:
    /// `{"clock":"sim","deterministic":{...},"assembly":{...},"volatile":{...}}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"clock\":\"{}\",\"deterministic\":{},\"assembly\":{},\"volatile\":{}}}",
            match self.clock {
                ClockMode::Sim => "sim",
                ClockMode::Wall => "wall",
            },
            self.deterministic_json(),
            self.assembly_json(),
            self.volatile_json()
        )
    }

    /// Counter value by static key (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.counter(name)
    }

    /// Plan-cache hit rate over all lookups (`None` before any lookup).
    pub fn plan_cache_hit_rate(&self) -> Option<f64> {
        let hits = self.counter("engine.plan.cache_hit");
        let misses = self.counter("engine.plan.cache_miss");
        let total = hits + misses;
        (total > 0).then(|| hits as f64 / total as f64)
    }
}
