//! The metric vocabulary: every metric the system records, registered by
//! static key in one fixed table.
//!
//! A fixed schema is what makes the registry lock-free: a [`Metric`] is an
//! index into preallocated atomic slots, so the record path is an array
//! access plus a handful of `fetch_add`s — no hashing, no locking, no
//! registration race. New subsystem metrics are added here, in one place,
//! and a unit test guards name uniqueness and JSON-safety.

/// What a metric slot stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic `u64` sum ([`crate::Registry::add`]).
    Counter,
    /// Last-write-wins `i64` level ([`crate::Registry::gauge_set`]).
    Gauge,
    /// Fixed-bucket distribution of `u64` samples
    /// ([`crate::Registry::observe`]).
    Histogram,
}

/// Static description of one metric.
#[derive(Debug, Clone, Copy)]
pub struct MetricSpec {
    /// Dotted static key, e.g. `engine.op.scan.rows`. Keys contain only
    /// `[a-z0-9._]`, so they embed into JSON without escaping.
    pub name: &'static str,
    /// Slot kind.
    pub kind: MetricKind,
    /// Upper bucket bounds (inclusive) for histograms; empty otherwise.
    /// Samples above the last bound land in an overflow bucket.
    pub buckets: &'static [u64],
    /// Volatile metrics (wall-clock timings, scheduler shape) legitimately
    /// vary across runs and thread counts; they are reported in a separate
    /// section and excluded from byte-identical comparisons.
    pub volatile: bool,
}

/// Bucket bounds for row-count distributions (per-operator work).
pub const ROWS_BUCKETS: &[u64] =
    &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536];

/// Bucket bounds for statement-level work totals (steps, join rows).
pub const WORK_BUCKETS: &[u64] =
    &[16, 64, 256, 1024, 4096, 16384, 65536, 262_144, 1_048_576, 16_777_216];

/// Bucket bounds for percentage distributions (selection-vector density).
pub const PCT_BUCKETS: &[u64] = &[5, 10, 25, 50, 75, 90, 100];

/// Bucket bounds for wall-clock nanosecond samples.
pub const NANOS_BUCKETS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

macro_rules! define_metrics {
    ($($(#[$doc:meta])* $variant:ident => $name:literal, $kind:ident, $buckets:expr, $volatile:expr;)*) => {
        /// Every registered metric, by static key (see [`SPECS`]).
        ///
        /// The discriminant is the metric's slot index in the registry.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum Metric {
            $($(#[$doc])* $variant,)*
        }

        /// The full metric table, indexed by `Metric as usize`.
        pub const SPECS: &[MetricSpec] = &[
            $(MetricSpec {
                name: $name,
                kind: MetricKind::$kind,
                buckets: $buckets,
                volatile: $volatile,
            },)*
        ];

        impl Metric {
            /// Every metric, in registration order.
            pub const ALL: &'static [Metric] = &[$(Metric::$variant,)*];
        }
    };
}

define_metrics! {
    // ---- engine: compiled plans and the plan cache -----------------------
    /// Statements lowered to a `CompiledPlan` (cache misses compile).
    EnginePlanCompile => "engine.plan.compile", Counter, &[], false;
    /// Plan-cache lookups served from a cached plan.
    EnginePlanCacheHit => "engine.plan.cache_hit", Counter, &[], false;
    /// Plan-cache lookups that had to compile.
    EnginePlanCacheMiss => "engine.plan.cache_miss", Counter, &[], false;
    /// Plans evicted from a bounded cache (FIFO order).
    EnginePlanCacheEviction => "engine.plan.cache_eviction", Counter, &[], false;

    // ---- engine: per-statement execution and budgets ---------------------
    /// Statements executed (interpreter or compiled plan).
    EngineExecStatements => "engine.exec.statements", Counter, &[], false;
    /// Cooperative step budget consumed per statement.
    EngineExecSteps => "engine.exec.steps", Histogram, WORK_BUCKETS, false;
    /// Join build/probe budget consumed per statement.
    EngineExecJoinRows => "engine.exec.join_rows", Histogram, WORK_BUCKETS, false;
    /// Executions aborted by an `ExecLimits` budget.
    EngineLimitsExhausted => "engine.limits.exhausted", Counter, &[], false;

    // ---- engine: per-operator work ---------------------------------------
    /// Rows produced per base-table / view / derived-table scan.
    EngineOpScanRows => "engine.op.scan.rows", Histogram, ROWS_BUCKETS, false;
    /// Rows produced per join (hash or nested loop).
    EngineOpJoinRows => "engine.op.join.rows", Histogram, ROWS_BUCKETS, false;
    /// Rows surviving each WHERE filter.
    EngineOpFilterRows => "engine.op.filter.rows", Histogram, ROWS_BUCKETS, false;
    /// Groups formed per GROUP BY (or 1 for a global aggregate).
    EngineOpGroupUnits => "engine.op.group.units", Histogram, ROWS_BUCKETS, false;
    /// Rows sorted per ORDER BY.
    EngineOpSortRows => "engine.op.sort.rows", Histogram, ROWS_BUCKETS, false;
    /// Rows projected per query block.
    EngineOpProjectRows => "engine.op.project.rows", Histogram, ROWS_BUCKETS, false;

    // ---- engine: vectorized executor -------------------------------------
    /// Column batches processed by the vectorized executor (all operators).
    EngineVecBatches => "engine.vec.batches", Counter, &[], false;
    /// Batches consumed by vectorized base-table scans.
    EngineOpScanBatches => "engine.op.scan.batches", Counter, &[], false;
    /// Batches evaluated by vectorized WHERE filters.
    EngineOpFilterBatches => "engine.op.filter.batches", Counter, &[], false;
    /// Batches probed by vectorized hash joins.
    EngineOpJoinBatches => "engine.op.join.batches", Counter, &[], false;
    /// Selection-vector density per filter batch (surviving rows as a
    /// percentage of batch rows, 0–100).
    EngineVecSelectivityPct => "engine.vec.selectivity_pct", Histogram, PCT_BUCKETS, false;
    /// Dictionary entries per string column touched by a vectorized scan.
    EngineVecDictEntries => "engine.vec.dict.entries", Histogram, ROWS_BUCKETS, false;

    // ---- llm: resilience middleware --------------------------------------
    /// Grid cells planned by the resilience pre-pass.
    LlmCellsPlanned => "llm.cells.planned", Counter, &[], false;
    /// Cells skipped because the model's breaker was open.
    LlmCellsSkipped => "llm.cells.skipped", Counter, &[], false;
    /// Cells that burned every retry on transient faults.
    LlmCellsExhausted => "llm.cells.exhausted", Counter, &[], false;
    /// Simulated API attempts across all cells.
    LlmResilienceAttempts => "llm.resilience.attempts", Counter, &[], false;
    /// Retries (attempts beyond each cell's first).
    LlmResilienceRetries => "llm.resilience.retries", Counter, &[], false;
    /// Total simulated backoff wait, in milliseconds.
    LlmResilienceBackoffMs => "llm.resilience.backoff_ms", Counter, &[], false;
    /// Circuit-breaker trips (Closed/HalfOpen → Open).
    LlmBreakerTrips => "llm.breaker.trips", Counter, &[], false;
    /// Breaker cooldown expiries (Open → HalfOpen).
    LlmBreakerHalfOpen => "llm.breaker.half_open", Counter, &[], false;
    /// Breaker recoveries (HalfOpen → Closed on a successful probe).
    LlmBreakerClose => "llm.breaker.close", Counter, &[], false;
    /// Timeout faults drawn.
    LlmFaultsTimeout => "llm.faults.timeout", Counter, &[], false;
    /// Rate-limit faults drawn.
    LlmFaultsRateLimit => "llm.faults.rate_limit", Counter, &[], false;
    /// Truncated-payload faults drawn.
    LlmFaultsTruncated => "llm.faults.truncated", Counter, &[], false;
    /// Garbage-payload faults drawn.
    LlmFaultsGarbage => "llm.faults.garbage", Counter, &[], false;
    /// Client-panic faults drawn.
    LlmFaultsPanic => "llm.faults.panic", Counter, &[], false;

    // ---- core: scheduler -------------------------------------------------
    /// Work items completed by the scheduler.
    CoreSchedulerItems => "core.scheduler.items", Counter, &[], false;
    /// Worker threads used by the last scheduled run.
    CoreSchedulerWorkers => "core.scheduler.workers", Gauge, &[], true;
    /// Items still unclaimed at the most recent chunk claim.
    CoreSchedulerQueueDepth => "core.scheduler.queue_depth", Gauge, &[], true;
    /// Chunks claimed from the shared cursor.
    CoreSchedulerChunksClaimed => "core.scheduler.chunks_claimed", Counter, &[], true;
    /// Chunks claimed by a worker beyond its first (work stealing).
    CoreSchedulerStealChunks => "core.scheduler.steal_chunks", Counter, &[], true;
    /// Wall time per scheduled item, in nanoseconds.
    CoreSchedulerItemWallNs => "core.scheduler.item_wall_ns", Histogram, NANOS_BUCKETS, true;
}

impl Metric {
    /// The metric's static description.
    pub fn spec(self) -> &'static MetricSpec {
        &SPECS[self as usize]
    }

    /// The metric's static key.
    pub fn name(self) -> &'static str {
        self.spec().name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn table_is_consistent() {
        assert_eq!(Metric::ALL.len(), SPECS.len());
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(*m as usize, i, "discriminant mismatch for {}", m.name());
        }
    }

    #[test]
    fn names_are_unique_and_json_safe() {
        let mut seen = BTreeSet::new();
        for spec in SPECS {
            assert!(seen.insert(spec.name), "duplicate metric key {}", spec.name);
            assert!(
                spec.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "key {} needs JSON escaping",
                spec.name
            );
        }
    }

    #[test]
    fn histograms_have_sorted_bounds_and_scalars_have_none() {
        for spec in SPECS {
            match spec.kind {
                MetricKind::Histogram => {
                    assert!(!spec.buckets.is_empty(), "{} has no buckets", spec.name);
                    assert!(
                        spec.buckets.windows(2).all(|w| w[0] < w[1]),
                        "{} bounds not strictly increasing",
                        spec.name
                    );
                }
                _ => assert!(spec.buckets.is_empty(), "{} is not a histogram", spec.name),
            }
        }
    }
}
