//! The metric vocabulary: every metric the system records, registered by
//! static key in one fixed table.
//!
//! A fixed schema is what makes the registry lock-free: a [`Metric`] is an
//! index into preallocated atomic slots, so the record path is an array
//! access plus a handful of `fetch_add`s — no hashing, no locking, no
//! registration race. New subsystem metrics are added here, in one place,
//! and a unit test guards name uniqueness and JSON-safety.

/// What a metric slot stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic `u64` sum ([`crate::Registry::add`]).
    Counter,
    /// Last-write-wins `i64` level ([`crate::Registry::gauge_set`]).
    Gauge,
    /// Fixed-bucket distribution of `u64` samples
    /// ([`crate::Registry::observe`]).
    Histogram,
}

/// Which report section a metric belongs to.
///
/// The split encodes *what the value is a pure function of*:
///
/// * **Deterministic** — a pure function of the workload. Byte-identical at
///   any thread count *and* across run assemblies (fresh, checkpoint-resumed,
///   shard-merged): these are the bytes compared by the determinism gates.
/// * **Assembly** — a pure function of (workload, run assembly). Still
///   byte-identical at any thread count, but legitimately different between
///   a fresh run, a resume (restored cells skip plan compilation), and a
///   shard merge (each shard process compiles its own plans). Plan-cache and
///   checkpoint accounting live here.
/// * **Volatile** — wall-clock timings and scheduler shape; varies run to
///   run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Pure function of the workload.
    Deterministic,
    /// Pure function of (workload, run assembly).
    Assembly,
    /// Varies run to run (timings, scheduler shape).
    Volatile,
}

/// Static description of one metric.
#[derive(Debug, Clone, Copy)]
pub struct MetricSpec {
    /// Dotted static key, e.g. `engine.op.scan.rows`. Keys contain only
    /// `[a-z0-9._]`, so they embed into JSON without escaping.
    pub name: &'static str,
    /// Slot kind.
    pub kind: MetricKind,
    /// Upper bucket bounds (inclusive) for histograms; empty otherwise.
    /// Samples above the last bound land in an overflow bucket.
    pub buckets: &'static [u64],
    /// Report section ([`MetricClass`]).
    pub class: MetricClass,
}

/// Bucket bounds for row-count distributions (per-operator work).
pub const ROWS_BUCKETS: &[u64] =
    &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536];

/// Bucket bounds for statement-level work totals (steps, join rows).
pub const WORK_BUCKETS: &[u64] =
    &[16, 64, 256, 1024, 4096, 16384, 65536, 262_144, 1_048_576, 16_777_216];

/// Bucket bounds for percentage distributions (selection-vector density).
pub const PCT_BUCKETS: &[u64] = &[5, 10, 25, 50, 75, 90, 100];

/// Bucket bounds for wall-clock nanosecond samples.
pub const NANOS_BUCKETS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

macro_rules! define_metrics {
    ($($(#[$doc:meta])* $variant:ident => $name:literal, $kind:ident, $buckets:expr, $class:ident;)*) => {
        /// Every registered metric, by static key (see [`SPECS`]).
        ///
        /// The discriminant is the metric's slot index in the registry.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum Metric {
            $($(#[$doc])* $variant,)*
        }

        /// The full metric table, indexed by `Metric as usize`.
        pub const SPECS: &[MetricSpec] = &[
            $(MetricSpec {
                name: $name,
                kind: MetricKind::$kind,
                buckets: $buckets,
                class: MetricClass::$class,
            },)*
        ];

        impl Metric {
            /// Every metric, in registration order.
            pub const ALL: &'static [Metric] = &[$(Metric::$variant,)*];
        }
    };
}

define_metrics! {
    // ---- engine: compiled plans and the plan cache -----------------------
    // Plan-cache accounting is *assembly*-classified: totals are pure
    // functions of the lookup sequence (identical at any thread count), but
    // a checkpoint resume skips lookups for restored cells and a shard
    // merge sums independent caches, so the values legitimately differ
    // across run assemblies while everything deterministic stays identical.
    /// Statements lowered to a `CompiledPlan` (cache misses compile).
    EnginePlanCompile => "engine.plan.compile", Counter, &[], Assembly;
    /// Plan-cache lookups served from a cached plan.
    EnginePlanCacheHit => "engine.plan.cache_hit", Counter, &[], Assembly;
    /// Plan-cache lookups that had to compile.
    EnginePlanCacheMiss => "engine.plan.cache_miss", Counter, &[], Assembly;
    /// Plans evicted from a bounded cache (FIFO order).
    EnginePlanCacheEviction => "engine.plan.cache_eviction", Counter, &[], Assembly;
    /// Plans pre-compiled by the resume-warm pass (restored checkpoint
    /// cells replaying their statements into the cache before execution).
    EnginePlanResumeWarm => "engine.plan.resume_warm", Counter, &[], Assembly;

    // ---- engine: per-statement execution and budgets ---------------------
    /// Statements executed (interpreter or compiled plan).
    EngineExecStatements => "engine.exec.statements", Counter, &[], Deterministic;
    /// Cooperative step budget consumed per statement.
    EngineExecSteps => "engine.exec.steps", Histogram, WORK_BUCKETS, Deterministic;
    /// Join build/probe budget consumed per statement.
    EngineExecJoinRows => "engine.exec.join_rows", Histogram, WORK_BUCKETS, Deterministic;
    /// Executions aborted by an `ExecLimits` budget.
    EngineLimitsExhausted => "engine.limits.exhausted", Counter, &[], Deterministic;

    // ---- engine: per-operator work ---------------------------------------
    /// Rows produced per base-table / view / derived-table scan.
    EngineOpScanRows => "engine.op.scan.rows", Histogram, ROWS_BUCKETS, Deterministic;
    /// Rows produced per join (hash or nested loop).
    EngineOpJoinRows => "engine.op.join.rows", Histogram, ROWS_BUCKETS, Deterministic;
    /// Rows surviving each WHERE filter.
    EngineOpFilterRows => "engine.op.filter.rows", Histogram, ROWS_BUCKETS, Deterministic;
    /// Groups formed per GROUP BY (or 1 for a global aggregate).
    EngineOpGroupUnits => "engine.op.group.units", Histogram, ROWS_BUCKETS, Deterministic;
    /// Rows sorted per ORDER BY.
    EngineOpSortRows => "engine.op.sort.rows", Histogram, ROWS_BUCKETS, Deterministic;
    /// Rows projected per query block.
    EngineOpProjectRows => "engine.op.project.rows", Histogram, ROWS_BUCKETS, Deterministic;

    // ---- engine: vectorized executor -------------------------------------
    /// Column batches processed by the vectorized executor (all operators).
    EngineVecBatches => "engine.vec.batches", Counter, &[], Deterministic;
    /// Batches consumed by vectorized base-table scans.
    EngineOpScanBatches => "engine.op.scan.batches", Counter, &[], Deterministic;
    /// Batches evaluated by vectorized WHERE filters.
    EngineOpFilterBatches => "engine.op.filter.batches", Counter, &[], Deterministic;
    /// Batches probed by vectorized hash joins.
    EngineOpJoinBatches => "engine.op.join.batches", Counter, &[], Deterministic;
    /// Selection-vector density per filter batch (surviving rows as a
    /// percentage of batch rows, 0–100).
    EngineVecSelectivityPct => "engine.vec.selectivity_pct", Histogram, PCT_BUCKETS, Deterministic;
    /// Dictionary entries per string column touched by a vectorized scan.
    EngineVecDictEntries => "engine.vec.dict.entries", Histogram, ROWS_BUCKETS, Deterministic;
    /// Query blocks executed as a fused scan→filter→tail pipeline (a
    /// selection vector carried between operators instead of a
    /// materialized intermediate relation).
    EngineVecFusedPipelines => "engine.vec.fused_pipelines", Counter, &[], Deterministic;
    /// Buffer requests served by the per-execution `BatchPool` from a
    /// buffer recycled earlier in the same execution.
    EngineVecPoolHits => "engine.vec.pool.hits", Counter, &[], Deterministic;
    /// Buffer requests the per-execution `BatchPool` could not serve from
    /// its own recycle list (a pure function of the workload: whether the
    /// backing memory came from the thread-local stash or a fresh malloc
    /// is deliberately *not* distinguished, so the count stays identical
    /// at any thread count).
    EngineVecPoolAllocs => "engine.vec.pool.allocs", Counter, &[], Deterministic;
    /// Rows processed by dictionary-code kernels (predicates, join keys,
    /// and GROUP BY keys evaluated on `u32` codes without touching string
    /// data in the hot loop).
    EngineVecDictKernelRows => "engine.vec.dict_kernel_rows", Counter, &[], Deterministic;

    // ---- engine: cost-based planner --------------------------------------
    /// Statements executed through the cost-based plan (DESIGN.md §10).
    EngineOptPlans => "engine.opt.plans", Counter, &[], Deterministic;
    /// Joins placed at a different position than their FROM-clause order.
    EngineOptJoinsReordered => "engine.opt.joins_reordered", Counter, &[], Deterministic;
    /// WHERE conjuncts pushed below the join tree onto a base table.
    EngineOptPredicatesPushed => "engine.opt.predicates_pushed", Counter, &[], Deterministic;
    /// Scans replaced by a secondary-index equality probe.
    EngineOptIndexProbes => "engine.opt.index_probes", Counter, &[], Deterministic;
    /// Secondary hash indexes built (lazy, cached per table+column).
    /// Assembly-classified: a checkpoint resume replays restored cells
    /// without executing them, so the resumed process builds fewer
    /// indexes than a fresh run — like plan compilation.
    EngineOptIndexBuilds => "engine.opt.index_builds", Counter, &[], Assembly;
    /// Absolute join-cardinality estimation error as a percentage of the
    /// actual output (capped at 100000).
    EngineOptCardErrPct => "engine.opt.card_err_pct", Histogram, PCT_BUCKETS, Deterministic;

    // ---- llm: resilience middleware --------------------------------------
    /// Grid cells planned by the resilience pre-pass.
    LlmCellsPlanned => "llm.cells.planned", Counter, &[], Deterministic;
    /// Cells skipped because the model's breaker was open.
    LlmCellsSkipped => "llm.cells.skipped", Counter, &[], Deterministic;
    /// Cells that burned every retry on transient faults.
    LlmCellsExhausted => "llm.cells.exhausted", Counter, &[], Deterministic;
    /// Simulated API attempts across all cells.
    LlmResilienceAttempts => "llm.resilience.attempts", Counter, &[], Deterministic;
    /// Retries (attempts beyond each cell's first).
    LlmResilienceRetries => "llm.resilience.retries", Counter, &[], Deterministic;
    /// Total simulated backoff wait, in milliseconds.
    LlmResilienceBackoffMs => "llm.resilience.backoff_ms", Counter, &[], Deterministic;
    /// Circuit-breaker trips (Closed/HalfOpen → Open).
    LlmBreakerTrips => "llm.breaker.trips", Counter, &[], Deterministic;
    /// Breaker cooldown expiries (Open → HalfOpen).
    LlmBreakerHalfOpen => "llm.breaker.half_open", Counter, &[], Deterministic;
    /// Breaker recoveries (HalfOpen → Closed on a successful probe).
    LlmBreakerClose => "llm.breaker.close", Counter, &[], Deterministic;
    /// Timeout faults drawn.
    LlmFaultsTimeout => "llm.faults.timeout", Counter, &[], Deterministic;
    /// Rate-limit faults drawn.
    LlmFaultsRateLimit => "llm.faults.rate_limit", Counter, &[], Deterministic;
    /// Truncated-payload faults drawn.
    LlmFaultsTruncated => "llm.faults.truncated", Counter, &[], Deterministic;
    /// Garbage-payload faults drawn.
    LlmFaultsGarbage => "llm.faults.garbage", Counter, &[], Deterministic;
    /// Client-panic faults drawn.
    LlmFaultsPanic => "llm.faults.panic", Counter, &[], Deterministic;

    // ---- core: scheduler -------------------------------------------------
    /// Work items completed by the scheduler.
    CoreSchedulerItems => "core.scheduler.items", Counter, &[], Deterministic;
    /// Worker threads used by the last scheduled run.
    CoreSchedulerWorkers => "core.scheduler.workers", Gauge, &[], Volatile;
    /// Items still unclaimed at the most recent chunk claim.
    CoreSchedulerQueueDepth => "core.scheduler.queue_depth", Gauge, &[], Volatile;
    /// Chunks claimed from the shared cursor.
    CoreSchedulerChunksClaimed => "core.scheduler.chunks_claimed", Counter, &[], Volatile;
    /// Chunks claimed by a worker beyond its first (work stealing).
    CoreSchedulerStealChunks => "core.scheduler.steal_chunks", Counter, &[], Volatile;
    /// Wall time per scheduled item, in nanoseconds.
    CoreSchedulerItemWallNs => "core.scheduler.item_wall_ns", Histogram, NANOS_BUCKETS, Volatile;

    // ---- serve: admission control and batching ---------------------------
    // Request/shed/batch accounting is *deterministic*-classified under the
    // serve layer's `--serial` contract: with a simulated clock and a fixed
    // poll order these counters are pure functions of (workload, queue
    // depth, batch cap), identical at any fan-out thread count — they are
    // part of the bytes the serve determinism gates compare. In wall-clock
    // concurrent mode shed placement depends on arrival timing, so the
    // byte-compare gates only ever run serially (DESIGN.md §12).
    /// Requests admitted into the bounded queue.
    ServeRequests => "serve.requests", Counter, &[], Deterministic;
    /// Requests shed with a typed `Overloaded` response (queue full).
    ServeShed => "serve.shed", Counter, &[], Deterministic;
    /// Requests refused because the server was draining.
    ServeDrainRefused => "serve.drain_refused", Counter, &[], Deterministic;
    /// Responses delivered (every admitted request produces exactly one).
    ServeResponses => "serve.responses", Counter, &[], Deterministic;
    /// Responses carrying a typed error (engine, tenant, fault, internal).
    ServeErrors => "serve.errors", Counter, &[], Deterministic;
    /// Batches popped from the admission queue by a worker shard.
    ServeBatches => "serve.batches", Counter, &[], Deterministic;
    /// Requests per popped batch.
    ServeBatchSize => "serve.batch.size", Histogram, ROWS_BUCKETS, Deterministic;
    /// Faults injected into request execution by the serve fault profile.
    ServeFaultsInjected => "serve.faults.injected", Counter, &[], Deterministic;

    // ---- serve: queue shape and latency (wall clock) ---------------------
    /// Admission-queue occupancy after the most recent admit/pop.
    ServeQueueDepth => "serve.queue.depth", Gauge, &[], Volatile;
    /// High-water admission-queue occupancy this run.
    ServeQueueHighWater => "serve.queue.high_water", Gauge, &[], Volatile;
    /// Requests popped but not yet answered.
    ServeInflight => "serve.inflight", Gauge, &[], Volatile;
    /// Wall time spent executing one request, in nanoseconds.
    ServeExecWallNs => "serve.exec.wall_ns", Histogram, NANOS_BUCKETS, Volatile;
    /// Per-tenant plan-cache hit rate (percent) sampled at report time.
    ServeTenantHitRatePct => "serve.tenant.hit_rate_pct", Histogram, PCT_BUCKETS, Volatile;

    // ---- core: checkpoint / resume ---------------------------------------
    /// Grid cells restored from a verified checkpoint record.
    CkptHit => "checkpoint.hit", Counter, &[], Assembly;
    /// Grid cells with no usable checkpoint record (fresh or insufficient).
    CkptMiss => "checkpoint.miss", Counter, &[], Assembly;
    /// Checkpoint records that failed validation (truncated, bit-flipped,
    /// foreign fingerprint) and were quarantined for recompute.
    CkptCorrupt => "checkpoint.corrupt", Counter, &[], Assembly;
    /// Checkpoint records written this run.
    CkptWritten => "checkpoint.written", Counter, &[], Assembly;
}

impl Metric {
    /// The metric's static description.
    pub fn spec(self) -> &'static MetricSpec {
        &SPECS[self as usize]
    }

    /// The metric's static key.
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// Resolve a metric by its static key (linear scan — intended for
    /// cold paths like checkpoint restore and manifest merge, never for
    /// the record hot path).
    pub fn by_name(name: &str) -> Option<Metric> {
        Metric::ALL.iter().copied().find(|m| m.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn table_is_consistent() {
        assert_eq!(Metric::ALL.len(), SPECS.len());
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(*m as usize, i, "discriminant mismatch for {}", m.name());
        }
    }

    #[test]
    fn names_are_unique_and_json_safe() {
        let mut seen = BTreeSet::new();
        for spec in SPECS {
            assert!(seen.insert(spec.name), "duplicate metric key {}", spec.name);
            assert!(
                spec.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "key {} needs JSON escaping",
                spec.name
            );
        }
    }

    #[test]
    fn histograms_have_sorted_bounds_and_scalars_have_none() {
        for spec in SPECS {
            match spec.kind {
                MetricKind::Histogram => {
                    assert!(!spec.buckets.is_empty(), "{} has no buckets", spec.name);
                    assert!(
                        spec.buckets.windows(2).all(|w| w[0] < w[1]),
                        "{} bounds not strictly increasing",
                        spec.name
                    );
                }
                _ => assert!(spec.buckets.is_empty(), "{} is not a histogram", spec.name),
            }
        }
    }

    #[test]
    fn by_name_round_trips() {
        for m in Metric::ALL {
            assert_eq!(Metric::by_name(m.name()), Some(*m));
        }
        assert_eq!(Metric::by_name("no.such.metric"), None);
    }

    #[test]
    fn serve_admission_metrics_are_deterministic_and_shape_is_volatile() {
        // The serve determinism gates byte-compare the deterministic
        // section, so the admission counters must live there and the
        // wall-clock shape must not.
        for name in [
            "serve.requests",
            "serve.shed",
            "serve.drain_refused",
            "serve.responses",
            "serve.errors",
            "serve.batches",
            "serve.batch.size",
            "serve.faults.injected",
        ] {
            let m = Metric::by_name(name).unwrap();
            assert_eq!(m.spec().class, MetricClass::Deterministic, "{name}");
        }
        for name in [
            "serve.queue.depth",
            "serve.queue.high_water",
            "serve.inflight",
            "serve.exec.wall_ns",
            "serve.tenant.hit_rate_pct",
        ] {
            let m = Metric::by_name(name).unwrap();
            assert_eq!(m.spec().class, MetricClass::Volatile, "{name}");
        }
    }

    #[test]
    fn plan_cache_and_checkpoint_metrics_are_assembly_classified() {
        for name in [
            "engine.plan.compile",
            "engine.plan.cache_hit",
            "engine.plan.cache_miss",
            "engine.plan.cache_eviction",
            "engine.plan.resume_warm",
            "engine.opt.index_builds",
            "checkpoint.hit",
            "checkpoint.miss",
            "checkpoint.corrupt",
            "checkpoint.written",
        ] {
            let m = Metric::by_name(name).unwrap();
            assert_eq!(m.spec().class, MetricClass::Assembly, "{name}");
        }
    }
}
