#![warn(missing_docs)]

//! # snails-obs
//!
//! Deterministic, zero-dependency observability for the SNAILS system:
//!
//! * a **lock-free metrics registry** ([`Registry`]) — atomic counters,
//!   gauges, and fixed-bucket histograms registered by static key
//!   ([`keys::SPECS`]), snapshot-able to JSON;
//! * a **span tracer** ([`Tracer`]) — scoped [`span`] guards recording
//!   name, parent, and duration into per-task buffers that merge
//!   deterministically at drain time, with a simulated-clock mode
//!   ([`ClockMode::Sim`]) so tests can assert exact span trees;
//! * a **telemetry report** ([`Report`]) — one JSON document whose
//!   deterministic section is byte-identical across thread counts.
//!
//! # Scoped recording
//!
//! Instrumented hot paths (the engine's operators, the resilience planner,
//! the plan cache) do not take a registry parameter — they call the free
//! functions [`add`], [`observe`], and [`span`], which resolve the *current*
//! [`ObsCtx`] through a thread-local. When no context is installed every
//! call is a near-free no-op (one thread-local read), so uninstrumented
//! workloads — gold-query execution, unit tests, benchmark baselines — pay
//! nothing and record nothing.
//!
//! A context is installed with [`scope`] (per worker thread) and work items
//! are delimited with [`task`] (per scheduler item), which also carries the
//! task id that makes span merging deterministic:
//!
//! ```
//! use snails_obs::{keys::Metric, ClockMode, ObsCtx};
//! use std::sync::Arc;
//!
//! let ctx = Arc::new(ObsCtx::new(ClockMode::Sim));
//! {
//!     let _scope = snails_obs::scope(&ctx);
//!     snails_obs::task(7, || {
//!         let _span = snails_obs::span("cell");
//!         snails_obs::add(Metric::CoreSchedulerItems, 1);
//!     });
//! }
//! let report = ctx.report();
//! assert_eq!(report.counter("core.scheduler.items"), 1);
//! assert_eq!(report.spans["cell"].count, 1);
//! ```

pub mod keys;
pub mod metrics;
pub mod report;
pub mod trace;

pub use keys::Metric;
pub use metrics::{HistSnapshot, Registry, Section, Snapshot};
pub use report::Report;
pub use trace::{ClockMode, SpanRecord, SpanStat, Tracer};

use std::cell::RefCell;
use std::sync::Arc;

/// One observed run: a metrics registry plus a span tracer sharing a clock
/// mode.
pub struct ObsCtx {
    /// The run's metrics.
    pub registry: Registry,
    /// The run's spans.
    pub tracer: Tracer,
}

impl ObsCtx {
    /// A fresh context with all metrics at zero and no spans.
    pub fn new(mode: ClockMode) -> Self {
        ObsCtx { registry: Registry::new(), tracer: Tracer::new(mode) }
    }

    /// Snapshot everything recorded so far into a [`Report`]
    /// (non-destructive for metrics; spans are aggregated in place).
    pub fn report(&self) -> Report {
        Report {
            metrics: self.registry.snapshot(),
            spans: self.tracer.rollup(),
            clock: self.tracer.mode(),
        }
    }
}

/// Span bookkeeping for the task currently running on this thread.
struct TaskState {
    id: u64,
    next_seq: u32,
    /// Sim-clock tick counter (unused in wall mode).
    tick: u64,
    /// Open-span stack (`seq` of each enclosing span).
    stack: Vec<u32>,
    /// Completed spans, flushed to the tracer at task exit.
    buf: Vec<SpanRecord>,
}

thread_local! {
    static CURRENT_CTX: RefCell<Option<Arc<ObsCtx>>> = const { RefCell::new(None) };
    static CURRENT_TASK: RefCell<Option<TaskState>> = const { RefCell::new(None) };
}

/// Install `ctx` as this thread's current observability context for the
/// guard's lifetime. Nested scopes restore the previous context on drop.
#[must_use = "the context is uninstalled when the guard drops"]
pub fn scope(ctx: &Arc<ObsCtx>) -> ScopeGuard {
    let previous = CURRENT_CTX.with(|c| c.borrow_mut().replace(Arc::clone(ctx)));
    ScopeGuard { previous }
}

/// Guard returned by [`scope`].
pub struct ScopeGuard {
    previous: Option<Arc<ObsCtx>>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT_CTX.with(|c| *c.borrow_mut() = self.previous.take());
    }
}

/// Run `f` as task `id`: spans recorded inside `f` are tagged with `id`,
/// sequenced serially, and flushed to the current context's tracer when `f`
/// returns. Without an installed context `f` just runs.
///
/// In [`ClockMode::Sim`] the task's virtual clock starts at 0, so the span
/// tree recorded for a task depends only on the code it ran — not on the
/// thread it ran on or what ran before it.
pub fn task<R>(id: u64, f: impl FnOnce() -> R) -> R {
    let Some(ctx) = CURRENT_CTX.with(|c| c.borrow().clone()) else {
        return f();
    };
    let previous = CURRENT_TASK.with(|t| {
        t.borrow_mut().replace(TaskState {
            id,
            next_seq: 0,
            tick: 0,
            stack: Vec::new(),
            buf: Vec::new(),
        })
    });
    // Flush-on-drop so an unwinding task (an isolated panic) still delivers
    // the spans it completed before dying.
    struct FlushGuard {
        ctx: Arc<ObsCtx>,
        previous: Option<TaskState>,
    }
    impl Drop for FlushGuard {
        fn drop(&mut self) {
            let state = CURRENT_TASK.with(|t| t.borrow_mut().take());
            if let Some(mut state) = state {
                self.ctx.tracer.flush(&mut state.buf);
            }
            CURRENT_TASK.with(|t| *t.borrow_mut() = self.previous.take());
        }
    }
    let _guard = FlushGuard { ctx, previous };
    f()
}

/// Read the current clock: per-task ticks in sim mode, nanoseconds since
/// the tracer epoch in wall mode. Must be called with a task installed.
fn clock_now(ctx: &ObsCtx, state: &mut TaskState) -> u64 {
    match ctx.tracer.mode() {
        ClockMode::Wall => ctx.tracer.wall_now(),
        ClockMode::Sim => {
            let t = state.tick;
            state.tick += 1;
            t
        }
    }
}

/// Open a span named `name` in the current task. The span closes (and is
/// buffered) when the guard drops. Outside a [`task`] — or without an
/// installed [`scope`] — the guard is inert.
#[must_use = "the span closes when the guard drops"]
pub fn span(name: &'static str) -> Span {
    let Some(ctx) = CURRENT_CTX.with(|c| c.borrow().clone()) else {
        return Span { active: None };
    };
    let opened = CURRENT_TASK.with(|t| {
        let mut t = t.borrow_mut();
        let state = t.as_mut()?;
        let seq = state.next_seq;
        state.next_seq += 1;
        let parent = state.stack.last().copied();
        let start = clock_now(&ctx, state);
        state.stack.push(seq);
        Some((seq, parent, start))
    });
    match opened {
        Some((seq, parent, start)) => {
            Span { active: Some(ActiveSpan { ctx, name, seq, parent, start }) }
        }
        None => Span { active: None },
    }
}

struct ActiveSpan {
    ctx: Arc<ObsCtx>,
    name: &'static str,
    seq: u32,
    parent: Option<u32>,
    start: u64,
}

/// Guard returned by [`span`].
pub struct Span {
    active: Option<ActiveSpan>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(s) = self.active.take() else { return };
        CURRENT_TASK.with(|t| {
            let mut t = t.borrow_mut();
            let Some(state) = t.as_mut() else { return };
            let end = clock_now(&s.ctx, state);
            // Pop this span (and, defensively, anything opened after it that
            // leaked without closing — cannot happen with guard discipline).
            while let Some(top) = state.stack.pop() {
                if top == s.seq {
                    break;
                }
            }
            state.buf.push(SpanRecord {
                name: s.name,
                task: state.id,
                seq: s.seq,
                parent: s.parent,
                start: s.start,
                end,
            });
        });
    }
}

/// Add `n` to counter `m` in the current context (no-op when none).
pub fn add(m: Metric, n: u64) {
    CURRENT_CTX.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            ctx.registry.add(m, n);
        }
    });
}

/// Set gauge `m` to `v` in the current context (no-op when none).
pub fn gauge_set(m: Metric, v: i64) {
    CURRENT_CTX.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            ctx.registry.gauge_set(m, v);
        }
    });
}

/// Record histogram sample `v` for `m` in the current context (no-op when
/// none).
pub fn observe(m: Metric, v: u64) {
    CURRENT_CTX.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            ctx.registry.observe(m, v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unscoped_calls_are_inert() {
        add(Metric::EnginePlanCacheHit, 1);
        observe(Metric::EngineOpScanRows, 10);
        gauge_set(Metric::CoreSchedulerWorkers, 4);
        let _span = span("nothing");
        // Nothing to assert beyond "does not panic": there is no registry
        // to have recorded into.
    }

    #[test]
    fn scope_installs_and_restores() {
        let a = Arc::new(ObsCtx::new(ClockMode::Sim));
        let b = Arc::new(ObsCtx::new(ClockMode::Sim));
        {
            let _ga = scope(&a);
            add(Metric::LlmResilienceAttempts, 1);
            {
                let _gb = scope(&b);
                add(Metric::LlmResilienceAttempts, 10);
            }
            add(Metric::LlmResilienceAttempts, 1);
        }
        add(Metric::LlmResilienceAttempts, 100); // no scope: dropped
        assert_eq!(a.registry.counter(Metric::LlmResilienceAttempts), 2);
        assert_eq!(b.registry.counter(Metric::LlmResilienceAttempts), 10);
    }

    #[test]
    fn sim_clock_span_tree_is_exact() {
        let ctx = Arc::new(ObsCtx::new(ClockMode::Sim));
        {
            let _g = scope(&ctx);
            task(3, || {
                let _outer = span("outer");
                {
                    let _inner = span("inner");
                }
                let _sibling = span("sibling");
            });
        }
        let spans = ctx.tracer.drain_sorted();
        assert_eq!(
            spans,
            vec![
                // Ticks: outer start=0, inner start=1, inner end=2,
                // sibling start=3, sibling end=4, outer end=5. Buffer order
                // is completion order; (task, seq) sort restores entry order.
                SpanRecord { name: "outer", task: 3, seq: 0, parent: None, start: 0, end: 5 },
                SpanRecord { name: "inner", task: 3, seq: 1, parent: Some(0), start: 1, end: 2 },
                SpanRecord {
                    name: "sibling",
                    task: 3,
                    seq: 2,
                    parent: Some(0),
                    start: 3,
                    end: 4
                },
            ]
        );
    }

    #[test]
    fn spans_survive_task_panics() {
        let ctx = Arc::new(ObsCtx::new(ClockMode::Sim));
        let _g = scope(&ctx);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            task(1, || {
                let _s = span("doomed");
                std::panic::panic_any(42i32); // payload avoids the default hook's message
            })
        }));
        assert!(result.is_err());
        let spans = ctx.tracer.drain_sorted();
        assert_eq!(spans.len(), 1, "the unwound span still flushed");
        assert_eq!(spans[0].name, "doomed");
        // A fresh task on the same thread starts clean.
        task(2, || {
            let _s = span("after");
        });
        assert_eq!(ctx.tracer.drain_sorted()[0].task, 2);
    }

    #[test]
    fn report_combines_metrics_and_spans() {
        let ctx = Arc::new(ObsCtx::new(ClockMode::Sim));
        {
            let _g = scope(&ctx);
            task(0, || {
                let _s = span("work");
                add(Metric::EnginePlanCacheHit, 9);
                add(Metric::EnginePlanCacheMiss, 1);
            });
        }
        let report = ctx.report();
        assert_eq!(report.counter("engine.plan.cache_hit"), 9);
        assert_eq!(report.plan_cache_hit_rate(), Some(0.9));
        assert_eq!(report.spans["work"].count, 1);
        let json = report.to_json();
        assert!(json.starts_with("{\"clock\":\"sim\",\"deterministic\":{"));
        assert!(json.contains("\"spans\":{\"work\":{\"count\":1,\"total\":1}}"));
    }
}
