//! The span tracer: scoped guards recording name, parent, and duration
//! into per-task buffers that merge deterministically at drain time.
//!
//! # Determinism model
//!
//! Spans are always recorded inside a *task* (one scheduler work item, see
//! [`crate::task`]). A task runs on exactly one thread, so the spans of one
//! task have a well-defined serial order; each gets a per-task sequence
//! number and a parent link into the same task. Worker threads buffer spans
//! locally and flush one task at a time into the tracer, and
//! [`Tracer::drain_sorted`] sorts the combined buffer by `(task, seq)` —
//! so the drained stream is identical at any thread count.
//!
//! Durations come from the tracer's [`ClockMode`]:
//!
//! * [`ClockMode::Wall`] — monotonic nanoseconds since the tracer's epoch.
//!   Real timings; not reproducible across runs.
//! * [`ClockMode::Sim`] — a virtual per-task clock that advances by one
//!   tick per clock read. Start/end ticks are then pure functions of the
//!   task's span structure, so tests (and the telemetry report's
//!   deterministic section) can assert exact span trees.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// Where span timestamps come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Monotonic wall clock (nanoseconds since the tracer epoch).
    Wall,
    /// Deterministic per-task tick counter.
    Sim,
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name.
    pub name: &'static str,
    /// Task (work item) the span belongs to.
    pub task: u64,
    /// Per-task sequence number, assigned at span *start* — so `seq` orders
    /// spans by entry even though buffers fill in completion order.
    pub seq: u32,
    /// `seq` of the enclosing span within the same task, if any.
    pub parent: Option<u32>,
    /// Start timestamp (ns since epoch, or sim ticks).
    pub start: u64,
    /// End timestamp (ns since epoch, or sim ticks).
    pub end: u64,
}

impl SpanRecord {
    /// Span duration in clock units.
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// Aggregate of all spans sharing a name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of spans.
    pub count: u64,
    /// Summed duration, in clock units.
    pub total: u64,
}

/// Collects completed spans from every worker thread.
pub struct Tracer {
    mode: ClockMode,
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Tracer {
    /// An empty tracer. The wall epoch is captured now.
    pub fn new(mode: ClockMode) -> Self {
        Tracer { mode, epoch: Instant::now(), spans: Mutex::new(Vec::new()) }
    }

    /// The tracer's clock mode.
    pub fn mode(&self) -> ClockMode {
        self.mode
    }

    /// Nanoseconds since the tracer epoch (wall mode only).
    pub(crate) fn wall_now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Flush one task's completed spans into the shared buffer (called once
    /// per task, at task exit — one lock acquisition per task, not per
    /// span).
    pub(crate) fn flush(&self, task_spans: &mut Vec<SpanRecord>) {
        if task_spans.is_empty() {
            return;
        }
        self.spans.lock().expect("tracer poisoned").append(task_spans);
    }

    /// Append already-completed spans from another tracer (a temporary
    /// per-cell context being folded back into the run's main context).
    /// The records keep their original task ids, so the merged
    /// [`Tracer::drain_sorted`] order is unchanged by *where* they were
    /// recorded.
    pub fn absorb(&self, mut spans: Vec<SpanRecord>) {
        self.flush(&mut spans);
    }

    /// Remove and return every recorded span, sorted by `(task, seq)` —
    /// the deterministic merged order.
    pub fn drain_sorted(&self) -> Vec<SpanRecord> {
        let mut spans = std::mem::take(&mut *self.spans.lock().expect("tracer poisoned"));
        spans.sort_by_key(|s| (s.task, s.seq));
        spans
    }

    /// Per-name rollup of every recorded span (non-destructive).
    pub fn rollup(&self) -> BTreeMap<&'static str, SpanStat> {
        let spans = self.spans.lock().expect("tracer poisoned");
        let mut out: BTreeMap<&'static str, SpanStat> = BTreeMap::new();
        for s in spans.iter() {
            let stat = out.entry(s.name).or_default();
            stat.count += 1;
            stat.total += s.duration();
        }
        out
    }
}

/// Render a span rollup as one JSON object
/// (`{"name":{"count":n,"total":t},...}`); map order makes equal rollups
/// render to identical bytes.
pub fn rollup_to_json(rollup: &BTreeMap<&'static str, SpanStat>) -> String {
    let mut out = String::from("{");
    for (i, (name, stat)) in rollup.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{{\"count\":{},\"total\":{}}}", stat.count, stat.total);
    }
    out.push('}');
    out
}
