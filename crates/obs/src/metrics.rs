//! The lock-free metrics registry and its deterministic snapshots.

use crate::keys::{Metric, MetricClass, MetricKind, SPECS};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Storage for one registered metric.
enum Slot {
    Counter(AtomicU64),
    Gauge(AtomicI64),
    Hist(HistSlot),
}

/// Fixed-bucket histogram storage: one counter per bound plus an overflow
/// bucket, a sample count, and a saturating sample sum.
struct HistSlot {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A metrics registry over the static [`crate::keys::SPECS`] table.
///
/// All update paths are lock-free: a metric id indexes a preallocated slot
/// and the update is a relaxed atomic RMW. Snapshots iterate the table in
/// registration order, so two registries that received the same multiset of
/// updates produce byte-identical snapshots regardless of thread
/// interleaving.
pub struct Registry {
    slots: Box<[Slot]>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry with every metric in [`crate::keys::SPECS`] at zero.
    pub fn new() -> Self {
        let slots = SPECS
            .iter()
            .map(|spec| match spec.kind {
                MetricKind::Counter => Slot::Counter(AtomicU64::new(0)),
                MetricKind::Gauge => Slot::Gauge(AtomicI64::new(0)),
                MetricKind::Histogram => Slot::Hist(HistSlot {
                    buckets: (0..=spec.buckets.len()).map(|_| AtomicU64::new(0)).collect(),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                }),
            })
            .collect();
        Registry { slots }
    }

    /// Add `n` to a counter. No-op (debug panic) on a non-counter metric.
    pub fn add(&self, m: Metric, n: u64) {
        match &self.slots[m as usize] {
            Slot::Counter(c) => {
                c.fetch_add(n, Ordering::Relaxed);
            }
            _ => debug_assert!(false, "{} is not a counter", m.name()),
        }
    }

    /// Set a gauge to `v` (last write wins).
    pub fn gauge_set(&self, m: Metric, v: i64) {
        match &self.slots[m as usize] {
            Slot::Gauge(g) => g.store(v, Ordering::Relaxed),
            _ => debug_assert!(false, "{} is not a gauge", m.name()),
        }
    }

    /// Record one histogram sample.
    pub fn observe(&self, m: Metric, v: u64) {
        match &self.slots[m as usize] {
            Slot::Hist(h) => {
                let bounds = m.spec().buckets;
                let idx = bounds.partition_point(|&b| b < v);
                h.buckets[idx].fetch_add(1, Ordering::Relaxed);
                h.count.fetch_add(1, Ordering::Relaxed);
                let mut cur = h.sum.load(Ordering::Relaxed);
                loop {
                    let next = cur.saturating_add(v);
                    match h.sum.compare_exchange_weak(
                        cur,
                        next,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(seen) => cur = seen,
                    }
                }
            }
            _ => debug_assert!(false, "{} is not a histogram", m.name()),
        }
    }

    /// Current value of a counter.
    pub fn counter(&self, m: Metric) -> u64 {
        match &self.slots[m as usize] {
            Slot::Counter(c) => c.load(Ordering::Relaxed),
            _ => 0,
        }
    }

    /// Current value of a gauge.
    pub fn gauge(&self, m: Metric) -> i64 {
        match &self.slots[m as usize] {
            Slot::Gauge(g) => g.load(Ordering::Relaxed),
            _ => 0,
        }
    }

    /// Point-in-time copy of every registered metric, split into the
    /// deterministic, assembly, and volatile sections.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for (m, spec) in Metric::ALL.iter().zip(SPECS) {
            let section = match spec.class {
                MetricClass::Deterministic => &mut snap.deterministic,
                MetricClass::Assembly => &mut snap.assembly,
                MetricClass::Volatile => &mut snap.volatile,
            };
            match &self.slots[*m as usize] {
                Slot::Counter(c) => {
                    section.counters.insert(spec.name, c.load(Ordering::Relaxed));
                }
                Slot::Gauge(g) => {
                    section.gauges.insert(spec.name, g.load(Ordering::Relaxed));
                }
                Slot::Hist(h) => {
                    section.histograms.insert(
                        spec.name,
                        HistSnapshot {
                            bounds: spec.buckets,
                            counts: h
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed))
                                .collect(),
                            count: h.count.load(Ordering::Relaxed),
                            sum: h.sum.load(Ordering::Relaxed),
                        },
                    );
                }
            }
        }
        snap
    }

    /// Fold another registry's snapshot into this registry: counters and
    /// histogram buckets add, gauges are last-write-wins (taken only when
    /// the absorbed value is nonzero, so an untouched gauge cannot clobber
    /// a live one).
    ///
    /// This is the primitive behind checkpoint restore (replaying a stored
    /// per-cell delta into the live run's registry) and per-cell capture
    /// (folding a temporary cell-scoped registry back into the main one):
    /// because every update is an atomic add of the recorded totals, a
    /// registry that executed a cell and a registry that absorbed the
    /// cell's stored delta hold identical values.
    pub fn absorb(&self, snap: &Snapshot) {
        for section in [&snap.deterministic, &snap.assembly, &snap.volatile] {
            for (name, v) in &section.counters {
                if *v > 0 {
                    if let Some(m) = Metric::by_name(name) {
                        self.add(m, *v);
                    }
                }
            }
            for (name, v) in &section.gauges {
                if *v != 0 {
                    if let Some(m) = Metric::by_name(name) {
                        self.gauge_set(m, *v);
                    }
                }
            }
            for (name, h) in &section.histograms {
                if h.count > 0 {
                    if let Some(m) = Metric::by_name(name) {
                        self.absorb_hist(m, h);
                    }
                }
            }
        }
    }

    /// Add a histogram snapshot's buckets/count/sum directly into the slot
    /// (bypassing per-sample bucketing — the snapshot already bucketed).
    pub fn absorb_hist(&self, m: Metric, h: &HistSnapshot) {
        match &self.slots[m as usize] {
            Slot::Hist(slot) => {
                for (bucket, &c) in slot.buckets.iter().zip(&h.counts) {
                    if c > 0 {
                        bucket.fetch_add(c, Ordering::Relaxed);
                    }
                }
                slot.count.fetch_add(h.count, Ordering::Relaxed);
                let mut cur = slot.sum.load(Ordering::Relaxed);
                loop {
                    let next = cur.saturating_add(h.sum);
                    match slot.sum.compare_exchange_weak(
                        cur,
                        next,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(seen) => cur = seen,
                    }
                }
            }
            _ => debug_assert!(false, "{} is not a histogram", m.name()),
        }
    }
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Inclusive upper bounds, from the metric spec.
    pub bounds: &'static [u64],
    /// Per-bucket sample counts; the final entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
}

/// One report section: every metric of the matching volatility class,
/// keyed by static name (sorted, so JSON rendering is deterministic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Section {
    /// Counter values.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<&'static str, i64>,
    /// Histogram values.
    pub histograms: BTreeMap<&'static str, HistSnapshot>,
}

impl Section {
    /// Render as one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    ///
    /// Keys come from the static table (no escaping needed) and maps are
    /// ordered, so equal sections render to identical bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{{\"count\":{},\"sum\":{},\"bounds\":[", h.count, h.sum);
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Fold `other` into `self`: counters sum, gauges take the maximum
    /// (shape levels like worker counts merge meaningfully; there are no
    /// deterministic gauges), histograms merge bucketwise.
    ///
    /// Summation is commutative and associative, so merging shard sections
    /// in any order or grouping yields identical bytes — the property the
    /// deterministic-merge gate relies on.
    pub fn merge(&mut self, other: &Section) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let slot = self.gauges.entry(k).or_insert(i64::MIN);
            *slot = (*slot).max(*v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => {
                    debug_assert_eq!(mine.bounds, h.bounds, "{k}: bucket bounds diverge");
                    for (a, b) in mine.counts.iter_mut().zip(&h.counts) {
                        *a += b;
                    }
                    mine.count += h.count;
                    mine.sum = mine.sum.saturating_add(h.sum);
                }
                None => {
                    self.histograms.insert(k, h.clone());
                }
            }
        }
    }
}

/// A full registry snapshot: deterministic, assembly, and volatile
/// sections (see [`crate::keys::MetricClass`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Metrics whose values are pure functions of the workload (identical
    /// at any thread count and across run assemblies).
    pub deterministic: Section,
    /// Metrics that are pure functions of (workload, run assembly):
    /// plan-cache and checkpoint accounting — thread-count invariant, but
    /// legitimately different between fresh, resumed, and sharded runs.
    pub assembly: Section,
    /// Wall-clock timings and scheduler-shape metrics.
    pub volatile: Section,
}

impl Snapshot {
    /// Counter value by static key, searching every section (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.deterministic
            .counters
            .get(name)
            .or_else(|| self.assembly.counters.get(name))
            .or_else(|| self.volatile.counters.get(name))
            .copied()
            .unwrap_or(0)
    }

    /// Histogram snapshot by static key, searching every section.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.deterministic
            .histograms
            .get(name)
            .or_else(|| self.assembly.histograms.get(name))
            .or_else(|| self.volatile.histograms.get(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Metric;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let r = Registry::new();
        r.add(Metric::EnginePlanCacheHit, 3);
        r.add(Metric::EnginePlanCacheHit, 4);
        assert_eq!(r.counter(Metric::EnginePlanCacheHit), 7);
        let snap = r.snapshot();
        assert_eq!(snap.counter("engine.plan.cache_hit"), 7);
        assert_eq!(snap.counter("engine.plan.cache_miss"), 0);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let r = Registry::new();
        r.gauge_set(Metric::CoreSchedulerWorkers, 8);
        r.gauge_set(Metric::CoreSchedulerWorkers, 2);
        assert_eq!(r.gauge(Metric::CoreSchedulerWorkers), 2);
    }

    #[test]
    fn histogram_buckets_bound_inclusively_with_overflow() {
        let r = Registry::new();
        // ROWS_BUCKETS starts [1, 2, 4, ...] and ends at 65536.
        r.observe(Metric::EngineOpScanRows, 0); // bucket 0 (<= 1)
        r.observe(Metric::EngineOpScanRows, 1); // bucket 0 (<= 1, inclusive)
        r.observe(Metric::EngineOpScanRows, 2); // bucket 1
        r.observe(Metric::EngineOpScanRows, 3); // bucket 2 (<= 4)
        r.observe(Metric::EngineOpScanRows, 1 << 40); // overflow
        let snap = r.snapshot();
        let h = snap.histogram("engine.op.scan.rows").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 6 + (1 << 40));
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[2], 1);
        assert_eq!(*h.counts.last().unwrap(), 1, "overflow bucket");
        assert_eq!(h.counts.len(), h.bounds.len() + 1);
    }

    #[test]
    fn equal_update_multisets_render_identical_json() {
        let a = Registry::new();
        let b = Registry::new();
        for i in 0..100u64 {
            a.add(Metric::LlmResilienceAttempts, 1);
            a.observe(Metric::EngineExecSteps, i * 17);
        }
        // Same multiset, different order.
        for i in (0..100u64).rev() {
            b.observe(Metric::EngineExecSteps, i * 17);
            b.add(Metric::LlmResilienceAttempts, 1);
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_eq!(sa, sb);
        assert_eq!(sa.deterministic.to_json(), sb.deterministic.to_json());
    }

    #[test]
    fn volatile_metrics_stay_out_of_the_deterministic_section() {
        let r = Registry::new();
        r.add(Metric::CoreSchedulerChunksClaimed, 5);
        r.add(Metric::CoreSchedulerItems, 5);
        let snap = r.snapshot();
        assert!(!snap.deterministic.counters.contains_key("core.scheduler.chunks_claimed"));
        assert_eq!(snap.volatile.counters["core.scheduler.chunks_claimed"], 5);
        assert_eq!(snap.deterministic.counters["core.scheduler.items"], 5);
    }

    #[test]
    fn assembly_metrics_get_their_own_section() {
        let r = Registry::new();
        r.add(Metric::EnginePlanCacheHit, 3);
        r.add(Metric::CkptCorrupt, 1);
        let snap = r.snapshot();
        assert!(!snap.deterministic.counters.contains_key("engine.plan.cache_hit"));
        assert_eq!(snap.assembly.counters["engine.plan.cache_hit"], 3);
        assert_eq!(snap.assembly.counters["checkpoint.corrupt"], 1);
        // Name lookups still see every section.
        assert_eq!(snap.counter("engine.plan.cache_hit"), 3);
    }

    #[test]
    fn absorb_reproduces_the_source_registry() {
        let src = Registry::new();
        src.add(Metric::EngineExecStatements, 4);
        src.add(Metric::EnginePlanCacheMiss, 2);
        src.observe(Metric::EngineOpScanRows, 3);
        src.observe(Metric::EngineOpScanRows, 1 << 40);
        let dst = Registry::new();
        dst.add(Metric::EngineExecStatements, 1);
        dst.absorb(&src.snapshot());
        let snap = dst.snapshot();
        assert_eq!(snap.counter("engine.exec.statements"), 5);
        assert_eq!(snap.counter("engine.plan.cache_miss"), 2);
        let h = snap.histogram("engine.op.scan.rows").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 3 + (1u64 << 40));
        assert_eq!(*h.counts.last().unwrap(), 1, "overflow bucket absorbed");
    }

    #[test]
    fn section_merge_is_order_insensitive() {
        let mk = |hits: u64, rows: &[u64]| {
            let r = Registry::new();
            r.add(Metric::CoreSchedulerItems, hits);
            for &v in rows {
                r.observe(Metric::EngineOpScanRows, v);
            }
            r.snapshot().deterministic
        };
        let (a, b, c) = (mk(1, &[5]), mk(2, &[9, 70000]), mk(4, &[]));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut right = c.clone();
        right.merge(&a);
        right.merge(&b);
        assert_eq!(left.to_json(), right.to_json());
        assert_eq!(left.counters["core.scheduler.items"], 7);
        assert_eq!(left.histograms["engine.op.scan.rows"].count, 3);
    }
}
