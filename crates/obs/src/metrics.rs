//! The lock-free metrics registry and its deterministic snapshots.

use crate::keys::{Metric, MetricKind, SPECS};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Storage for one registered metric.
enum Slot {
    Counter(AtomicU64),
    Gauge(AtomicI64),
    Hist(HistSlot),
}

/// Fixed-bucket histogram storage: one counter per bound plus an overflow
/// bucket, a sample count, and a saturating sample sum.
struct HistSlot {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A metrics registry over the static [`crate::keys::SPECS`] table.
///
/// All update paths are lock-free: a metric id indexes a preallocated slot
/// and the update is a relaxed atomic RMW. Snapshots iterate the table in
/// registration order, so two registries that received the same multiset of
/// updates produce byte-identical snapshots regardless of thread
/// interleaving.
pub struct Registry {
    slots: Box<[Slot]>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry with every metric in [`crate::keys::SPECS`] at zero.
    pub fn new() -> Self {
        let slots = SPECS
            .iter()
            .map(|spec| match spec.kind {
                MetricKind::Counter => Slot::Counter(AtomicU64::new(0)),
                MetricKind::Gauge => Slot::Gauge(AtomicI64::new(0)),
                MetricKind::Histogram => Slot::Hist(HistSlot {
                    buckets: (0..=spec.buckets.len()).map(|_| AtomicU64::new(0)).collect(),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                }),
            })
            .collect();
        Registry { slots }
    }

    /// Add `n` to a counter. No-op (debug panic) on a non-counter metric.
    pub fn add(&self, m: Metric, n: u64) {
        match &self.slots[m as usize] {
            Slot::Counter(c) => {
                c.fetch_add(n, Ordering::Relaxed);
            }
            _ => debug_assert!(false, "{} is not a counter", m.name()),
        }
    }

    /// Set a gauge to `v` (last write wins).
    pub fn gauge_set(&self, m: Metric, v: i64) {
        match &self.slots[m as usize] {
            Slot::Gauge(g) => g.store(v, Ordering::Relaxed),
            _ => debug_assert!(false, "{} is not a gauge", m.name()),
        }
    }

    /// Record one histogram sample.
    pub fn observe(&self, m: Metric, v: u64) {
        match &self.slots[m as usize] {
            Slot::Hist(h) => {
                let bounds = m.spec().buckets;
                let idx = bounds.partition_point(|&b| b < v);
                h.buckets[idx].fetch_add(1, Ordering::Relaxed);
                h.count.fetch_add(1, Ordering::Relaxed);
                let mut cur = h.sum.load(Ordering::Relaxed);
                loop {
                    let next = cur.saturating_add(v);
                    match h.sum.compare_exchange_weak(
                        cur,
                        next,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(seen) => cur = seen,
                    }
                }
            }
            _ => debug_assert!(false, "{} is not a histogram", m.name()),
        }
    }

    /// Current value of a counter.
    pub fn counter(&self, m: Metric) -> u64 {
        match &self.slots[m as usize] {
            Slot::Counter(c) => c.load(Ordering::Relaxed),
            _ => 0,
        }
    }

    /// Current value of a gauge.
    pub fn gauge(&self, m: Metric) -> i64 {
        match &self.slots[m as usize] {
            Slot::Gauge(g) => g.load(Ordering::Relaxed),
            _ => 0,
        }
    }

    /// Point-in-time copy of every registered metric, split into the
    /// deterministic and volatile sections.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap =
            Snapshot { deterministic: Section::default(), volatile: Section::default() };
        for (m, spec) in Metric::ALL.iter().zip(SPECS) {
            let section =
                if spec.volatile { &mut snap.volatile } else { &mut snap.deterministic };
            match &self.slots[*m as usize] {
                Slot::Counter(c) => {
                    section.counters.insert(spec.name, c.load(Ordering::Relaxed));
                }
                Slot::Gauge(g) => {
                    section.gauges.insert(spec.name, g.load(Ordering::Relaxed));
                }
                Slot::Hist(h) => {
                    section.histograms.insert(
                        spec.name,
                        HistSnapshot {
                            bounds: spec.buckets,
                            counts: h
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed))
                                .collect(),
                            count: h.count.load(Ordering::Relaxed),
                            sum: h.sum.load(Ordering::Relaxed),
                        },
                    );
                }
            }
        }
        snap
    }
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Inclusive upper bounds, from the metric spec.
    pub bounds: &'static [u64],
    /// Per-bucket sample counts; the final entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
}

/// One report section: every metric of the matching volatility class,
/// keyed by static name (sorted, so JSON rendering is deterministic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Section {
    /// Counter values.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<&'static str, i64>,
    /// Histogram values.
    pub histograms: BTreeMap<&'static str, HistSnapshot>,
}

impl Section {
    /// Render as one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    ///
    /// Keys come from the static table (no escaping needed) and maps are
    /// ordered, so equal sections render to identical bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{{\"count\":{},\"sum\":{},\"bounds\":[", h.count, h.sum);
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// A full registry snapshot: deterministic and volatile sections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Metrics whose values are pure functions of the workload (identical
    /// at any thread count).
    pub deterministic: Section,
    /// Wall-clock timings and scheduler-shape metrics.
    pub volatile: Section,
}

impl Snapshot {
    /// Counter value by static key, searching both sections (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.deterministic
            .counters
            .get(name)
            .or_else(|| self.volatile.counters.get(name))
            .copied()
            .unwrap_or(0)
    }

    /// Histogram snapshot by static key, searching both sections.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.deterministic
            .histograms
            .get(name)
            .or_else(|| self.volatile.histograms.get(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Metric;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let r = Registry::new();
        r.add(Metric::EnginePlanCacheHit, 3);
        r.add(Metric::EnginePlanCacheHit, 4);
        assert_eq!(r.counter(Metric::EnginePlanCacheHit), 7);
        let snap = r.snapshot();
        assert_eq!(snap.counter("engine.plan.cache_hit"), 7);
        assert_eq!(snap.counter("engine.plan.cache_miss"), 0);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let r = Registry::new();
        r.gauge_set(Metric::CoreSchedulerWorkers, 8);
        r.gauge_set(Metric::CoreSchedulerWorkers, 2);
        assert_eq!(r.gauge(Metric::CoreSchedulerWorkers), 2);
    }

    #[test]
    fn histogram_buckets_bound_inclusively_with_overflow() {
        let r = Registry::new();
        // ROWS_BUCKETS starts [1, 2, 4, ...] and ends at 65536.
        r.observe(Metric::EngineOpScanRows, 0); // bucket 0 (<= 1)
        r.observe(Metric::EngineOpScanRows, 1); // bucket 0 (<= 1, inclusive)
        r.observe(Metric::EngineOpScanRows, 2); // bucket 1
        r.observe(Metric::EngineOpScanRows, 3); // bucket 2 (<= 4)
        r.observe(Metric::EngineOpScanRows, 1 << 40); // overflow
        let snap = r.snapshot();
        let h = snap.histogram("engine.op.scan.rows").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 6 + (1 << 40));
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[2], 1);
        assert_eq!(*h.counts.last().unwrap(), 1, "overflow bucket");
        assert_eq!(h.counts.len(), h.bounds.len() + 1);
    }

    #[test]
    fn equal_update_multisets_render_identical_json() {
        let a = Registry::new();
        let b = Registry::new();
        for i in 0..100u64 {
            a.add(Metric::LlmResilienceAttempts, 1);
            a.observe(Metric::EngineExecSteps, i * 17);
        }
        // Same multiset, different order.
        for i in (0..100u64).rev() {
            b.observe(Metric::EngineExecSteps, i * 17);
            b.add(Metric::LlmResilienceAttempts, 1);
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_eq!(sa, sb);
        assert_eq!(sa.deterministic.to_json(), sb.deterministic.to_json());
    }

    #[test]
    fn volatile_metrics_stay_out_of_the_deterministic_section() {
        let r = Registry::new();
        r.add(Metric::CoreSchedulerChunksClaimed, 5);
        r.add(Metric::CoreSchedulerItems, 5);
        let snap = r.snapshot();
        assert!(!snap.deterministic.counters.contains_key("core.scheduler.chunks_claimed"));
        assert_eq!(snap.volatile.counters["core.scheduler.chunks_claimed"], 5);
        assert_eq!(snap.deterministic.counters["core.scheduler.items"], 5);
    }
}
