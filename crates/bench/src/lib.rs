//! Criterion benchmark crate; see benches/.
//!
//! The library half hosts the bench-only [`CountingAlloc`]: a delegating
//! global allocator that counts heap allocations so the `snails bench`
//! binary can verify the vectorized engine's steady-state hot loops are
//! allocation-free (the buffer pool actually recycles). It is *not* wired
//! into any library crate — only binaries that opt in via
//! `#[global_allocator]` pay the two relaxed atomic increments per
//! allocation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`System`]-delegating allocator that counts allocation events and
/// allocated bytes. `realloc` counts as one event (it may move); `dealloc`
/// is free. Counters wrap at `u64::MAX` (never reached in practice) and
/// are read with [`CountingAlloc::snapshot`] deltas around a measured
/// region.
pub struct CountingAlloc {
    allocs: AtomicU64,
    bytes: AtomicU64,
}

/// A point-in-time reading of the allocation counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation events (alloc + alloc_zeroed + realloc) so far.
    pub allocs: u64,
    /// Bytes requested by those events.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Counter deltas from `earlier` to `self`.
    #[must_use]
    pub fn since(self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.wrapping_sub(earlier.allocs),
            bytes: self.bytes.wrapping_sub(earlier.bytes),
        }
    }
}

impl CountingAlloc {
    /// A zeroed counter set, usable in `static` position.
    #[must_use]
    pub const fn new() -> CountingAlloc {
        CountingAlloc { allocs: AtomicU64::new(0), bytes: AtomicU64::new(0) }
    }

    /// Read both counters.
    pub fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: pure delegation to `System`; the counters never affect the
// returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

/// Nearest-rank percentile summary of a latency (or any `u64`) sample set.
///
/// Nearest-rank is exact and deterministic — no interpolation, so two runs
/// over identical samples produce identical summaries byte-for-byte, which
/// is what the serve load harness asserts. An empty sample set summarizes
/// to all zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Percentiles {
    /// Sample count.
    pub count: u64,
    /// 50th percentile (nearest rank).
    pub p50: u64,
    /// 90th percentile (nearest rank).
    pub p90: u64,
    /// 99th percentile (nearest rank).
    pub p99: u64,
    /// Maximum sample.
    pub max: u64,
}

impl Percentiles {
    /// Summarize `samples` (sorted in place).
    #[must_use]
    pub fn of(samples: &mut [u64]) -> Percentiles {
        if samples.is_empty() {
            return Percentiles::default();
        }
        samples.sort_unstable();
        let rank = |p: u64| {
            // Nearest-rank: ceil(p/100 * n), 1-based, clamped into range.
            let n = samples.len() as u64;
            let r = (p * n).div_ceil(100).max(1) - 1;
            samples[r as usize]
        };
        Percentiles {
            count: samples.len() as u64,
            p50: rank(50),
            p90: rank(90),
            p99: rank(99),
            max: samples[samples.len() - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not registered as the global allocator here — exercise the trait
    // surface directly.
    #[test]
    fn percentiles_use_nearest_rank() {
        let mut one_to_hundred: Vec<u64> = (1..=100).rev().collect();
        let p = Percentiles::of(&mut one_to_hundred);
        assert_eq!(p, Percentiles { count: 100, p50: 50, p90: 90, p99: 99, max: 100 });

        let mut tiny = [7u64];
        let p = Percentiles::of(&mut tiny);
        assert_eq!(p, Percentiles { count: 1, p50: 7, p90: 7, p99: 7, max: 7 });

        let mut pair = [10u64, 20];
        let p = Percentiles::of(&mut pair);
        assert_eq!((p.p50, p.p99, p.max), (10, 20, 20));

        assert_eq!(Percentiles::of(&mut []), Percentiles::default());
    }

    #[test]
    fn counts_events_and_bytes() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        let before = a.snapshot();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            let p2 = a.realloc(p, layout, 128);
            assert!(!p2.is_null());
            a.dealloc(p2, Layout::from_size_align(128, 8).unwrap());
        }
        let d = a.snapshot().since(before);
        assert_eq!(d.allocs, 2, "alloc + realloc count, dealloc is free");
        assert_eq!(d.bytes, 64 + 128);
    }
}
