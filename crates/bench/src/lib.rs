//! Criterion benchmark crate; see benches/.
//!
//! The library half hosts the bench-only [`CountingAlloc`]: a delegating
//! global allocator that counts heap allocations so the `snails bench`
//! binary can verify the vectorized engine's steady-state hot loops are
//! allocation-free (the buffer pool actually recycles). It is *not* wired
//! into any library crate — only binaries that opt in via
//! `#[global_allocator]` pay the two relaxed atomic increments per
//! allocation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`System`]-delegating allocator that counts allocation events and
/// allocated bytes. `realloc` counts as one event (it may move); `dealloc`
/// is free. Counters wrap at `u64::MAX` (never reached in practice) and
/// are read with [`CountingAlloc::snapshot`] deltas around a measured
/// region.
pub struct CountingAlloc {
    allocs: AtomicU64,
    bytes: AtomicU64,
}

/// A point-in-time reading of the allocation counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation events (alloc + alloc_zeroed + realloc) so far.
    pub allocs: u64,
    /// Bytes requested by those events.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Counter deltas from `earlier` to `self`.
    #[must_use]
    pub fn since(self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.wrapping_sub(earlier.allocs),
            bytes: self.bytes.wrapping_sub(earlier.bytes),
        }
    }
}

impl CountingAlloc {
    /// A zeroed counter set, usable in `static` position.
    #[must_use]
    pub const fn new() -> CountingAlloc {
        CountingAlloc { allocs: AtomicU64::new(0), bytes: AtomicU64::new(0) }
    }

    /// Read both counters.
    pub fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: pure delegation to `System`; the counters never affect the
// returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not registered as the global allocator here — exercise the trait
    // surface directly.
    #[test]
    fn counts_events_and_bytes() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        let before = a.snapshot();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            let p2 = a.realloc(p, layout, 128);
            assert!(!p2.is_null());
            a.dealloc(p2, Layout::from_size_align(128, 8).unwrap());
        }
        let d = a.snapshot().since(before);
        assert_eq!(d.allocs, 2, "alloc + realloc count, dealloc is free");
        assert_eq!(d.bytes, 64 + 128);
    }
}
