//! Simulated-inference throughput: prompt construction, linking, and SQL
//! synthesis per model.

use criterion::{criterion_group, criterion_main, Criterion};
use snails_llm::{build_prompt, infer, ModelKind, SchemaView};
use snails_naturalness::category::SchemaVariant;
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let db = snails_data::build_database("KIS");
    let native = SchemaView::new(&db, SchemaVariant::Native);
    let least = SchemaView::new(&db, SchemaVariant::Least);

    c.bench_function("schema_view_build", |b| {
        b.iter(|| black_box(SchemaView::new(&db, SchemaVariant::Least)))
    });

    c.bench_function("prompt_build", |b| {
        b.iter(|| black_box(build_prompt(&native, &db.questions[0].question)))
    });

    for (label, view) in [("native", &native), ("least", &least)] {
        for model in [ModelKind::Gpt4o, ModelKind::CodeS] {
            let config = model.config();
            c.bench_function(&format!("infer_40q_{}_{label}", config.name), |b| {
                b.iter(|| {
                    for q in &db.questions {
                        black_box(infer(&config, &db, view, q, 7));
                    }
                })
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_inference
}
criterion_main!(benches);
