//! Parser throughput: lexing, parsing, identifier extraction, tagging, and
//! denaturalization over the SNAILS gold queries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_parser(c: &mut Criterion) {
    let db = snails_data::build_database("NTSB");
    let sqls: Vec<String> = db.questions.iter().map(|q| q.sql.clone()).collect();

    c.bench_function("parse_100_gold_queries", |b| {
        b.iter(|| {
            for sql in &sqls {
                black_box(snails_sql::parse(sql).unwrap());
            }
        })
    });

    let stmts: Vec<snails_sql::Statement> =
        sqls.iter().map(|s| snails_sql::parse(s).unwrap()).collect();

    c.bench_function("extract_identifiers_100", |b| {
        b.iter(|| {
            for stmt in &stmts {
                black_box(snails_sql::extract_identifiers(stmt));
            }
        })
    });

    c.bench_function("clause_profile_100", |b| {
        b.iter(|| {
            for stmt in &stmts {
                black_box(snails_sql::clause_profile(stmt));
            }
        })
    });

    c.bench_function("render_100", |b| {
        b.iter(|| {
            for stmt in &stmts {
                black_box(stmt.to_string());
            }
        })
    });

    let map = db
        .crosswalk
        .variant_to_native(snails_naturalness::category::SchemaVariant::Least);
    let fwd = db
        .crosswalk
        .native_to_variant(snails_naturalness::category::SchemaVariant::Least);
    let least_sqls: Vec<String> = sqls
        .iter()
        .map(|s| snails_sql::denaturalize_query(s, &fwd).unwrap())
        .collect();
    c.bench_function("denaturalize_100", |b| {
        b.iter_batched(
            || least_sqls.clone(),
            |qs| {
                for q in qs {
                    black_box(snails_sql::denaturalize_query(&q, &map).unwrap());
                }
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_parser
}
criterion_main!(benches);
