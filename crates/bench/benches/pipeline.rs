//! End-to-end pipeline throughput: database construction and full
//! per-question evaluation (the unit of the 12,072-inference benchmark).

use criterion::{criterion_group, criterion_main, Criterion};
use snails_core::pipeline::{evaluate_question, run_benchmark_on, BenchmarkConfig, EvalContext};
use snails_llm::{ModelKind, SchemaView, Workflow};
use snails_naturalness::category::SchemaVariant;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    c.bench_function("build_database_cwo", |b| {
        b.iter(|| black_box(snails_data::build_database("CWO")))
    });

    let db = snails_data::build_database("CWO");
    let view = SchemaView::new(&db, SchemaVariant::Low);

    c.bench_function("evaluate_question_zero_shot", |b| {
        b.iter(|| {
            black_box(evaluate_question(
                Workflow::ZeroShot(ModelKind::Gpt35),
                &db,
                &view,
                &db.questions[5],
                7,
            ))
        })
    });

    // Same evaluation through a prebuilt context: what the batch pipeline
    // does, skipping the per-call denaturalization-map rebuild.
    let ctx = EvalContext::new(&db, &view);
    c.bench_function("evaluate_question_zero_shot_shared_ctx", |b| {
        b.iter(|| {
            black_box(ctx.evaluate(
                Workflow::ZeroShot(ModelKind::Gpt35),
                &db.questions[5],
                7,
            ))
        })
    });

    c.bench_function("evaluate_question_din_sql", |b| {
        b.iter(|| {
            black_box(evaluate_question(Workflow::DinSql, &db, &view, &db.questions[5], 7))
        })
    });

    let collection = vec![snails_data::build_database("CWO")];
    let config = |threads: Option<usize>| BenchmarkConfig {
        seed: 7,
        databases: vec!["CWO".into()],
        variants: vec![SchemaVariant::Native, SchemaVariant::Least],
        workflows: vec![
            Workflow::ZeroShot(ModelKind::Gpt4o),
            Workflow::ZeroShot(ModelKind::CodeS),
        ],
        threads,
        ..Default::default()
    };
    c.bench_function("benchmark_160cells_serial", |b| {
        let config = config(Some(1));
        b.iter(|| black_box(run_benchmark_on(&collection, &config)))
    });
    c.bench_function("benchmark_160cells_parallel", |b| {
        let config = config(None);
        b.iter(|| black_box(run_benchmark_on(&collection, &config)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pipeline
}
criterion_main!(benches);
