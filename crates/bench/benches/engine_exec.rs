//! Engine throughput: executing the SNAILS gold workload against the
//! in-memory instances.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let db = snails_data::build_database("CWO");

    c.bench_function("exec_gold_workload_cwo", |b| {
        b.iter(|| {
            for q in &db.questions {
                black_box(snails_engine::run_sql(&db.db, &q.sql).unwrap());
            }
        })
    });

    // Signature query shapes. Identifiers are bracket-quoted because some
    // generated names collide with SQL keywords (e.g. CWO's `group` table).
    let core = &db.core;
    use snails_data::core_schema::CoreRole as R;
    let q = |r: R| snails_sql::render::quoted(&core.native(r));

    let join_group = format!(
        "SELECT e.{cat}, COUNT(*) FROM {entity} e JOIN {event} o ON e.{code} = o.{code} GROUP BY e.{cat}",
        cat = q(R::EntityCategory),
        entity = q(R::EntityTable),
        event = q(R::EventTable),
        code = q(R::EntityCode),
    );
    c.bench_function("exec_join_group", |b| {
        b.iter(|| black_box(snails_engine::run_sql(&db.db, &join_group).unwrap()))
    });

    let not_exists = format!(
        "SELECT {name} FROM {entity} e WHERE NOT EXISTS \
         (SELECT {id} FROM {event} o WHERE o.{code} = e.{code})",
        name = q(R::EntityName),
        entity = q(R::EntityTable),
        id = q(R::EventId),
        event = q(R::EventTable),
        code = q(R::EntityCode),
    );
    c.bench_function("exec_correlated_not_exists", |b| {
        b.iter(|| black_box(snails_engine::run_sql(&db.db, &not_exists).unwrap()))
    });

    let ck_join = format!(
        "SELECT s.{grade}, COUNT(*) FROM {detail} d JOIN {sub} s \
         ON d.{ev} = s.{ev} AND d.{no} = s.{no} GROUP BY s.{grade}",
        grade = q(R::SubGrade),
        detail = q(R::DetailTable),
        sub = q(R::SubdetailTable),
        ev = q(R::EventId),
        no = q(R::DetailNo),
    );
    c.bench_function("exec_composite_key_join", |b| {
        b.iter(|| black_box(snails_engine::run_sql(&db.db, &ck_join).unwrap()))
    });

    // The same join shapes with the hash join disabled (nested loop):
    // the A/B pair for the kernel speedup numbers in README.md.
    use snails_engine::{run_sql_with, ExecOptions};
    let nested = ExecOptions { hash_join: false, ..Default::default() };
    c.bench_function("exec_join_group_nested_loop", |b| {
        b.iter(|| black_box(run_sql_with(&db.db, &join_group, nested).unwrap()))
    });
    c.bench_function("exec_composite_key_join_nested_loop", |b| {
        b.iter(|| black_box(run_sql_with(&db.db, &ck_join, nested).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_engine
}
criterion_main!(benches);
