//! Classifier throughput: feature extraction, training, and inference —
//! the §2.2 SchemaPile-scale classification workload.

use criterion::{criterion_group, criterion_main, Criterion};
use snails_naturalness::{
    Classifier, FeatureConfig, HeuristicClassifier, SoftmaxClassifier, TrainConfig,
};
use std::hint::black_box;

fn bench_classifier(c: &mut Criterion) {
    let data = snails_data::schemapile::labeled_identifiers(0xBE, 2_000);
    let texts: Vec<&str> = data.iter().map(|l| l.text.as_str()).take(500).collect();

    c.bench_function("featurize_500_identifiers", |b| {
        b.iter(|| {
            for t in &texts {
                black_box(snails_naturalness::featurize(t, FeatureConfig::default()));
            }
        })
    });

    c.bench_function("softmax_train_2000x10", |b| {
        b.iter(|| {
            let config = TrainConfig { epochs: 10, ..Default::default() };
            black_box(SoftmaxClassifier::train("bench", &data, config))
        })
    });

    let clf = SoftmaxClassifier::train("bench", &data, TrainConfig::default());
    c.bench_function("softmax_classify_500", |b| {
        b.iter(|| {
            for t in &texts {
                black_box(clf.classify(t));
            }
        })
    });

    let heuristic = HeuristicClassifier::default();
    c.bench_function("heuristic_classify_100", |b| {
        b.iter(|| {
            for t in texts.iter().take(100) {
                black_box(heuristic.classify(t));
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_classifier
}
criterion_main!(benches);
