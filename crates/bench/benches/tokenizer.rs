//! Tokenizer throughput: BPE training and encoding (the appendix B.9
//! token-ratio analyses touch every identifier in every schema).

use criterion::{criterion_group, criterion_main, Criterion};
use snails_tokenize::{
    token_character_ratio, tokenizer_for, BpeTrainer, TokenizerProfile,
};
use std::hint::black_box;

fn bench_tokenizer(c: &mut Criterion) {
    let data = snails_data::schemapile::labeled_identifiers(0x70, 1_000);
    let texts: Vec<&str> = data.iter().map(|l| l.text.as_str()).collect();

    c.bench_function("bpe_train_800_merges", |b| {
        let corpus = snails_tokenize::corpus::english_training_corpus();
        b.iter(|| black_box(BpeTrainer::new(800).train(&corpus)))
    });

    let gpt = tokenizer_for(TokenizerProfile::GptLike);
    c.bench_function("bpe_encode_1000_identifiers", |b| {
        b.iter(|| {
            for t in &texts {
                black_box(gpt.encode(t));
            }
        })
    });

    c.bench_function("tcr_1000_identifiers", |b| {
        b.iter(|| {
            for t in &texts {
                black_box(token_character_ratio(gpt, t));
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_tokenizer
}
criterion_main!(benches);
