//! Observability overhead: the same workloads with and without an
//! installed telemetry scope.
//!
//! These pairs back the ≤5 % overhead contract in DESIGN.md §7: unscoped
//! instrumentation must cost one thread-local read per call site, and a
//! scoped run must stay within noise of the bare loop on a real workload
//! (the `snails bench` plan_exec stage asserts the same thing end to end).

use criterion::{criterion_group, criterion_main, Criterion};
use snails_core::telemetry::{self, ClockMode, Metric, ObsCtx};
use snails_engine::{ExecOptions, PlanCache};
use std::hint::black_box;
use std::sync::Arc;

fn bench_telemetry(c: &mut Criterion) {
    // Raw registry primitives: the per-call floor for instrumented code.
    let ctx = Arc::new(ObsCtx::new(ClockMode::Sim));
    c.bench_function("telemetry_counter_add_unscoped", |b| {
        b.iter(|| telemetry::add(black_box(Metric::EngineExecStatements), 1))
    });
    {
        let _scope = telemetry::scope(&ctx);
        c.bench_function("telemetry_counter_add_scoped", |b| {
            b.iter(|| telemetry::add(black_box(Metric::EngineExecStatements), 1))
        });
        c.bench_function("telemetry_histogram_observe_scoped", |b| {
            b.iter(|| telemetry::observe(black_box(Metric::EngineExecSteps), 12345))
        });
        c.bench_function("telemetry_span_scoped", |b| {
            b.iter(|| {
                telemetry::task(0, || {
                    let _span = telemetry::span("bench");
                })
            })
        });
    }

    // Gold workload through a warm plan cache, bare vs. scoped — the same
    // A/B the `snails bench` plan_exec stage records in BENCH_engine.json.
    let db = snails_data::build_database("CWO");
    let opts = ExecOptions::default();
    let cache = PlanCache::new();
    for q in &db.questions {
        cache.run(&db.db, &q.sql, opts).unwrap();
    }
    c.bench_function("telemetry_gold_workload_off", |b| {
        b.iter(|| {
            for q in &db.questions {
                black_box(cache.run(&db.db, &q.sql, opts).unwrap());
            }
        })
    });
    let ctx = Arc::new(ObsCtx::new(ClockMode::Sim));
    let _scope = telemetry::scope(&ctx);
    c.bench_function("telemetry_gold_workload_on", |b| {
        b.iter(|| {
            for q in &db.questions {
                black_box(cache.run(&db.db, &q.sql, opts).unwrap());
            }
        })
    });
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
