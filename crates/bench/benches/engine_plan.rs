//! Compiled-plan throughput: plan-once-execute-many against the
//! parse-and-interpret baseline on the SNAILS gold workload.
//!
//! The A/B pairs here back the plan-layer speedup numbers in DESIGN.md §5:
//! the same statements run (a) through `run_sql` — lex, parse, and resolve
//! every name on every execution — and (b) through a warm [`PlanCache`] —
//! lowered once to positional slots, then re-executed from the compiled
//! plan.

use criterion::{criterion_group, criterion_main, Criterion};
use snails_engine::{run_sql, ExecOptions, PlanCache};
use std::hint::black_box;

fn bench_plan(c: &mut Criterion) {
    let db = snails_data::build_database("CWO");
    let opts = ExecOptions::default();

    // Full gold workload, parse-and-interpret per execution (the baseline
    // `exec_gold_workload_cwo` in engine_exec.rs measures the same loop;
    // repeated here so the A/B pair lives in one report).
    c.bench_function("plan_gold_workload_interpret", |b| {
        b.iter(|| {
            for q in &db.questions {
                black_box(run_sql(&db.db, &q.sql).unwrap());
            }
        })
    });

    // Same workload through a warm plan cache: every statement compiles on
    // the first pass (outside the timed region) and replays from its plan.
    let cache = PlanCache::new();
    for q in &db.questions {
        cache.run(&db.db, &q.sql, opts).unwrap();
    }
    c.bench_function("plan_gold_workload_cached", |b| {
        b.iter(|| {
            for q in &db.questions {
                black_box(cache.run(&db.db, &q.sql, opts).unwrap());
            }
        })
    });

    // Plan construction alone (lex + parse + lower): the one-time cost a
    // cache miss pays before the execute-many phase amortizes it.
    let stmt_sql = &db.questions[0].sql;
    c.bench_function("plan_compile_single", |b| {
        b.iter(|| {
            let fresh = PlanCache::new();
            black_box(fresh.plan(&db.db, stmt_sql).unwrap())
        })
    });

    // Cache hit path alone: key normalization + map lookup + execute.
    c.bench_function("plan_cached_single", |b| {
        b.iter(|| black_box(cache.run(&db.db, stmt_sql, opts).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_plan
}
criterion_main!(benches);
