#![warn(missing_docs)]

//! # snails-data
//!
//! The SNAILS benchmark collections (Artifacts 1, 4, and 6), rebuilt as
//! deterministic generators:
//!
//! * [`databases`] — the nine databases of Table 2 (ASIS, ATBI, CWO, KIS,
//!   NPFM, NTSB, NYSED, PILB, SBOD) with the paper's table/column counts,
//!   per-database naturalness mixes (Figure 5), populated instances, data
//!   dictionaries, and naturalness crosswalks;
//! * [`questions`] — the 503 NL-question / gold-SQL pairs with the Table 3
//!   clause-type distribution, guaranteed non-empty on the instances;
//! * [`schemapile`] — a 22k-schema synthetic corpus matching the aggregate
//!   naturalness statistics the paper reports for SchemaPile (§2.2);
//! * [`spider`] — a small high-naturalness Spider-like collection for the
//!   Figure 13 renaming experiment.
//!
//! Every generator takes explicit seeds; building the same collection twice
//! yields identical bytes.

pub mod builder;
pub mod concept;
pub mod core_schema;
pub mod databases;
pub mod pools;
pub mod questions;
pub mod schemapile;
pub mod spec;
pub mod spider;
pub mod sqlfile;

pub use concept::Concept;
pub use core_schema::CoreHandles;
pub use databases::{build_all, build_database, SnailsDatabase, DATABASE_NAMES};
pub use questions::GoldPair;
pub use spec::DbSpec;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_databases_declared() {
        assert_eq!(DATABASE_NAMES.len(), 9);
    }
}
