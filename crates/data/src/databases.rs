//! The nine SNAILS databases (Artifact 1) assembled end to end.

use crate::builder::{build_schema, BuiltSchema, InstanceLiterals};
use crate::core_schema::CoreHandles;
use crate::questions::{generate_questions, GoldPair};
use crate::spec::{spec, DbSpec, SPECS};
use snails_engine::Database;
use snails_modify::crosswalk::Crosswalk;
use snails_naturalness::Naturalness;

/// The benchmark database names, Table 2 order.
pub const DATABASE_NAMES: [&str; 9] = [
    "ASIS", "ATBI", "CWO", "KIS", "NPFM", "NTSB", "NYSED", "PILB", "SBOD",
];

/// Number of tables included in SBOD prompt schema knowledge after
/// module-based pruning (the paper segments SBOD into Table 4 modules and
/// prunes empty tables to fit context windows).
pub const SBOD_PROMPT_TABLES: usize = 65;

/// A fully assembled SNAILS database: instance, crosswalk, gold pairs.
pub struct SnailsDatabase {
    /// The generation spec (Table 2 row).
    pub spec: DbSpec,
    /// The populated engine database (native identifiers).
    pub db: Database,
    /// Core table handles.
    pub core: CoreHandles,
    /// Artifact 4: the naturalness crosswalk.
    pub crosswalk: Crosswalk,
    /// Generated data dictionary (expander metadata).
    pub data_dictionary: String,
    /// Module assignment (Table 4 support).
    pub modules: Vec<(String, Vec<String>)>,
    /// Artifact 6: NL-question / gold-SQL pairs.
    pub questions: Vec<GoldPair>,
    /// Tables included in prompt schema knowledge (module-pruned for SBOD).
    pub prompt_tables: Vec<String>,
    /// Literal values available in the instance.
    pub literals: InstanceLiterals,
}

impl SnailsDatabase {
    /// Per-occurrence naturalness labels of the schema identifiers (each
    /// table name once, each column occurrence once) — the Figure 5 basis.
    pub fn identifier_levels(&self) -> Vec<(String, Naturalness)> {
        self.db
            .identifier_names()
            .into_iter()
            .map(|name| {
                let level = self
                    .crosswalk
                    .entry(&name)
                    .map(|e| e.native_level)
                    .expect("crosswalk covers schema");
                (name, level)
            })
            .collect()
    }

    /// Combined naturalness of the native schema (Equation 5).
    pub fn combined_naturalness(&self) -> f64 {
        snails_naturalness::combined_naturalness(
            self.identifier_levels().into_iter().map(|(_, l)| l),
        )
    }
}

/// Build one SNAILS database from a spec.
pub fn build_from_spec(s: &DbSpec) -> SnailsDatabase {
    let built = build_schema(s);
    let questions = generate_questions(s, &built);
    let BuiltSchema { db, core, crosswalk, data_dictionary, modules, literals } = built;

    let prompt_tables: Vec<String> = if s.name == "SBOD" {
        db.tables()
            .take(SBOD_PROMPT_TABLES)
            .map(|t| t.schema.name.clone())
            .collect()
    } else {
        db.tables().map(|t| t.schema.name.clone()).collect()
    };

    SnailsDatabase {
        spec: *s,
        db,
        core,
        crosswalk,
        data_dictionary,
        modules,
        questions,
        prompt_tables,
        literals,
    }
}

/// Build a SNAILS database by name (`"ASIS"` … `"SBOD"`).
pub fn build_database(name: &str) -> SnailsDatabase {
    let s = spec(name).unwrap_or_else(|| panic!("unknown SNAILS database {name}"));
    build_from_spec(s)
}

/// Build the full nine-database collection (SBOD last; it is the largest).
pub fn build_all() -> Vec<SnailsDatabase> {
    SPECS.iter().map(build_from_spec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_database_end_to_end() {
        let d = build_database("CWO");
        assert_eq!(d.db.table_count(), 13);
        assert_eq!(d.db.column_count(), 71);
        assert_eq!(d.questions.len(), 40);
        assert_eq!(d.prompt_tables.len(), 13);
        let combined = d.combined_naturalness();
        assert!((combined - 0.84).abs() < 0.07, "combined {combined}");
    }

    #[test]
    fn all_gold_queries_execute_non_empty() {
        // Artifact-6 invariant across the NPS-sized databases (SBOD/NTSB are
        // covered by the integration suite to keep unit runtime low).
        for name in ["ASIS", "ATBI", "KIS", "NPFM", "PILB", "NYSED"] {
            let d = build_database(name);
            for q in &d.questions {
                let rs = snails_engine::run_sql(&d.db, &q.sql)
                    .unwrap_or_else(|e| panic!("{name} q{}: {e}\n{}", q.id, q.sql));
                assert!(!rs.is_empty(), "{name} q{} empty: {}", q.id, q.sql);
            }
        }
    }

    #[test]
    fn identifier_levels_cover_schema() {
        let d = build_database("CWO");
        assert_eq!(
            d.identifier_levels().len(),
            d.db.table_count() + d.db.column_count()
        );
    }
}
