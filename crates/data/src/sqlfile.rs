//! The paper's question-file format (appendix A.2).
//!
//! Artifact 6 ships as executable `.sql` files: the NL question as a SQL
//! comment, the gold query beneath it, a `;` terminator, and optional `HINT`
//! / `NOTE` annotation lines. This module serializes a database's gold pairs
//! to that format and parses it back (the `load_nl_questions.py` equivalent).

use crate::questions::{GoldPair, Template};

/// Serialize gold pairs to the `.sql` question-file format.
pub fn to_sql_file(pairs: &[GoldPair]) -> String {
    let mut out = String::new();
    if let Some(first) = pairs.first() {
        out.push_str(&format!(
            "-- SNAILS NL question / gold query pairs for the {} database.\n\
             -- Format: `-- <id>: <question>` then the gold T-SQL query.\n\n",
            first.database
        ));
    }
    for p in pairs {
        out.push_str(&format!("-- {}: {}\n", p.id, p.question));
        out.push_str(&format!("-- TEMPLATE: {}\n", p.template.label()));
        out.push_str(&p.sql);
        out.push_str("\n;\n\n");
    }
    out
}

/// Parse a question file back into gold pairs.
///
/// Annotation lines (`HINT`, `NOTE`) are tolerated and ignored, as in the
/// paper's loader. Unknown template labels fall back to
/// [`Template::SimpleProjWhere`].
pub fn parse_sql_file(text: &str, database: &str) -> Result<Vec<GoldPair>, String> {
    let mut pairs = Vec::new();
    let mut current_id: Option<usize> = None;
    let mut current_question = String::new();
    let mut current_template = Template::SimpleProjWhere;
    let mut sql_lines: Vec<&str> = Vec::new();

    let flush = |id: Option<usize>,
                     question: &str,
                     template: Template,
                     sql_lines: &mut Vec<&str>,
                     pairs: &mut Vec<GoldPair>|
     -> Result<(), String> {
        let Some(id) = id else { return Ok(()) };
        let sql = sql_lines.join("\n").trim().trim_end_matches(';').trim().to_owned();
        if sql.is_empty() {
            return Err(format!("question {id} has no SQL"));
        }
        snails_sql::parse(&sql).map_err(|e| format!("question {id}: {e}"))?;
        pairs.push(GoldPair {
            id,
            database: database.to_owned(),
            question: question.to_owned(),
            sql,
            template,
        });
        sql_lines.clear();
        Ok(())
    };

    for line in text.lines() {
        let trimmed = line.trim();
        if let Some(comment) = trimmed.strip_prefix("--") {
            let comment = comment.trim();
            if let Some(label) = comment.strip_prefix("TEMPLATE:") {
                current_template = template_from_label(label.trim());
                continue;
            }
            if comment.starts_with("HINT") || comment.starts_with("NOTE") {
                continue;
            }
            // `<id>: <question>` starts a new entry.
            if let Some((id_part, q_part)) = comment.split_once(':') {
                if let Ok(id) = id_part.trim().parse::<usize>() {
                    flush(
                        current_id.take(),
                        &current_question,
                        current_template,
                        &mut sql_lines,
                        &mut pairs,
                    )?;
                    current_id = Some(id);
                    current_question = q_part.trim().to_owned();
                    current_template = Template::SimpleProjWhere;
                }
            }
            continue;
        }
        if trimmed == ";" {
            continue; // terminator; SQL already collected
        }
        if !trimmed.is_empty() && current_id.is_some() {
            sql_lines.push(line);
        }
    }
    flush(current_id, &current_question, current_template, &mut sql_lines, &mut pairs)?;
    Ok(pairs)
}

fn template_from_label(label: &str) -> Template {
    use Template::*;
    const ALL: [Template; 19] = [
        SimpleProjWhere, CountWhere, GroupCount, JoinGroupCount, TopOrderScore, HavingCount,
        NotExists, ExistsWhere, InSubquery, AvgScalarSub, CompositeKeyJoin, JoinSumGroup,
        YearCount, NegWhere, DistinctType, OrderAgg, ThreeJoinWhere, MaxTotal, TopJoinOrder,
    ];
    ALL.into_iter()
        .find(|t| t.label() == label)
        .unwrap_or(SimpleProjWhere)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::databases::build_database;

    #[test]
    fn round_trip_preserves_pairs() {
        let db = build_database("CWO");
        let file = to_sql_file(&db.questions);
        let parsed = parse_sql_file(&file, "CWO").expect("parses");
        assert_eq!(parsed.len(), db.questions.len());
        for (orig, back) in db.questions.iter().zip(&parsed) {
            assert_eq!(orig.id, back.id);
            assert_eq!(orig.question, back.question);
            assert_eq!(orig.template, back.template);
            // SQL is preserved up to normalization.
            assert_eq!(
                snails_sql::normalize(&orig.sql).unwrap(),
                snails_sql::normalize(&back.sql).unwrap()
            );
        }
    }

    #[test]
    fn paper_style_file_parses() {
        // The ASIS example from appendix A.2, with an annotation line.
        let text = "\
-- 8: show how many minnows of each stage were counted at the location ASIS_HERPS_20H
-- HINT: location codes look like ASIS_HERPS_nnX
SELECT stage, sum(cnt) minnowCountSum
FROM tblFieldDataMinnowTrapSurveys
WHERE locationID = 'ASIS_HERPS_20H'
GROUP BY stage
;
";
        let pairs = parse_sql_file(text, "ASIS").unwrap();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].id, 8);
        assert!(pairs[0].question.starts_with("show how many minnows"));
        assert!(pairs[0].sql.contains("GROUP BY stage"));
    }

    #[test]
    fn invalid_sql_is_rejected() {
        let text = "-- 1: broken\nSELECT FROM nothing at all\n;\n";
        assert!(parse_sql_file(text, "X").is_err());
    }

    #[test]
    fn empty_file_yields_no_pairs() {
        assert_eq!(parse_sql_file("", "X").unwrap().len(), 0);
        assert_eq!(parse_sql_file("-- just a comment\n", "X").unwrap().len(), 0);
    }

    #[test]
    fn unknown_template_label_falls_back() {
        assert_eq!(template_from_label("nonsense"), Template::SimpleProjWhere);
        assert_eq!(template_from_label("ck-join"), Template::CompositeKeyJoin);
    }
}
