//! Synthetic SchemaPile corpus (§2.2 / Figure 3 substitute).
//!
//! SchemaPile is a 22k-schema corpus of real-world relational schemas. Its
//! raw dump is not available here, so this module generates a synthetic
//! corpus of per-schema naturalness *profiles* matching every aggregate
//! statistic the paper reports:
//!
//! * 22,000 schemas, ≈198,000 tables, ≈1,000,000 columns;
//! * over 7,500 schemas (32%) with ≥ 10% Least-naturalness identifiers;
//! * over 5,000 schemas with combined naturalness ≤ 0.7, within which Low +
//!   Least identifiers outnumber Regular ones;
//! * overall naturalness proportions close to the SNAILS collection
//!   (Figure 3) and visibly less natural than Spider/BIRD.
//!
//! The module also generates *labeled identifier strings* used as the
//! classifier training collections of appendix B.3 (Collection 1: 1,648;
//! Collection 2: 17,226).

use crate::concept::Concept;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snails_modify::abbrev::RenderStyle;
use snails_naturalness::{LabeledIdentifier, Naturalness, NaturalnessProfile};

/// One synthetic schema's profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemaProfile {
    /// Table count.
    pub tables: usize,
    /// Column count.
    pub columns: usize,
    /// Identifier counts per naturalness category `[Regular, Low, Least]`.
    pub counts: [usize; 3],
}

impl SchemaProfile {
    /// Total identifiers (tables + columns).
    pub fn identifiers(&self) -> usize {
        self.counts.iter().sum()
    }

    /// As a [`NaturalnessProfile`].
    pub fn naturalness(&self) -> NaturalnessProfile {
        NaturalnessProfile { counts: self.counts }
    }
}

/// Schema archetypes: (population share, category proportions).
const ARCHETYPES: [(f64, [f64; 3]); 3] = [
    // Mostly natural (the "reasonable majority of schemas are already
    // natural" population).
    (0.68, [0.86, 0.12, 0.02]),
    // Mixed: noticeable Least share, combined ≈ 0.73.
    (0.09, [0.58, 0.30, 0.12]),
    // Unnatural tail: combined ≈ 0.54, Low+Least outnumber Regular.
    (0.23, [0.32, 0.44, 0.24]),
];

/// Generate the synthetic corpus (`n` schemas; the paper's figure uses
/// 22,000).
pub fn generate_corpus(seed: u64, n: usize) -> Vec<SchemaProfile> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut corpus = Vec::with_capacity(n);
    for _ in 0..n {
        let x: f64 = rng.gen();
        let mut acc = 0.0;
        let mut proportions = ARCHETYPES[0].1;
        for (share, p) in ARCHETYPES {
            acc += share;
            if x < acc {
                proportions = p;
                break;
            }
        }
        // Schema size: ~9 tables, ~5 columns per table (matches the corpus
        // totals of 198k tables / 1M columns over 22k schemas).
        let tables = 2 + rng.gen_range(0..15);
        let columns = tables * (3 + rng.gen_range(0..5));
        let ids = tables + columns;
        // Jitter the proportions slightly per schema.
        let mut jitter = |p: f64| (p + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0);
        let (r, l) = (jitter(proportions[0]), jitter(proportions[1]));
        let total = r + l + (1.0 - proportions[0] - proportions[1]).max(0.0);
        let r = r / total.max(1e-9);
        let l = l / total.max(1e-9);
        let regular = (ids as f64 * r).round() as usize;
        let low = ((ids as f64 * l).round() as usize).min(ids - regular.min(ids));
        let least = ids - regular.min(ids) - low;
        corpus.push(SchemaProfile {
            tables,
            columns,
            counts: [regular.min(ids), low, least],
        });
    }
    corpus
}

/// Aggregate statistics over a corpus (the §2.2 numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusStats {
    /// Number of schemas.
    pub schemas: usize,
    /// Total tables.
    pub tables: usize,
    /// Total columns.
    pub columns: usize,
    /// Schemas with ≥ 10% Least identifiers.
    pub least_heavy: usize,
    /// Schemas with combined naturalness ≤ 0.7.
    pub low_combined: usize,
    /// Among `low_combined` schemas: those where Low+Least > Regular.
    pub low_combined_minority_regular: usize,
    /// Overall identifier proportions `[Regular, Low, Least]`.
    pub proportions: [f64; 3],
}

/// Compute corpus statistics.
pub fn corpus_stats(corpus: &[SchemaProfile]) -> CorpusStats {
    let mut totals = [0usize; 3];
    let mut tables = 0;
    let mut columns = 0;
    let mut least_heavy = 0;
    let mut low_combined = 0;
    let mut minority = 0;
    for s in corpus {
        tables += s.tables;
        columns += s.columns;
        for (total, count) in totals.iter_mut().zip(&s.counts) {
            *total += count;
        }
        let p = s.naturalness();
        if p.proportion(Naturalness::Least) >= 0.10 {
            least_heavy += 1;
        }
        if p.combined() <= 0.7 {
            low_combined += 1;
            if s.counts[1] + s.counts[2] > s.counts[0] {
                minority += 1;
            }
        }
    }
    let total_ids: usize = totals.iter().sum();
    let proportions = if total_ids == 0 {
        [0.0; 3]
    } else {
        [
            totals[0] as f64 / total_ids as f64,
            totals[1] as f64 / total_ids as f64,
            totals[2] as f64 / total_ids as f64,
        ]
    };
    CorpusStats {
        schemas: corpus.len(),
        tables,
        columns,
        least_heavy,
        low_combined,
        low_combined_minority_regular: minority,
        proportions,
    }
}

/// Reference naturalness profiles of the benchmark collections compared in
/// Figure 3 (Spider and BIRD are highly natural; the paper's Davinci-based
/// classification of both found them more natural than any SNAILS schema).
pub fn benchmark_reference_proportions(collection: &str) -> Option<[f64; 3]> {
    match collection {
        "Spider" => Some([0.93, 0.06, 0.01]),
        "Spider-Realistic" => Some([0.90, 0.08, 0.02]),
        "BIRD" => Some([0.88, 0.10, 0.02]),
        _ => None,
    }
}

/// Dictionary-wide word pool for labeled-identifier generation.
fn word_pool() -> Vec<&'static str> {
    let mut words: Vec<&'static str> = snails_lexicon::dictionary()
        .iter()
        .filter(|w| w.len() >= 4 && w.len() <= 12)
        .collect();
    words.sort_unstable();
    words
}

/// Like [`labeled_identifiers`], with adjacent-level label noise.
///
/// The paper's hand labels carry genuine ambiguity: the Davinci-based weak
/// supervision agreed with the final human labels on only 90.1% of
/// Collection 2 (appendix B.3), and the best classifiers plateau near 0.89
/// accuracy (Table 5). `noise` is the probability that an identifier's label
/// is shifted one level toward a neighbour — with ≈0.09, classifier ceilings
/// land where the paper's do.
pub fn labeled_identifiers_noisy(seed: u64, n: usize, noise: f64) -> Vec<LabeledIdentifier> {
    let mut data = labeled_identifiers(seed, n);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4015E);
    for l in &mut data {
        if rng.gen::<f64>() < noise {
            l.label = if rng.gen::<bool>() { l.label.higher() } else { l.label.lower() };
        }
    }
    data
}

/// Generate `n` labeled identifiers (appendix B.3 collections). Identifiers
/// are rendered from random word pairs at a random level in a random style,
/// then labeled with that level — the ground truth the paper obtained by
/// hand-labeling plus weak supervision.
pub fn labeled_identifiers(seed: u64, n: usize) -> Vec<LabeledIdentifier> {
    let pool = word_pool();
    let styles = [
        RenderStyle::Snake,
        RenderStyle::Pascal,
        RenderStyle::Camel,
        RenderStyle::UpperSnake,
        RenderStyle::UpperFlat,
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(n);
    let mut guard = 0usize;
    while out.len() < n {
        guard += 1;
        assert!(guard < n * 50 + 1000, "labeled-identifier pool exhausted");
        let word_count = 1 + rng.gen_range(0..3);
        let words: Vec<&str> = (0..word_count)
            .map(|_| pool[rng.gen_range(0..pool.len())])
            .collect();
        let style = styles[rng.gen_range(0..styles.len())];
        let level = match rng.gen_range(0..10) {
            0..=3 => Naturalness::Regular,
            4..=6 => Naturalness::Low,
            _ => Naturalness::Least,
        };
        let concept = Concept::new(&words, style, level);
        let text = concept.native();
        if text.is_empty() || !seen.insert(text.clone()) {
            continue;
        }
        out.push(LabeledIdentifier::new(text, level));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_matches_paper_aggregates() {
        let corpus = generate_corpus(42, 22_000);
        let stats = corpus_stats(&corpus);
        assert_eq!(stats.schemas, 22_000);
        // ≈198k tables, ≈1M columns (±25%).
        assert!(stats.tables > 150_000 && stats.tables < 250_000, "{}", stats.tables);
        assert!(
            stats.columns > 750_000 && stats.columns < 1_300_000,
            "{}",
            stats.columns
        );
        // "over 7,500 schemas (32 percent)" with ≥10% Least.
        assert!(
            stats.least_heavy >= 6_500 && stats.least_heavy <= 8_800,
            "{}",
            stats.least_heavy
        );
        // "over 5,000 schemas register a combined naturalness of 0.7 or below".
        assert!(
            stats.low_combined >= 5_000 && stats.low_combined <= 8_000,
            "{}",
            stats.low_combined
        );
        // Within that subset, Low+Least outnumber Regular for most schemas.
        assert!(
            stats.low_combined_minority_regular * 10 >= stats.low_combined * 8,
            "{} of {}",
            stats.low_combined_minority_regular,
            stats.low_combined
        );
    }

    #[test]
    fn corpus_is_deterministic() {
        assert_eq!(generate_corpus(7, 100), generate_corpus(7, 100));
        assert_ne!(generate_corpus(7, 100), generate_corpus(8, 100));
    }

    #[test]
    fn overall_proportions_less_natural_than_spider() {
        let stats = corpus_stats(&generate_corpus(42, 5_000));
        let spider = benchmark_reference_proportions("Spider").unwrap();
        assert!(stats.proportions[0] < spider[0]);
        assert!(stats.proportions[2] > spider[2]);
        let sum: f64 = stats.proportions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn labeled_identifiers_have_expected_shape() {
        let data = labeled_identifiers(1, 500);
        assert_eq!(data.len(), 500);
        // All three classes appear.
        for level in Naturalness::ALL {
            assert!(
                data.iter().filter(|l| l.label == level).count() > 50,
                "{level} underrepresented"
            );
        }
        // No duplicates.
        let set: std::collections::HashSet<&str> =
            data.iter().map(|l| l.text.as_str()).collect();
        assert_eq!(set.len(), data.len());
    }

    #[test]
    fn labeled_identifiers_deterministic() {
        assert_eq!(labeled_identifiers(3, 50), labeled_identifiers(3, 50));
    }

    #[test]
    fn mean_token_in_dictionary_monotone_in_level() {
        // The Figure 2 property: more natural levels have higher mean
        // token-in-dictionary. (Individual Regular identifiers can score low
        // — UPPERFLAT multi-word names like CASENO are unsplittable — but the
        // class means must be ordered.)
        let data = labeled_identifiers(2, 900);
        let mean = |level: Naturalness| {
            let scores: Vec<f64> = data
                .iter()
                .filter(|l| l.label == level)
                .map(|l| snails_lexicon::mean_token_in_dictionary(&l.text))
                .collect();
            scores.iter().sum::<f64>() / scores.len() as f64
        };
        let (r, l, s) = (
            mean(Naturalness::Regular),
            mean(Naturalness::Low),
            mean(Naturalness::Least),
        );
        assert!(r > l && l > s, "Regular {r} / Low {l} / Least {s}");
        assert!(r > 0.7, "Regular mean too low: {r}");
    }

    #[test]
    fn unknown_benchmark_reference() {
        assert!(benchmark_reference_proportions("WikiSQL").is_none());
    }
}
