//! Gold NL-question / SQL-query pair generation (Artifact 6).
//!
//! Each database gets its Table 2 question count, drawn from a per-database
//! mix of 19 query templates whose clause profiles reproduce the Table 3
//! distribution (TOP / functions / joins / composite-key joins / EXISTS /
//! subqueries / WHERE / negation / GROUP BY / ORDER BY / HAVING). Template
//! parameters rotate through literal values that are guaranteed present in
//! the generated instance, so every gold query returns a non-empty result —
//! the paper's invariant for Artifact 6.

use crate::builder::BuiltSchema;
use crate::core_schema::CoreRole;
use crate::spec::DbSpec;

/// One NL-question / gold-SQL pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldPair {
    /// Sequential id within the database (1-based).
    pub id: usize,
    /// Database name.
    pub database: String,
    /// The natural-language question.
    pub question: String,
    /// The gold query (native identifiers, T-SQL).
    pub sql: String,
    /// Generating template, for analysis.
    pub template: Template,
}

/// The query templates (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Template {
    SimpleProjWhere,
    CountWhere,
    GroupCount,
    JoinGroupCount,
    TopOrderScore,
    HavingCount,
    NotExists,
    ExistsWhere,
    InSubquery,
    AvgScalarSub,
    CompositeKeyJoin,
    JoinSumGroup,
    YearCount,
    NegWhere,
    DistinctType,
    OrderAgg,
    ThreeJoinWhere,
    MaxTotal,
    TopJoinOrder,
}

impl Template {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Template::SimpleProjWhere => "proj-where",
            Template::CountWhere => "count-where",
            Template::GroupCount => "group-count",
            Template::JoinGroupCount => "join-group-count",
            Template::TopOrderScore => "top-order",
            Template::HavingCount => "having",
            Template::NotExists => "not-exists",
            Template::ExistsWhere => "exists",
            Template::InSubquery => "in-subquery",
            Template::AvgScalarSub => "avg-subquery",
            Template::CompositeKeyJoin => "ck-join",
            Template::JoinSumGroup => "join-sum-group",
            Template::YearCount => "year-count",
            Template::NegWhere => "neg-where",
            Template::DistinctType => "distinct",
            Template::OrderAgg => "order-agg",
            Template::ThreeJoinWhere => "three-join",
            Template::MaxTotal => "max",
            Template::TopJoinOrder => "top-join-order",
        }
    }
}

/// Per-database template mixes, tuned to the Table 3 clause distribution.
pub fn template_mix(db_name: &str) -> Vec<(Template, usize)> {
    use Template::*;
    match db_name {
        "ASIS" => vec![
            (SimpleProjWhere, 6), (CountWhere, 6), (GroupCount, 4), (JoinGroupCount, 5),
            (JoinSumGroup, 4), (YearCount, 4), (MaxTotal, 3), (CompositeKeyJoin, 1),
            (ThreeJoinWhere, 3), (InSubquery, 2), (TopJoinOrder, 1), (DistinctType, 1),
        ],
        "ATBI" => vec![
            (SimpleProjWhere, 5), (CountWhere, 3), (JoinGroupCount, 5), (JoinSumGroup, 4),
            (ThreeJoinWhere, 4), (InSubquery, 3), (AvgScalarSub, 2), (ExistsWhere, 1),
            (NegWhere, 2), (TopOrderScore, 3), (TopJoinOrder, 2), (HavingCount, 1),
            (GroupCount, 2), (OrderAgg, 1), (DistinctType, 1), (MaxTotal, 1),
        ],
        "CWO" => vec![
            (SimpleProjWhere, 6), (CountWhere, 5), (YearCount, 3), (NegWhere, 5),
            (NotExists, 3), (ExistsWhere, 2), (InSubquery, 6), (AvgScalarSub, 3),
            (CompositeKeyJoin, 1), (JoinGroupCount, 2), (HavingCount, 1), (OrderAgg, 2),
            (TopJoinOrder, 1),
        ],
        "KIS" => vec![
            (SimpleProjWhere, 5), (CountWhere, 5), (GroupCount, 3), (JoinGroupCount, 4),
            (JoinSumGroup, 3), (YearCount, 3), (TopOrderScore, 4), (TopJoinOrder, 4),
            (ThreeJoinWhere, 4), (InSubquery, 2), (NegWhere, 1), (MaxTotal, 2),
        ],
        "NPFM" => vec![
            (SimpleProjWhere, 5), (CountWhere, 4), (GroupCount, 3), (JoinGroupCount, 6),
            (JoinSumGroup, 5), (YearCount, 4), (ThreeJoinWhere, 5), (TopOrderScore, 3),
            (TopJoinOrder, 2), (InSubquery, 1), (MaxTotal, 2),
        ],
        "NTSB" => vec![
            (SimpleProjWhere, 6), (CountWhere, 12), (GroupCount, 8), (JoinGroupCount, 6),
            (CompositeKeyJoin, 21), (JoinSumGroup, 4), (YearCount, 8), (NegWhere, 4),
            (InSubquery, 4), (AvgScalarSub, 2), (TopOrderScore, 4), (TopJoinOrder, 4),
            (OrderAgg, 8), (HavingCount, 4), (MaxTotal, 5),
        ],
        "NYSED" => vec![
            (SimpleProjWhere, 8), (CountWhere, 8), (YearCount, 5), (InSubquery, 10),
            (AvgScalarSub, 6), (ExistsWhere, 1), (NegWhere, 1), (JoinGroupCount, 4),
            (CompositeKeyJoin, 4), (TopOrderScore, 6), (TopJoinOrder, 4), (HavingCount, 1),
            (GroupCount, 3), (OrderAgg, 2),
        ],
        "PILB" => vec![
            (SimpleProjWhere, 4), (CountWhere, 3), (GroupCount, 2), (JoinGroupCount, 7),
            (JoinSumGroup, 5), (ThreeJoinWhere, 4), (YearCount, 2), (TopOrderScore, 3),
            (TopJoinOrder, 3), (InSubquery, 3), (HavingCount, 2), (OrderAgg, 2),
        ],
        "SBOD" => vec![
            (SimpleProjWhere, 29), (CountWhere, 14), (JoinGroupCount, 12),
            (JoinSumGroup, 10), (ThreeJoinWhere, 14), (YearCount, 8), (GroupCount, 5),
            (TopJoinOrder, 2), (MaxTotal, 6),
        ],
        other if other.starts_with("SPIDER_") => crate::spider::spider_template_mix(),
        other => panic!("no template mix for database {other}"),
    }
}

/// Generate the gold pairs for one database.
pub fn generate_questions(spec: &DbSpec, built: &BuiltSchema) -> Vec<GoldPair> {
    let mut pairs = Vec::with_capacity(spec.questions);
    let mix = template_mix(spec.name);
    let mut id = 1usize;
    for (template, count) in mix {
        for k in 0..count {
            let (question, sql) = instantiate(template, k, built);
            pairs.push(GoldPair {
                id,
                database: spec.name.to_owned(),
                question,
                sql,
                template,
            });
            id += 1;
        }
    }
    assert_eq!(
        pairs.len(),
        spec.questions,
        "{}: template mix yields {} questions, spec wants {}",
        spec.name,
        pairs.len(),
        spec.questions
    );
    pairs
}

/// Instantiate one template with the `k`-th parameter rotation.
fn instantiate(template: Template, k: usize, built: &BuiltSchema) -> (String, String) {
    use CoreRole as R;
    let c = &built.core;
    let lit = &built.literals;
    // Identifiers are bracket-quoted when they collide with SQL keywords
    // (e.g. a Business `order` table) or otherwise need escaping.
    let n = |r: CoreRole| snails_sql::render::quoted(&c.native(r));
    let p = |r: CoreRole| c.phrase(r);

    let entity = n(R::EntityTable);
    let event = n(R::EventTable);
    let location = n(R::LocationTable);
    let detail = n(R::DetailTable);
    let subdetail = n(R::SubdetailTable);

    let ecode = n(R::EntityCode);
    let ename = n(R::EntityName);
    let ecat = n(R::EntityCategory);
    let escore = n(R::EntityScore);
    let lcode = n(R::LocCode);
    let lname = n(R::LocName);
    let ltype = n(R::LocType);
    let lregion = n(R::LocRegion);
    let evid = n(R::EventId);
    let evdate = n(R::EventDate);
    let evtotal = n(R::EventTotal);
    let evstatus = n(R::EventStatus);
    let dno = n(R::DetailNo);
    let dcond = n(R::DetailCondition);
    let sgrade = n(R::SubGrade);

    let category = &lit.categories[k % lit.categories.len()];
    let status = &lit.statuses[k % lit.statuses.len()];
    let region = &lit.regions[k % lit.regions.len()];
    let loc = &lit.location_codes[k % lit.location_codes.len()];
    let year = lit.years[k % lit.years.len()];
    let condition = &lit.conditions[k % lit.conditions.len()];
    let top_k = 3 + (k % 5);
    let threshold = 5 + (k % 4) as i64;

    match template {
        Template::SimpleProjWhere => {
            if k.is_multiple_of(2) {
                (
                    format!(
                        "List the {} of every {} whose {} is '{category}'.",
                        p(R::EntityName),
                        p(R::EntityTable),
                        p(R::EntityCategory)
                    ),
                    format!("SELECT {ename} FROM {entity} WHERE {ecat} = '{category}'"),
                )
            } else {
                let min_score = 2 + (k % 5) as i64;
                (
                    format!(
                        "List the {} of {}s with a {} greater than {min_score}.",
                        p(R::EntityName),
                        p(R::EntityTable),
                        p(R::EntityScore)
                    ),
                    format!("SELECT {ename} FROM {entity} WHERE {escore} > {min_score}"),
                )
            }
        }
        Template::CountWhere => {
            if k.is_multiple_of(2) {
                (
                    format!(
                        "How many {}s have a {} of '{status}'?",
                        p(R::EventTable),
                        p(R::EventStatus)
                    ),
                    format!("SELECT COUNT(*) FROM {event} WHERE {evstatus} = '{status}'"),
                )
            } else {
                (
                    format!(
                        "How many {}s were recorded at {} {loc}?",
                        p(R::EventTable),
                        p(R::LocCode)
                    ),
                    format!("SELECT COUNT(*) FROM {event} WHERE {lcode} = '{loc}'"),
                )
            }
        }
        Template::GroupCount => {
            let (col, phrase) = if k.is_multiple_of(2) {
                (&evstatus, p(R::EventStatus))
            } else {
                (&lcode, p(R::LocCode))
            };
            (
                format!("Show the number of {}s for each {phrase}.", p(R::EventTable)),
                format!("SELECT {col}, COUNT(*) FROM {event} GROUP BY {col}"),
            )
        }
        Template::JoinGroupCount => (
            format!(
                "For each {}, how many {}s were recorded?",
                p(R::EntityCategory),
                p(R::EventTable)
            ),
            format!(
                "SELECT e.{ecat}, COUNT(*) FROM {entity} e \
                 JOIN {event} o ON e.{ecode} = o.{ecode} GROUP BY e.{ecat}"
            ),
        ),
        Template::TopOrderScore => (
            format!(
                "What are the top {top_k} {}s by {}? Show the {} and the {}.",
                p(R::EntityTable),
                p(R::EntityScore),
                p(R::EntityName),
                p(R::EntityScore)
            ),
            format!(
                "SELECT TOP {top_k} {ename}, {escore} FROM {entity} ORDER BY {escore} DESC"
            ),
        ),
        Template::HavingCount => (
            format!(
                "Which {} values have more than {threshold} {}s? Show the {} and the count.",
                p(R::LocCode),
                p(R::EventTable),
                p(R::LocCode)
            ),
            format!(
                "SELECT {lcode}, COUNT(*) FROM {event} GROUP BY {lcode} \
                 HAVING COUNT(*) > {threshold}"
            ),
        ),
        Template::NotExists => (
            format!(
                "Which {}s have no recorded {}s? Show the {}.",
                p(R::EntityTable),
                p(R::EventTable),
                p(R::EntityName)
            ),
            format!(
                "SELECT {ename} FROM {entity} e WHERE NOT EXISTS \
                 (SELECT {evid} FROM {event} o WHERE o.{ecode} = e.{ecode})"
            ),
        ),
        Template::ExistsWhere => (
            format!(
                "Show the {} of {}s that have at least one {} with {} '{status}'.",
                p(R::EntityName),
                p(R::EntityTable),
                p(R::EventTable),
                p(R::EventStatus)
            ),
            format!(
                "SELECT {ename} FROM {entity} e WHERE EXISTS \
                 (SELECT {evid} FROM {event} o WHERE o.{ecode} = e.{ecode} \
                 AND o.{evstatus} = '{status}')"
            ),
        ),
        Template::InSubquery => (
            format!(
                "List the {} of {}s observed at {} {loc}.",
                p(R::EntityName),
                p(R::EntityTable),
                p(R::LocCode)
            ),
            format!(
                "SELECT {ename} FROM {entity} WHERE {ecode} IN \
                 (SELECT {ecode} FROM {event} WHERE {lcode} = '{loc}')"
            ),
        ),
        Template::AvgScalarSub => (
            format!(
                "Which {}s have a {} above the average {}? Show the {}.",
                p(R::EventTable),
                p(R::EventTotal),
                p(R::EventTotal),
                p(R::EventId)
            ),
            format!(
                "SELECT {evid} FROM {event} WHERE {evtotal} > \
                 (SELECT AVG({evtotal}) FROM {event})"
            ),
        ),
        Template::CompositeKeyJoin => (
            format!(
                "For each {}, count the {} records whose {} is '{condition}'.",
                p(R::SubGrade),
                p(R::SubdetailTable),
                p(R::DetailCondition)
            ),
            format!(
                "SELECT s.{sgrade}, COUNT(*) FROM {detail} d \
                 JOIN {subdetail} s ON d.{evid} = s.{evid} AND d.{dno} = s.{dno} \
                 WHERE d.{dcond} = '{condition}' GROUP BY s.{sgrade}"
            ),
        ),
        Template::JoinSumGroup => (
            format!(
                "What is the total {} per {}?",
                p(R::EventTotal),
                p(R::LocRegion)
            ),
            format!(
                "SELECT l.{lregion}, SUM(o.{evtotal}) FROM {event} o \
                 JOIN {location} l ON o.{lcode} = l.{lcode} GROUP BY l.{lregion}"
            ),
        ),
        Template::YearCount => (
            format!("How many {}s were recorded in {year}?", p(R::EventTable)),
            format!("SELECT COUNT(*) FROM {event} WHERE YEAR({evdate}) = {year}"),
        ),
        Template::NegWhere => (
            format!(
                "Show the {} of {}s whose {} is not '{status}' and whose {} exceeds {threshold}.",
                p(R::EventId),
                p(R::EventTable),
                p(R::EventStatus),
                p(R::EventTotal)
            ),
            format!(
                "SELECT {evid} FROM {event} WHERE {evstatus} <> '{status}' \
                 AND {evtotal} > {threshold}"
            ),
        ),
        Template::DistinctType => (
            format!(
                "What distinct {} values appear among the {}s?",
                p(R::LocType),
                p(R::LocationTable)
            ),
            format!("SELECT DISTINCT {ltype} FROM {location}"),
        ),
        Template::OrderAgg => (
            format!(
                "Rank each {} by its total {}, highest first.",
                p(R::LocCode),
                p(R::EventTotal)
            ),
            format!(
                "SELECT {lcode}, SUM({evtotal}) AS total_sum FROM {event} \
                 GROUP BY {lcode} ORDER BY total_sum DESC"
            ),
        ),
        Template::ThreeJoinWhere => (
            format!(
                "Show the {} and {} for {}s recorded in the {region} {}.",
                p(R::EntityName),
                p(R::LocName),
                p(R::EventTable),
                p(R::LocRegion)
            ),
            format!(
                "SELECT e.{ename}, l.{lname} FROM {event} o \
                 JOIN {entity} e ON o.{ecode} = e.{ecode} \
                 JOIN {location} l ON o.{lcode} = l.{lcode} \
                 WHERE l.{lregion} = '{region}'"
            ),
        ),
        Template::MaxTotal => {
            let (func, word) = match k % 3 {
                0 => ("MAX", "largest"),
                1 => ("MIN", "smallest"),
                _ => ("AVG", "average"),
            };
            (
                format!(
                    "What is the {word} {} across all {}s?",
                    p(R::EventTotal),
                    p(R::EventTable)
                ),
                format!("SELECT {func}({evtotal}) FROM {event}"),
            )
        }
        Template::TopJoinOrder => (
            format!(
                "Show the top {top_k} {}s by {} in the {region} {}, with their {}.",
                p(R::EventTable),
                p(R::EventTotal),
                p(R::LocRegion),
                p(R::EventId)
            ),
            format!(
                "SELECT TOP {top_k} o.{evid}, o.{evtotal} FROM {event} o \
                 JOIN {location} l ON o.{lcode} = l.{lcode} \
                 WHERE l.{lregion} = '{region}' ORDER BY o.{evtotal} DESC"
            ),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_schema;
    use crate::spec::spec;

    fn pairs_for(name: &str) -> (Vec<GoldPair>, crate::builder::BuiltSchema) {
        let s = spec(name).unwrap();
        let built = build_schema(s);
        let pairs = generate_questions(s, &built);
        (pairs, built)
    }

    #[test]
    fn question_counts_match_spec() {
        for name in ["ASIS", "CWO"] {
            let s = spec(name).unwrap();
            let (pairs, _) = pairs_for(name);
            assert_eq!(pairs.len(), s.questions);
            assert_eq!(pairs[0].id, 1);
            assert_eq!(pairs.last().unwrap().id, s.questions);
        }
    }

    #[test]
    fn all_mixes_sum_to_spec_counts() {
        for s in &crate::spec::SPECS {
            let total: usize = template_mix(s.name).iter().map(|(_, n)| n).sum();
            assert_eq!(total, s.questions, "{}", s.name);
        }
    }

    #[test]
    fn gold_queries_parse() {
        let (pairs, _) = pairs_for("ASIS");
        for p in &pairs {
            snails_sql::parse(&p.sql)
                .unwrap_or_else(|e| panic!("{} q{}: {e}\n{}", p.database, p.id, p.sql));
        }
    }

    #[test]
    fn gold_queries_return_rows() {
        // The paper's Artifact-6 invariant: all gold queries return valid
        // non-null results from the target databases.
        let (pairs, built) = pairs_for("CWO");
        for p in &pairs {
            let rs = snails_engine::run_sql(&built.db, &p.sql)
                .unwrap_or_else(|e| panic!("{} q{}: {e}\n{}", p.database, p.id, p.sql));
            assert!(!rs.is_empty(), "{} q{} empty: {}", p.database, p.id, p.sql);
        }
    }

    #[test]
    fn questions_are_nonempty_text() {
        let (pairs, _) = pairs_for("ASIS");
        for p in &pairs {
            assert!(p.question.len() > 10);
            assert!(p.question.ends_with('?') || p.question.ends_with('.'));
        }
    }

    #[test]
    fn parameter_rotation_varies_questions() {
        let (pairs, _) = pairs_for("ASIS");
        let texts: std::collections::HashSet<&str> =
            pairs.iter().map(|p| p.question.as_str()).collect();
        // Most questions are distinct.
        assert!(texts.len() * 10 >= pairs.len() * 7, "{} / {}", texts.len(), pairs.len());
    }

    #[test]
    fn composite_key_join_has_two_equalities() {
        let (pairs, _) = pairs_for("CWO");
        let ck = pairs
            .iter()
            .find(|p| p.template == Template::CompositeKeyJoin)
            .expect("CWO mix has a CK join");
        let profile = snails_sql::clause_profile(&snails_sql::parse(&ck.sql).unwrap());
        assert_eq!(profile.composite_key_joins, 1);
    }

    #[test]
    fn template_labels_unique() {
        use Template::*;
        let all = [
            SimpleProjWhere, CountWhere, GroupCount, JoinGroupCount, TopOrderScore,
            HavingCount, NotExists, ExistsWhere, InSubquery, AvgScalarSub,
            CompositeKeyJoin, JoinSumGroup, YearCount, NegWhere, DistinctType, OrderAgg,
            ThreeJoinWhere, MaxTotal, TopJoinOrder,
        ];
        let labels: std::collections::HashSet<_> = all.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), all.len());
    }
}
