//! Domain vocabulary pools.
//!
//! Each SNAILS database draws its identifier concepts, entity names, and
//! literal values from a domain pool. Every pool word is in the embedded
//! dictionary, so Regular renderings are fully natural by construction.

use snails_modify::abbrev::RenderStyle;

/// Application domains of the nine databases (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// ASIS — amphibian and reptile inventory.
    Herps,
    /// ATBI — plot vegetation monitoring.
    Vegetation,
    /// CWO — wildlife observations.
    Wildlife,
    /// KIS — exotic and invasive plants.
    Invasive,
    /// NPFM — fire management flora.
    Fire,
    /// PILB — landbird monitoring.
    Birds,
    /// NTSB — crash investigation sampling.
    Transport,
    /// NYSED — school report cards.
    Education,
    /// SBOD — enterprise resource planning.
    Business,
}

/// Static vocabulary for one domain.
#[derive(Debug, Clone, Copy)]
pub struct DomainVocab {
    /// Nouns used to build filler table names.
    pub table_nouns: &'static [&'static str],
    /// Suffix words combined with nouns for filler tables.
    pub table_suffixes: &'static [&'static str],
    /// Modifier words for three-word table names (large schemas).
    pub table_modifiers: &'static [&'static str],
    /// Attribute words for filler columns.
    pub column_attrs: &'static [&'static str],
    /// Qualifier words paired with attributes for two-word columns.
    pub column_qualifiers: &'static [&'static str],
    /// Category literal values (entity classes).
    pub categories: &'static [&'static str],
    /// Status literal values.
    pub statuses: &'static [&'static str],
    /// Region / area literal values.
    pub regions: &'static [&'static str],
    /// Entity display names (species, vehicle makes, schools, products).
    pub entity_names: &'static [&'static str],
    /// The dominant identifier style of the source schema.
    pub style: RenderStyle,
    /// Domain nouns for NL phrasing: (entity, event, location, detail, subdetail).
    pub nouns: CoreNouns,
}

/// The NL nouns for the core star schema.
#[derive(Debug, Clone, Copy)]
pub struct CoreNouns {
    /// What the entity table holds ("species", "vehicle", "school").
    pub entity: &'static str,
    /// What the event table holds ("observation", "crash", "assessment").
    pub event: &'static str,
    /// What the location table holds ("site", "region", "district").
    pub location: &'static str,
    /// What the detail table holds ("sample", "unit", "enrollment").
    pub detail: &'static str,
    /// What the subdetail table holds ("measurement", "occupant", "result").
    pub subdetail: &'static str,
}

const NATURE_ATTRS: &[&str] = &[
    "code", "name", "date", "status", "type", "count", "total", "value", "note", "source",
    "method", "observer", "weather", "temperature", "humidity", "elevation", "slope",
    "aspect", "canopy", "cover", "density", "height", "width", "length", "weight", "age",
    "stage", "condition", "quality", "area", "radius", "depth", "moisture", "substrate",
    "habitat", "season", "visit", "duration", "frequency", "comment",
];

const NATURE_QUALIFIERS: &[&str] = &[
    "start", "end", "mean", "maximum", "minimum", "plot", "sample", "survey", "field",
    "record", "entry", "ground",
];

const NATURE_REGIONS: &[&str] =
    &["North Ridge", "South Marsh", "East Shore", "West Valley", "Central Plain"];

fn nature_vocab(nouns: CoreNouns, style: RenderStyle, entity_names: &'static [&'static str],
    categories: &'static [&'static str], table_nouns: &'static [&'static str]) -> DomainVocab {
    DomainVocab {
        table_nouns,
        table_suffixes: &[
            "survey", "event", "log", "history", "lookup", "detail", "summary", "archive",
            "type", "location", "result", "record",
        ],
        table_modifiers: &["field", "annual", "master", "legacy"],
        column_attrs: NATURE_ATTRS,
        column_qualifiers: NATURE_QUALIFIERS,
        categories,
        statuses: &["active", "inactive", "verified", "pending"],
        regions: NATURE_REGIONS,
        entity_names,
        style,
        nouns,
    }
}

impl Domain {
    /// The vocabulary for this domain.
    pub fn vocab(&self) -> DomainVocab {
        match self {
            Domain::Herps => nature_vocab(
                CoreNouns {
                    entity: "species",
                    event: "observation",
                    location: "site",
                    detail: "trap check",
                    subdetail: "capture",
                },
                RenderStyle::Pascal,
                &["Fowler Toad", "Green Frog", "Box Turtle", "Black Racer", "Spring Peeper",
                  "Snapping Turtle", "Red Salamander", "Garter Snake"],
                &["frog", "toad", "turtle", "snake", "salamander", "lizard"],
                &["frog", "toad", "turtle", "snake", "trap", "pond", "marsh", "beach",
                  "transect", "weather", "observer", "protocol", "permit", "habitat"],
            ),
            Domain::Vegetation => nature_vocab(
                CoreNouns {
                    entity: "plant species",
                    event: "plot visit",
                    location: "plot",
                    detail: "stem tally",
                    subdetail: "measurement",
                },
                RenderStyle::Snake,
                &["Red Maple", "White Oak", "Eastern Hemlock", "Fraser Fir", "Yellow Birch",
                  "Mountain Laurel", "Tulip Poplar", "Red Spruce"],
                &["tree", "shrub", "herb", "vine", "fern", "moss"],
                &["overstory", "understory", "seedling", "sapling", "deadwood", "soil",
                  "litter", "canopy", "module", "quadrant", "transect", "taxonomy"],
            ),
            Domain::Wildlife => nature_vocab(
                CoreNouns {
                    entity: "species",
                    event: "sighting",
                    location: "area",
                    detail: "group",
                    subdetail: "individual",
                },
                RenderStyle::Snake,
                &["Mule Deer", "Coyote", "Badger", "Bobcat", "Pronghorn", "Elk",
                  "Ground Squirrel", "Red Fox"],
                &["mammal", "bird", "reptile", "amphibian", "insect", "fish"],
                &["mammal", "bird", "reptile", "visitor", "ranger", "trail", "monument",
                  "observer", "camera", "season", "permit"],
            ),
            Domain::Invasive => nature_vocab(
                CoreNouns {
                    entity: "invasive plant",
                    event: "monitoring event",
                    location: "management unit",
                    detail: "treatment",
                    subdetail: "assessment",
                },
                RenderStyle::Pascal,
                &["Cheatgrass", "Yellow Starthistle", "Scotch Broom", "Knapweed",
                  "Canada Thistle", "Medusahead", "Dyers Woad", "Leafy Spurge"],
                &["grass", "forb", "shrub", "tree", "aquatic", "vine"],
                &["infestation", "treatment", "herbicide", "crew", "project", "zone",
                  "watershed", "species", "survey", "cover"],
            ),
            Domain::Fire => nature_vocab(
                CoreNouns {
                    entity: "fuel type",
                    event: "burn unit visit",
                    location: "burn unit",
                    detail: "fuel load sample",
                    subdetail: "reading",
                },
                RenderStyle::Snake,
                &["Mixed Grass", "Ponderosa Litter", "Shrub Fuel", "Timber Understory",
                  "Slash Blowdown", "Short Grass", "Brush Fuel", "Hardwood Litter"],
                &["grass", "litter", "shrub", "timber", "slash", "duff"],
                &["fire", "fuel", "burn", "plot", "crew", "weather", "smoke", "overstory",
                  "grass", "monitoring", "treatment"],
            ),
            Domain::Birds => nature_vocab(
                CoreNouns {
                    entity: "landbird species",
                    event: "point count",
                    location: "station",
                    detail: "detection",
                    subdetail: "distance record",
                },
                RenderStyle::Pascal,
                &["Apapane", "Hawaii Amakihi", "Warbling Silverbill", "Zebra Dove",
                  "Japanese Whiteeye", "Northern Cardinal", "House Finch", "Iiwi"],
                &["forest", "shore", "wetland", "grassland", "urban", "alpine"],
                &["transect", "station", "observer", "weather", "island", "habitat",
                  "survey", "detection", "protocol", "training"],
            ),
            Domain::Transport => DomainVocab {
                table_nouns: &[
                    "crash", "vehicle", "occupant", "driver", "passenger", "injury",
                    "airbag", "seat", "belt", "wheel", "engine", "brake", "tire", "road",
                    "weather", "event", "damage", "tow", "inspection", "violation",
                ],
                table_suffixes: &[
                    "detail", "history", "lookup", "record", "summary", "code", "type",
                    "factor", "report", "condition",
                ],
                table_modifiers: &["general", "sample", "annual", "federal"],
                column_attrs: &[
                    "number", "code", "date", "year", "make", "model", "type", "severity",
                    "speed", "weight", "age", "sex", "position", "restraint", "deployment",
                    "damage", "direction", "angle", "surface", "lighting", "weather",
                    "count", "status", "region", "state", "county", "route", "lane",
                    "occupancy", "mileage", "condition", "source", "factor", "outcome",
                ],
                column_qualifiers: &[
                    "case", "unit", "person", "event", "vehicle", "crash", "maximum",
                    "initial", "final", "posted", "reported", "primary",
                ],
                categories: &["passenger car", "pickup", "van", "motorcycle", "truck", "bus"],
                statuses: &["minor", "moderate", "serious", "fatal"],
                regions: &["Northeast", "South", "Midwest", "West", "Pacific"],
                entity_names: &["Sedan LX", "Pickup 1500", "Minivan GL", "Cruiser 750",
                  "Boxtruck 26", "Transit 350", "Coupe RS", "Wagon SE"],
                style: RenderStyle::UpperFlat,
                nouns: CoreNouns {
                    entity: "vehicle model",
                    event: "crash case",
                    location: "region",
                    detail: "vehicle unit",
                    subdetail: "occupant",
                },
            },
            Domain::Education => DomainVocab {
                table_nouns: &[
                    "school", "district", "student", "teacher", "grade", "exam", "course",
                    "enrollment", "attendance", "graduation", "funding", "staff",
                    "assessment", "program", "cohort", "suspension",
                ],
                table_suffixes: &[
                    "summary", "detail", "history", "lookup", "result", "report", "rate",
                    "count", "demographic", "annual",
                ],
                table_modifiers: &["state", "county", "public", "annual"],
                column_attrs: &[
                    "code", "name", "year", "grade", "level", "score", "rate", "count",
                    "percent", "total", "number", "status", "type", "category", "subject",
                    "proficiency", "enrollment", "attendance", "graduation", "funding",
                    "salary", "experience", "ratio", "rank", "region", "county",
                ],
                column_qualifiers: &[
                    "school", "district", "student", "teacher", "exam", "state", "mean",
                    "reported", "weighted", "annual", "cohort", "subgroup",
                ],
                categories: &["elementary", "middle", "high", "charter", "magnet", "special"],
                statuses: &["good standing", "focus", "priority", "closed"],
                regions: &["Capital", "Western", "Central", "Hudson", "Long Island"],
                entity_names: &["Lincoln Elementary", "Washington Middle", "Roosevelt High",
                  "Franklin Academy", "Jefferson Prep", "Madison Charter", "Monroe School",
                  "Adams Central"],
                style: RenderStyle::UpperSnake,
                nouns: CoreNouns {
                    entity: "school",
                    event: "assessment",
                    location: "district",
                    detail: "subgroup result",
                    subdetail: "grade result",
                },
            },
            Domain::Business => DomainVocab {
                table_nouns: &[
                    "order", "invoice", "customer", "vendor", "item", "warehouse",
                    "payment", "delivery", "account", "journal", "budget", "employee",
                    "team", "contract", "quote", "return", "credit", "price", "discount",
                    "tax", "currency", "bank", "asset", "project", "service", "campaign",
                    "lead", "opportunity", "shipment", "batch",
                ],
                table_suffixes: &[
                    "header", "line", "detail", "history", "type", "group", "master",
                    "log", "setup", "link", "code", "entry", "map", "status", "balance",
                ],
                table_modifiers: &[
                    "draft", "posted", "open", "closed", "archive", "periodic", "monthly",
                    "annual", "internal", "external", "primary", "secondary",
                ],
                column_attrs: &[
                    "code", "name", "date", "number", "amount", "total", "balance",
                    "status", "type", "group", "currency", "rate", "price", "quantity",
                    "discount", "tax", "cost", "margin", "weight", "volume", "address",
                    "city", "country", "phone", "email", "remark", "reference", "series",
                    "branch", "project", "account", "period", "entry", "line", "document",
                ],
                column_qualifiers: &[
                    "document", "posting", "due", "delivery", "base", "gross", "net",
                    "open", "paid", "foreign", "local", "header",
                ],
                categories: &["hardware", "software", "service", "material", "labor", "freight"],
                statuses: &["open", "closed", "canceled", "draft"],
                regions: &["Americas", "Europe", "Asia Pacific", "Middle East", "Africa"],
                entity_names: &["Office Desk 200", "Server Rack 42U", "Laptop Pro 15",
                  "Cable Bundle", "Support Plan Gold", "Printer Jet 9", "Monitor 27",
                  "Dock Station"],
                style: RenderStyle::UpperFlat,
                nouns: CoreNouns {
                    entity: "item",
                    event: "order",
                    location: "warehouse",
                    detail: "order line",
                    subdetail: "allocation",
                },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snails_lexicon::is_dictionary_word;

    const ALL: [Domain; 9] = [
        Domain::Herps,
        Domain::Vegetation,
        Domain::Wildlife,
        Domain::Invasive,
        Domain::Fire,
        Domain::Birds,
        Domain::Transport,
        Domain::Education,
        Domain::Business,
    ];

    #[test]
    fn all_pool_words_in_dictionary() {
        for d in ALL {
            let v = d.vocab();
            for list in [v.table_nouns, v.table_suffixes, v.table_modifiers, v.column_attrs, v.column_qualifiers] {
                for w in list {
                    assert!(is_dictionary_word(w), "{d:?}: pool word not in dictionary: {w}");
                }
            }
            for n in [v.nouns.entity, v.nouns.event, v.nouns.location, v.nouns.detail, v.nouns.subdetail] {
                for w in n.split(' ') {
                    assert!(is_dictionary_word(w), "{d:?}: core noun word not in dictionary: {w}");
                }
            }
        }
    }

    #[test]
    fn pools_are_large_enough() {
        for d in ALL {
            let v = d.vocab();
            assert!(v.table_nouns.len() >= 8, "{d:?}");
            assert!(v.column_attrs.len() >= 20, "{d:?}");
            assert!(v.entity_names.len() >= 8, "{d:?}");
            assert!(v.categories.len() >= 4, "{d:?}");
        }
    }

    #[test]
    fn business_pool_supports_sbod_scale() {
        let v = Domain::Business.vocab();
        let capacity = v.table_nouns.len() * v.table_suffixes.len() * (1 + v.table_modifiers.len());
        assert!(capacity >= 2600, "only {capacity} filler table names available");
    }
}
