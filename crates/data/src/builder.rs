//! Database construction: core tables, filler schema, rows, crosswalk, and
//! the data dictionary.

use crate::concept::Concept;
use crate::core_schema::{CoreHandles, CoreRole};
use crate::pools::DomainVocab;
use crate::spec::DbSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snails_engine::{DataType, Database, TableSchema, Value};
use snails_modify::crosswalk::{Crosswalk, CrosswalkEntry};
use snails_naturalness::Naturalness;
use std::collections::HashMap;

/// Number of core columns (5 core tables).
pub const CORE_COLUMNS: usize = 23;
/// Number of core tables.
pub const CORE_TABLES: usize = 5;

/// Row-count profile of the populated core instance.
pub const ENTITY_ROWS: usize = 16;
/// See [`ENTITY_ROWS`].
pub const EVENT_ROWS: usize = 240;

/// Everything the builder produces besides questions.
pub struct BuiltSchema {
    /// The populated engine database (native identifiers).
    pub db: Database,
    /// Core table/column handles.
    pub core: CoreHandles,
    /// The Artifact-4 crosswalk over every schema identifier.
    pub crosswalk: Crosswalk,
    /// Generated data dictionary text (expander metadata).
    pub data_dictionary: String,
    /// Module assignment per table (used by SBOD; single module otherwise).
    pub modules: Vec<(String, Vec<String>)>,
    /// Literal values present in the instance, for gold-query parameters.
    pub literals: InstanceLiterals,
}

/// Literal values guaranteed present in the generated instance.
#[derive(Debug, Clone)]
pub struct InstanceLiterals {
    /// Entity categories in use.
    pub categories: Vec<String>,
    /// Event statuses in use.
    pub statuses: Vec<String>,
    /// Location regions in use.
    pub regions: Vec<String>,
    /// Location codes in use.
    pub location_codes: Vec<String>,
    /// Entity codes with at least one event.
    pub active_entity_codes: Vec<String>,
    /// Years covered by event dates.
    pub years: Vec<i64>,
    /// Detail conditions in use.
    pub conditions: Vec<String>,
    /// Subdetail grades in use.
    pub grades: Vec<String>,
}

/// Draw a naturalness level from Figure 5 proportions.
pub fn sample_level(rng: &mut StdRng, proportions: [f64; 3]) -> Naturalness {
    let x: f64 = rng.gen();
    if x < proportions[0] {
        Naturalness::Regular
    } else if x < proportions[0] + proportions[1] {
        Naturalness::Low
    } else {
        Naturalness::Least
    }
}

/// Build the full schema + instance for a spec.
pub fn build_schema(spec: &DbSpec) -> BuiltSchema {
    let vocab = spec.domain.vocab();
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // --- Core concepts -----------------------------------------------------
    let proportions = spec.proportions;
    let core = {
        let rng = &mut rng;
        CoreHandles::build(&vocab, move || sample_level(rng, proportions))
    };

    // Concept registry: native name → concept (collision-safe generation).
    let mut registry: HashMap<String, Concept> = HashMap::new();
    let mut entries: Vec<CrosswalkEntry> = Vec::new();
    let register = |c: &Concept, is_table: bool, entries: &mut Vec<CrosswalkEntry>,
                        registry: &mut HashMap<String, Concept>|
     -> bool {
        let native = c.native();
        match registry.get(&native.to_ascii_uppercase()) {
            Some(existing) => existing.words == c.words,
            None => {
                registry.insert(native.to_ascii_uppercase(), c.clone());
                entries.push(c.crosswalk_entry(is_table));
                true
            }
        }
    };

    for (role, concept) in core.distinct_concepts() {
        register(concept, role.is_table(), &mut entries, &mut registry);
    }

    // --- Core table schemas -------------------------------------------------
    let mut db = Database::new(spec.name);
    let n = |r: CoreRole| core.native(r);
    db.create_table(
        TableSchema::new(&n(CoreRole::EntityTable))
            .column(&n(CoreRole::EntityCode), DataType::Varchar)
            .column(&n(CoreRole::EntityName), DataType::Varchar)
            .column(&n(CoreRole::EntityCategory), DataType::Varchar)
            .column(&n(CoreRole::EntityScore), DataType::Float),
    );
    db.create_table(
        TableSchema::new(&n(CoreRole::LocationTable))
            .column(&n(CoreRole::LocCode), DataType::Varchar)
            .column(&n(CoreRole::LocName), DataType::Varchar)
            .column(&n(CoreRole::LocType), DataType::Varchar)
            .column(&n(CoreRole::LocRegion), DataType::Varchar),
    );
    db.create_table(
        TableSchema::new(&n(CoreRole::EventTable))
            .column(&n(CoreRole::EventId), DataType::Int)
            .column(&n(CoreRole::EventEntityCode), DataType::Varchar)
            .column(&n(CoreRole::EventLocCode), DataType::Varchar)
            .column(&n(CoreRole::EventDate), DataType::Date)
            .column(&n(CoreRole::EventTotal), DataType::Int)
            .column(&n(CoreRole::EventStatus), DataType::Varchar),
    );
    db.create_table(
        TableSchema::new(&n(CoreRole::DetailTable))
            .column(&n(CoreRole::DetailEventId), DataType::Int)
            .column(&n(CoreRole::DetailNo), DataType::Int)
            .column(&n(CoreRole::DetailAmount), DataType::Int)
            .column(&n(CoreRole::DetailCondition), DataType::Varchar),
    );
    db.create_table(
        TableSchema::new(&n(CoreRole::SubdetailTable))
            .column(&n(CoreRole::SubEventId), DataType::Int)
            .column(&n(CoreRole::SubDetailNo), DataType::Int)
            .column(&n(CoreRole::SubSeq), DataType::Int)
            .column(&n(CoreRole::SubValue), DataType::Float)
            .column(&n(CoreRole::SubGrade), DataType::Varchar),
    );

    // --- Filler tables -------------------------------------------------------
    let filler_tables = spec.tables.saturating_sub(CORE_TABLES);
    let filler_columns = spec.columns.saturating_sub(CORE_COLUMNS);
    let per_table = filler_columns.checked_div(filler_tables).unwrap_or(0);
    let mut remainder = filler_columns.saturating_sub(per_table * filler_tables);

    // Candidate filler table names: noun×suffix, then modifier×noun×suffix.
    let mut table_candidates: Vec<Vec<&str>> = Vec::new();
    for noun in vocab.table_nouns {
        for suffix in vocab.table_suffixes {
            table_candidates.push(vec![noun, suffix]);
        }
    }
    for modifier in vocab.table_modifiers {
        for noun in vocab.table_nouns {
            for suffix in vocab.table_suffixes {
                table_candidates.push(vec![modifier, noun, suffix]);
            }
        }
    }

    let mut created = 0usize;
    let mut candidate_iter = table_candidates.iter();
    while created < filler_tables {
        let Some(words) = candidate_iter.next() else {
            panic!(
                "{}: filler table pool exhausted at {created}/{filler_tables}",
                spec.name
            );
        };
        let level = sample_level(&mut rng, proportions);
        // §6 "other naming patterns": NPS-style schemas occasionally embed
        // the word `table` in table names (`table_employee`, `tbl_...`) — a
        // pattern the paper flags because some LLMs drop the word during
        // inference.
        let mut words_vec: Vec<&str> = words.clone();
        if matches!(
            spec.domain,
            crate::pools::Domain::Herps
                | crate::pools::Domain::Vegetation
                | crate::pools::Domain::Wildlife
                | crate::pools::Domain::Invasive
                | crate::pools::Domain::Fire
                | crate::pools::Domain::Birds
        ) && words_vec.len() == 2
            && rng.gen::<f64>() < 0.22
        {
            words_vec.insert(0, "table");
        }
        let concept = Concept::new(&words_vec, vocab.style, level);
        if !register(&concept, true, &mut entries, &mut registry) {
            continue;
        }
        let native_table = concept.native();
        // If the generated table name collides with a core table, skip.
        if db.table(&native_table).is_some() {
            continue;
        }

        let mut cols = per_table;
        if remainder > 0 {
            cols += 1;
            remainder -= 1;
        }
        let mut schema = TableSchema::new(&native_table);
        let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut attr_idx = rng.gen_range(0..vocab.column_attrs.len());
        let mut qual_idx = rng.gen_range(0..vocab.column_qualifiers.len());
        let mut attempts = 0usize;
        while schema.columns.len() < cols {
            attempts += 1;
            assert!(
                attempts < 10_000,
                "{}: column pool exhausted for table {native_table}",
                spec.name
            );
            let attr = vocab.column_attrs[attr_idx % vocab.column_attrs.len()];
            let words: Vec<&str> = if schema.columns.len() < vocab.column_attrs.len() / 2 {
                vec![attr]
            } else {
                let qual = vocab.column_qualifiers[qual_idx % vocab.column_qualifiers.len()];
                qual_idx += 1;
                vec![qual, attr]
            };
            attr_idx += 1;
            let level = sample_level(&mut rng, proportions);
            // §3.1: a sliver of real-world identifiers contain whitespace
            // (the paper found 148 of ~19,000, <1%); they exercise the
            // bracket-quoting path end to end.
            let style = if rng.gen::<f64>() < 0.008 {
                snails_modify::abbrev::RenderStyle::Spaced
            } else {
                vocab.style
            };
            let concept = Concept::new(&words, style, level);
            let native = concept.native();
            if !used.insert(native.to_ascii_uppercase()) {
                continue;
            }
            if !register(&concept, false, &mut entries, &mut registry) {
                continue;
            }
            let ty = match attr {
                "date" | "year" => DataType::Date,
                "count" | "total" | "number" | "quantity" | "age" => DataType::Int,
                "value" | "amount" | "rate" | "score" | "percent" | "price" => DataType::Float,
                _ => DataType::Varchar,
            };
            schema = schema.column(&native, ty);
        }
        db.create_table(schema);
        created += 1;
    }

    // --- Rows ---------------------------------------------------------------
    let literals = populate_core(&mut db, &core, &vocab, &mut rng);

    // --- Modules (Table 4 support) -------------------------------------------
    let modules = assign_modules(spec, &db, &core);

    // --- Data dictionary -----------------------------------------------------
    let data_dictionary = build_data_dictionary(spec, &entries, &registry);

    BuiltSchema {
        db,
        core,
        crosswalk: Crosswalk::new(entries),
        data_dictionary,
        modules,
        literals,
    }
}

fn populate_core(
    db: &mut Database,
    core: &CoreHandles,
    vocab: &DomainVocab,
    rng: &mut StdRng,
) -> InstanceLiterals {
    let entity_table = core.native(CoreRole::EntityTable);
    let location_table = core.native(CoreRole::LocationTable);
    let event_table = core.native(CoreRole::EventTable);
    let detail_table = core.native(CoreRole::DetailTable);
    let subdetail_table = core.native(CoreRole::SubdetailTable);

    // Entities: pool names extended with numbered variants; the final two
    // entities never appear in events (NOT EXISTS support).
    let mut entity_codes = Vec::new();
    for i in 0..ENTITY_ROWS {
        let code = format!("E{:02}", i + 1);
        let name = if i < vocab.entity_names.len() {
            vocab.entity_names[i].to_owned()
        } else {
            format!("{} {}", vocab.entity_names[i % vocab.entity_names.len()], i + 1)
        };
        let category = vocab.categories[i % vocab.categories.len()].to_owned();
        let score = 1.0 + (i as f64 * 7.3) % 9.0;
        db.insert(
            &entity_table,
            vec![
                Value::from(code.clone()),
                Value::from(name),
                Value::from(category),
                Value::Float((score * 10.0).round() / 10.0),
            ],
        )
        .expect("entity arity");
        entity_codes.push(code);
    }

    // Locations: 12 sites cycling through every region (so every region
    // literal used by the question templates has locations and events).
    let loc_types = ["field", "forest", "shore", "ridge"];
    let mut location_codes = Vec::new();
    for i in 0..12usize {
        let region = vocab.regions[i % vocab.regions.len()];
        let ty = loc_types[(i / vocab.regions.len()) % loc_types.len()];
        let code = format!("L{:02}", i + 1);
        db.insert(
            &location_table,
            vec![
                Value::from(code.clone()),
                Value::from(format!("{region} {ty}")),
                Value::from(ty),
                Value::from(region),
            ],
        )
        .expect("location arity");
        location_codes.push(code);
    }

    // Events: round-robin over entities (minus the NOT EXISTS holdouts),
    // locations, statuses, and years, so every literal combination occurs.
    let active_entities = &entity_codes[..entity_codes.len() - 2];
    let years: Vec<i64> = vec![2019, 2020, 2021, 2022];
    for i in 0..EVENT_ROWS {
        let id = 1001 + i as i64;
        let entity = &active_entities[i % active_entities.len()];
        let loc = &location_codes[i % location_codes.len()];
        let year = years[i % years.len()];
        let month = 1 + (i % 12);
        let day = 1 + (i % 28);
        let date = format!("{year}-{month:02}-{day:02}");
        let total = 1 + ((i as i64 * 13) % 40) + rng.gen_range(0..3);
        let status = vocab.statuses[i % vocab.statuses.len()];
        db.insert(
            &event_table,
            vec![
                Value::Int(id),
                Value::from(entity.clone()),
                Value::from(loc.clone()),
                Value::from(date),
                Value::Int(total),
                Value::from(status),
            ],
        )
        .expect("event arity");
    }

    // Details: first 120 events get 1–3 detail rows.
    let conditions = ["good", "fair", "poor"];
    let mut detail_keys = Vec::new();
    for i in 0..120usize {
        let event_id = 1001 + i as i64;
        let n_details = 1 + (i % 3);
        for d in 0..n_details {
            let amount = 1 + ((i + d) as i64 * 7) % 25;
            let condition = conditions[(i + d) % conditions.len()];
            db.insert(
                &detail_table,
                vec![
                    Value::Int(event_id),
                    Value::Int(d as i64 + 1),
                    Value::Int(amount),
                    Value::from(condition),
                ],
            )
            .expect("detail arity");
            detail_keys.push((event_id, d as i64 + 1));
        }
    }

    // Subdetails: one or two per detail row.
    let grades = ["A", "B", "C", "D"];
    for (i, (event_id, detail_no)) in detail_keys.iter().enumerate() {
        let n_sub = 1 + (i % 2);
        for s in 0..n_sub {
            let value = ((i + s) as f64 * 3.7) % 50.0;
            db.insert(
                &subdetail_table,
                vec![
                    Value::Int(*event_id),
                    Value::Int(*detail_no),
                    Value::Int(s as i64 + 1),
                    Value::Float((value * 10.0).round() / 10.0),
                    Value::from(grades[(i + s) % grades.len()]),
                ],
            )
            .expect("subdetail arity");
        }
    }

    InstanceLiterals {
        categories: vocab.categories.iter().map(|s| s.to_string()).collect(),
        statuses: vocab.statuses.iter().map(|s| s.to_string()).collect(),
        regions: vocab.regions.iter().map(|s| s.to_string()).collect(),
        location_codes,
        active_entity_codes: active_entities.to_vec(),
        years,
        conditions: conditions.iter().map(|s| s.to_string()).collect(),
        grades: grades.iter().map(|s| s.to_string()).collect(),
    }
}

/// Assign tables to modules. SBOD uses the Table 4 module names with the
/// core tables in "General"; everything else is a single module.
fn assign_modules(
    spec: &DbSpec,
    db: &Database,
    core: &CoreHandles,
) -> Vec<(String, Vec<String>)> {
    let core_tables: std::collections::HashSet<String> = CoreRole::ALL
        .iter()
        .filter(|r| r.is_table())
        .map(|r| core.native(*r).to_ascii_uppercase())
        .collect();
    if spec.name != "SBOD" {
        return vec![(
            "Main".to_owned(),
            db.tables().map(|t| t.schema.name.clone()).collect(),
        )];
    }
    // Table 4 module names.
    let module_names = [
        "Banking",
        "Business Partners",
        "Finance",
        "General",
        "Human Resources",
        "Inventory and Prod.",
        "Reports",
        "Sales Opportunities",
        "Service",
    ];
    let mut modules: Vec<(String, Vec<String>)> = module_names
        .iter()
        .map(|m| ((*m).to_owned(), Vec::new()))
        .collect();
    let general = 3usize;
    let mut next = 0usize;
    for t in db.tables() {
        let name = t.schema.name.clone();
        if core_tables.contains(&name.to_ascii_uppercase()) {
            modules[general].1.push(name);
        } else {
            // Keep General smaller (it already holds the queried core).
            if next % module_names.len() == general {
                next += 1;
            }
            modules[next % module_names.len()].1.push(name);
            next += 1;
        }
    }
    modules
}

fn build_data_dictionary(
    spec: &DbSpec,
    entries: &[CrosswalkEntry],
    registry: &HashMap<String, Concept>,
) -> String {
    let mut doc = String::new();
    doc.push_str(&format!(
        "Data dictionary for the {} database ({}).\n",
        spec.name, spec.org
    ));
    for e in entries {
        let concept = &registry[&e.native.to_ascii_uppercase()];
        let kind = if e.is_table { "table" } else { "column" };
        doc.push_str(&format!(
            "{}: the {} {} recorded in this dataset\n",
            e.native,
            concept.phrase(),
            kind
        ));
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::spec;

    fn asis() -> BuiltSchema {
        build_schema(spec("ASIS").unwrap())
    }

    #[test]
    fn table_and_column_counts_match_spec() {
        let s = spec("ASIS").unwrap();
        let built = asis();
        assert_eq!(built.db.table_count(), s.tables);
        assert_eq!(built.db.column_count(), s.columns);
    }

    #[test]
    fn deterministic_builds() {
        let a = asis();
        let b = asis();
        assert_eq!(a.db.identifier_names(), b.db.identifier_names());
        assert_eq!(a.crosswalk, b.crosswalk);
    }

    #[test]
    fn core_tables_populated() {
        let built = asis();
        let event_table = built.core.native(CoreRole::EventTable);
        let t = built.db.table(&event_table).expect("event table exists");
        assert_eq!(t.row_count(), EVENT_ROWS);
    }

    #[test]
    fn crosswalk_covers_schema() {
        let built = asis();
        for name in built.db.identifier_names() {
            assert!(
                built.crosswalk.entry(&name).is_some(),
                "no crosswalk entry for {name}"
            );
        }
    }

    #[test]
    fn crosswalk_native_matches_schema() {
        let built = asis();
        for e in built.crosswalk.entries() {
            assert_eq!(
                e.rendering(snails_naturalness::category::SchemaVariant::Native),
                e.native
            );
            // Entry at native level equals the native spelling.
            assert_eq!(e.renderings[e.native_level.index()], e.native);
        }
    }

    #[test]
    fn combined_naturalness_near_target() {
        let s = spec("ASIS").unwrap();
        let built = asis();
        let labels: Vec<_> = built
            .db
            .identifier_names()
            .iter()
            .map(|n| built.crosswalk.entry(n).unwrap().native_level)
            .collect();
        let combined = snails_naturalness::combined_naturalness(labels);
        assert!(
            (combined - s.target_combined()).abs() < 0.06,
            "combined {combined} vs target {}",
            s.target_combined()
        );
    }

    #[test]
    fn holdout_entities_have_no_events() {
        let built = asis();
        let entity_table = built.core.native(CoreRole::EntityTable);
        let code_col = built.core.native(CoreRole::EntityCode);
        let event_table = built.core.native(CoreRole::EventTable);
        let sql = format!(
            "SELECT COUNT(*) FROM {entity_table} e WHERE NOT EXISTS \
             (SELECT 1 FROM {event_table} o WHERE o.{code_col} = e.{code_col})"
        );
        let rs = snails_engine::run_sql(&built.db, &sql).unwrap();
        assert_eq!(rs.scalar().and_then(Value::as_i64), Some(2));
    }

    #[test]
    fn data_dictionary_mentions_identifiers() {
        let built = asis();
        let entity_name = built.core.native(CoreRole::EntityName);
        assert!(built.data_dictionary.contains(&entity_name));
    }

    #[test]
    fn single_module_for_non_sbod() {
        let built = asis();
        assert_eq!(built.modules.len(), 1);
        assert_eq!(built.modules[0].1.len(), built.db.table_count());
    }
}
