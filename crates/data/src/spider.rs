//! Spider-like collection (Figure 13 substitute).
//!
//! Figure 13 applies the SNAILS renaming artifacts to the Spider dev set and
//! measures QueryRecall / execution accuracy per naturalness level. Spider
//! itself cannot ship here, so this module builds a miniature high-naturalness
//! multi-domain collection through the same generator used for Artifact 1 —
//! the property Figure 13 depends on is the *naturalness distribution*
//! (Spider is more natural than any SNAILS schema), which the spec encodes.

use crate::databases::{build_from_spec, SnailsDatabase};
use crate::pools::Domain;
use crate::spec::DbSpec;

/// The Spider-sim database specs: small, multi-domain, highly natural
/// (93/6/1 — the Davinci-classified Spider proportions of appendix A.3).
pub const SPIDER_SPECS: [DbSpec; 4] = [
    DbSpec {
        name: "SPIDER_WILDLIFE",
        org: "Spider-sim",
        domain: Domain::Wildlife,
        tables: 8,
        columns: 45,
        questions: 20,
        proportions: [0.93, 0.06, 0.01],
        seed: 0x51D1,
    },
    DbSpec {
        name: "SPIDER_SCHOOL",
        org: "Spider-sim",
        domain: Domain::Education,
        tables: 7,
        columns: 42,
        questions: 20,
        proportions: [0.93, 0.06, 0.01],
        seed: 0x51D2,
    },
    DbSpec {
        name: "SPIDER_STORE",
        org: "Spider-sim",
        domain: Domain::Business,
        tables: 8,
        columns: 48,
        questions: 20,
        proportions: [0.93, 0.06, 0.01],
        seed: 0x51D3,
    },
    DbSpec {
        name: "SPIDER_BIRDS",
        org: "Spider-sim",
        domain: Domain::Birds,
        tables: 7,
        columns: 40,
        questions: 20,
        proportions: [0.93, 0.06, 0.01],
        seed: 0x51D4,
    },
];

/// Build the Spider-sim collection.
pub fn build_spider() -> Vec<SnailsDatabase> {
    SPIDER_SPECS.iter().map(build_from_spec).collect()
}

/// Template mix shared by the Spider-sim databases (Spider queries skew
/// simple: projections, counts, group-bys, a few joins and ORDER BYs).
pub fn spider_template_mix() -> Vec<(crate::questions::Template, usize)> {
    use crate::questions::Template::*;
    vec![
        (SimpleProjWhere, 4),
        (CountWhere, 3),
        (GroupCount, 3),
        (JoinGroupCount, 3),
        (TopOrderScore, 2),
        (JoinSumGroup, 2),
        (AvgScalarSub, 1),
        (DistinctType, 1),
        (MaxTotal, 1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spider_collection_builds() {
        let dbs = build_spider();
        assert_eq!(dbs.len(), 4);
        for d in &dbs {
            assert_eq!(d.questions.len(), 20);
            let combined = d.combined_naturalness();
            assert!(combined > 0.88, "{}: {combined}", d.spec.name);
        }
    }

    #[test]
    fn spider_gold_queries_execute() {
        let d = build_from_spec(&SPIDER_SPECS[0]);
        for q in &d.questions {
            let rs = snails_engine::run_sql(&d.db, &q.sql)
                .unwrap_or_else(|e| panic!("q{}: {e}\n{}", q.id, q.sql));
            assert!(!rs.is_empty(), "q{} empty", q.id);
        }
    }

    #[test]
    fn spider_mix_sums_to_twenty() {
        let total: usize = spider_template_mix().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn spider_more_natural_than_snails() {
        let spider = build_from_spec(&SPIDER_SPECS[0]);
        let cwo = crate::databases::build_database("CWO");
        assert!(spider.combined_naturalness() > cwo.combined_naturalness());
    }
}
