//! The core star schema shared by all nine databases.
//!
//! Gold queries run against five *core* tables present in every database
//! (with domain-flavoured names): an entity lookup, a location lookup, an
//! event fact table, a composite-keyed detail table, and a composite-keyed
//! subdetail table. The remaining tables of each database are schema
//! *filler* — realistic distractors that match the paper's table/column
//! counts and naturalness mix but hold no benchmark data (mirroring the
//! paper's pruning of empty SBOD tables).

use crate::concept::Concept;
use crate::pools::DomainVocab;
use snails_naturalness::Naturalness;
use std::collections::BTreeMap;

/// Roles of the core tables and columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum CoreRole {
    // Tables.
    EntityTable,
    LocationTable,
    EventTable,
    DetailTable,
    SubdetailTable,
    // Entity columns.
    EntityCode,
    EntityName,
    EntityCategory,
    EntityScore,
    // Location columns.
    LocCode,
    LocName,
    LocType,
    LocRegion,
    // Event columns.
    EventId,
    EventEntityCode,
    EventLocCode,
    EventDate,
    EventTotal,
    EventStatus,
    // Detail columns (composite key: EventId + DetailNo).
    DetailEventId,
    DetailNo,
    DetailAmount,
    DetailCondition,
    // Subdetail columns (composite key: EventId + DetailNo).
    SubEventId,
    SubDetailNo,
    SubSeq,
    SubValue,
    SubGrade,
}

impl CoreRole {
    /// All roles.
    pub const ALL: [CoreRole; 28] = [
        CoreRole::EntityTable,
        CoreRole::LocationTable,
        CoreRole::EventTable,
        CoreRole::DetailTable,
        CoreRole::SubdetailTable,
        CoreRole::EntityCode,
        CoreRole::EntityName,
        CoreRole::EntityCategory,
        CoreRole::EntityScore,
        CoreRole::LocCode,
        CoreRole::LocName,
        CoreRole::LocType,
        CoreRole::LocRegion,
        CoreRole::EventId,
        CoreRole::EventEntityCode,
        CoreRole::EventLocCode,
        CoreRole::EventDate,
        CoreRole::EventTotal,
        CoreRole::EventStatus,
        CoreRole::DetailEventId,
        CoreRole::DetailNo,
        CoreRole::DetailAmount,
        CoreRole::DetailCondition,
        CoreRole::SubEventId,
        CoreRole::SubDetailNo,
        CoreRole::SubSeq,
        CoreRole::SubValue,
        CoreRole::SubGrade,
    ];

    /// True for the five table roles.
    pub fn is_table(&self) -> bool {
        matches!(
            self,
            CoreRole::EntityTable
                | CoreRole::LocationTable
                | CoreRole::EventTable
                | CoreRole::DetailTable
                | CoreRole::SubdetailTable
        )
    }
}

/// Resolved core concepts for one database.
#[derive(Debug, Clone)]
pub struct CoreHandles {
    concepts: BTreeMap<CoreRole, Concept>,
}

/// Last word of a multi-word noun ("plant species" → "species").
fn head(noun: &str) -> &str {
    noun.rsplit(' ').next().unwrap_or(noun)
}

impl CoreHandles {
    /// Build core concepts from the domain vocabulary. `level_for` assigns
    /// each concept's native naturalness (drawn from the database's Figure 5
    /// proportions by the caller).
    pub fn build(vocab: &DomainVocab, mut level_for: impl FnMut() -> Naturalness) -> Self {
        let n = vocab.nouns;
        let entity = head(n.entity);
        let event = head(n.event);
        let location = head(n.location);
        let detail = head(n.detail);
        let sub = head(n.subdetail);

        let style = vocab.style;
        let mut concepts = BTreeMap::new();
        let mut add = |role: CoreRole, words: Vec<&str>| {
            concepts.insert(role, Concept::new(&words, style, level_for()));
        };

        add(CoreRole::EntityTable, n.entity.split(' ').collect());
        add(CoreRole::LocationTable, n.location.split(' ').collect());
        add(CoreRole::EventTable, n.event.split(' ').collect());
        add(CoreRole::DetailTable, n.detail.split(' ').collect());
        add(CoreRole::SubdetailTable, n.subdetail.split(' ').collect());

        add(CoreRole::EntityCode, vec![entity, "code"]);
        add(CoreRole::EntityName, vec![entity, "name"]);
        add(CoreRole::EntityCategory, vec![entity, "category"]);
        add(CoreRole::EntityScore, vec![entity, "score"]);

        add(CoreRole::LocCode, vec![location, "code"]);
        add(CoreRole::LocName, vec![location, "name"]);
        add(CoreRole::LocType, vec![location, "type"]);
        add(CoreRole::LocRegion, vec![location, "region"]);

        add(CoreRole::EventId, vec![event, "number"]);
        add(CoreRole::EventEntityCode, vec![entity, "code"]);
        add(CoreRole::EventLocCode, vec![location, "code"]);
        add(CoreRole::EventDate, vec![event, "date"]);
        add(CoreRole::EventTotal, vec![event, "total"]);
        add(CoreRole::EventStatus, vec![event, "status"]);

        add(CoreRole::DetailEventId, vec![event, "number"]);
        add(CoreRole::DetailNo, vec![detail, "number"]);
        add(CoreRole::DetailAmount, vec![detail, "amount"]);
        add(CoreRole::DetailCondition, vec![detail, "condition"]);

        add(CoreRole::SubEventId, vec![event, "number"]);
        add(CoreRole::SubDetailNo, vec![detail, "number"]);
        add(CoreRole::SubSeq, vec![sub, "sequence"]);
        add(CoreRole::SubValue, vec![sub, "value"]);
        add(CoreRole::SubGrade, vec![sub, "grade"]);

        // Foreign keys must spell exactly like the keys they reference so
        // the generated join predicates stay semantically coherent; copy the
        // referenced concepts (same words AND same level → same identifier).
        let copy_pairs = [
            (CoreRole::EntityCode, CoreRole::EventEntityCode),
            (CoreRole::LocCode, CoreRole::EventLocCode),
            (CoreRole::EventId, CoreRole::DetailEventId),
            (CoreRole::EventId, CoreRole::SubEventId),
            (CoreRole::DetailNo, CoreRole::SubDetailNo),
        ];
        for (from, to) in copy_pairs {
            let c = concepts[&from].clone();
            concepts.insert(to, c);
        }

        CoreHandles { concepts }
    }

    /// The concept filling a role.
    pub fn concept(&self, role: CoreRole) -> &Concept {
        &self.concepts[&role]
    }

    /// The native identifier for a role.
    pub fn native(&self, role: CoreRole) -> String {
        self.concepts[&role].native()
    }

    /// The Regular NL phrase for a role.
    pub fn phrase(&self, role: CoreRole) -> String {
        self.concepts[&role].phrase()
    }

    /// All distinct concepts (for crosswalk construction), keyed by native
    /// name.
    pub fn distinct_concepts(&self) -> Vec<(&CoreRole, &Concept)> {
        let mut seen = std::collections::HashSet::new();
        self.concepts
            .iter()
            .filter(|(_, c)| seen.insert(c.native()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pools::Domain;

    fn handles() -> CoreHandles {
        let vocab = Domain::Vegetation.vocab();
        CoreHandles::build(&vocab, || Naturalness::Regular)
    }

    #[test]
    fn foreign_keys_match_referenced_keys() {
        let h = handles();
        assert_eq!(h.native(CoreRole::EntityCode), h.native(CoreRole::EventEntityCode));
        assert_eq!(h.native(CoreRole::EventId), h.native(CoreRole::DetailEventId));
        assert_eq!(h.native(CoreRole::DetailNo), h.native(CoreRole::SubDetailNo));
    }

    #[test]
    fn table_roles_flagged() {
        assert!(CoreRole::EntityTable.is_table());
        assert!(!CoreRole::EntityCode.is_table());
        let tables = CoreRole::ALL.iter().filter(|r| r.is_table()).count();
        assert_eq!(tables, 5);
    }

    #[test]
    fn phrases_are_regular_words() {
        let h = handles();
        assert_eq!(h.phrase(CoreRole::EntityTable), "plant species");
        assert_eq!(h.phrase(CoreRole::EventDate), "visit date");
    }

    #[test]
    fn multi_word_nouns_use_head_for_columns() {
        let h = handles();
        // entity noun "plant species" → columns keyed on "species".
        assert_eq!(h.phrase(CoreRole::EntityCode), "species code");
    }

    #[test]
    fn distinct_concepts_dedup_fk_copies() {
        let h = handles();
        let distinct = h.distinct_concepts().len();
        // 28 roles minus 5 FK copies = 23 distinct concepts... unless the
        // domain nouns collide; Vegetation does not collide.
        assert_eq!(distinct, 23);
    }

    #[test]
    fn levels_affect_native_names() {
        let vocab = Domain::Vegetation.vocab();
        let least = CoreHandles::build(&vocab, || Naturalness::Least);
        let regular = CoreHandles::build(&vocab, || Naturalness::Regular);
        assert_ne!(
            least.native(CoreRole::EntityName),
            regular.native(CoreRole::EntityName)
        );
    }
}
