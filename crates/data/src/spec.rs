//! Per-database specifications (Table 2 + Figure 5 targets).

use crate::pools::Domain;

/// The generation spec for one SNAILS database.
#[derive(Debug, Clone, Copy)]
pub struct DbSpec {
    /// Benchmark name (Table 2).
    pub name: &'static str,
    /// Source organization (Table 2).
    pub org: &'static str,
    /// Application domain.
    pub domain: Domain,
    /// Target table count (Table 2).
    pub tables: usize,
    /// Target total column count (Table 2).
    pub columns: usize,
    /// NL question count (Table 2).
    pub questions: usize,
    /// Native naturalness proportions `[Regular, Low, Least]` (Figure 5 /
    /// Figure 11 percentages).
    pub proportions: [f64; 3],
    /// Generation seed.
    pub seed: u64,
}

impl DbSpec {
    /// The combined naturalness implied by the proportions (Equation 5).
    pub fn target_combined(&self) -> f64 {
        self.proportions[0] + 0.5 * self.proportions[1]
    }
}

/// Specs for the nine databases.
///
/// Table/column/question counts are Table 2 verbatim. Naturalness
/// proportions come from Figure 11 where stated (PILB 65/22/13,
/// NTSB 42/34/24, SBOD 24/49/27) and otherwise solve Figure 5's combined
/// scores (appendix A: ASIS 0.77, ATBI 0.70, CWO 0.84, KIS 0.79, NPFM 0.70,
/// NYSED 0.68).
pub const SPECS: [DbSpec; 9] = [
    DbSpec {
        name: "ASIS",
        org: "NPS",
        domain: Domain::Herps,
        tables: 36,
        columns: 245,
        questions: 40,
        proportions: [0.62, 0.30, 0.08],
        seed: 0xA515,
    },
    DbSpec {
        name: "ATBI",
        org: "NPS",
        domain: Domain::Vegetation,
        tables: 28,
        columns: 192,
        questions: 40,
        proportions: [0.52, 0.36, 0.12],
        seed: 0xA7B1,
    },
    DbSpec {
        name: "CWO",
        org: "NPS",
        domain: Domain::Wildlife,
        tables: 13,
        columns: 71,
        questions: 40,
        proportions: [0.72, 0.24, 0.04],
        seed: 0xC0,
    },
    DbSpec {
        name: "KIS",
        org: "NPS",
        domain: Domain::Invasive,
        tables: 18,
        columns: 157,
        questions: 40,
        proportions: [0.64, 0.30, 0.06],
        seed: 0x715,
    },
    DbSpec {
        name: "NPFM",
        org: "NPS",
        domain: Domain::Fire,
        tables: 27,
        columns: 190,
        questions: 40,
        proportions: [0.52, 0.36, 0.12],
        seed: 0xF14E,
    },
    DbSpec {
        name: "NTSB",
        org: "NHTSA",
        domain: Domain::Transport,
        tables: 40,
        columns: 1611,
        questions: 100,
        proportions: [0.42, 0.34, 0.24],
        seed: 0x7547,
    },
    DbSpec {
        name: "NYSED",
        org: "NYSED",
        domain: Domain::Education,
        tables: 27,
        columns: 423,
        questions: 63,
        proportions: [0.50, 0.36, 0.14],
        seed: 0x5ED,
    },
    DbSpec {
        name: "PILB",
        org: "NPS",
        domain: Domain::Birds,
        tables: 21,
        columns: 196,
        questions: 40,
        proportions: [0.65, 0.22, 0.13],
        seed: 0xB14D,
    },
    DbSpec {
        name: "SBOD",
        org: "SAP",
        domain: Domain::Business,
        tables: 2588,
        columns: 90_477,
        questions: 100,
        proportions: [0.24, 0.49, 0.27],
        seed: 0x5B0D,
    },
];

/// Look up a spec by name (case-insensitive).
pub fn spec(name: &str) -> Option<&'static DbSpec> {
    SPECS.iter().find(|s| s.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_table_2() {
        let total_questions: usize = SPECS.iter().map(|s| s.questions).sum();
        assert_eq!(total_questions, 503);
        assert_eq!(spec("NTSB").unwrap().columns, 1611);
        assert_eq!(spec("sbod").unwrap().tables, 2588);
        assert!(spec("XXXX").is_none());
    }

    #[test]
    fn proportions_sum_to_one() {
        for s in &SPECS {
            let sum: f64 = s.proportions.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", s.name);
        }
    }

    #[test]
    fn combined_targets_match_appendix_a() {
        let expect = [
            ("ASIS", 0.77),
            ("ATBI", 0.70),
            ("CWO", 0.84),
            ("KIS", 0.79),
            ("NPFM", 0.70),
            ("NTSB", 0.59),
            ("NYSED", 0.68),
            ("PILB", 0.76),
            ("SBOD", 0.485),
        ];
        for (name, target) in expect {
            let got = spec(name).unwrap().target_combined();
            assert!(
                (got - target).abs() < 0.011,
                "{name}: combined {got} vs paper {target}"
            );
        }
    }
}
