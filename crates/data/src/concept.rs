//! Semantic identifier concepts.
//!
//! Every identifier in a SNAILS database is generated from a *concept*: the
//! sequence of English words naming the thing, a rendering style, and the
//! identifier's Native naturalness level. Renderings at each level derive
//! deterministically from the words via the Artifact-5 abbreviator, so the
//! benchmark gets a perfect Artifact-4 crosswalk (the paper's was
//! human-validated) and ground-truth labels for classifier training.

use snails_modify::abbrev::{abbreviate_word, RenderStyle};
use snails_modify::crosswalk::CrosswalkEntry;
use snails_naturalness::Naturalness;

/// A semantic identifier concept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Concept {
    /// The English words naming the concept, lowercase.
    pub words: Vec<String>,
    /// Rendering style of the identifier in the source schema.
    pub style: RenderStyle,
    /// The Native identifier's naturalness level.
    pub native_level: Naturalness,
}

impl Concept {
    /// Build from word list.
    pub fn new(words: &[&str], style: RenderStyle, native_level: Naturalness) -> Self {
        Concept {
            words: words.iter().map(|w| w.to_ascii_lowercase()).collect(),
            style,
            native_level,
        }
    }

    /// Word parts at a naturalness level.
    ///
    /// Regular keeps every word; Least abbreviates every word; Low mirrors
    /// real-world partial abbreviation (`AccountChk`, `IsueFrDate`): odd
    /// positions and long words are abbreviated, the rest stay full — which
    /// also reproduces the Figure 2 property that Low identifiers have an
    /// intermediate mean token-in-dictionary.
    fn parts(&self, level: Naturalness) -> Vec<String> {
        match level {
            Naturalness::Regular => self.words.clone(),
            Naturalness::Least => self
                .words
                .iter()
                .map(|w| abbreviate_word(w, Naturalness::Least))
                .collect(),
            Naturalness::Low => {
                if self.words.len() == 1 {
                    return vec![abbreviate_word(&self.words[0], Naturalness::Low)];
                }
                self.words
                    .iter()
                    .enumerate()
                    .map(|(i, w)| {
                        if i % 2 == 1 || w.len() > 8 {
                            abbreviate_word(w, Naturalness::Low)
                        } else {
                            w.clone()
                        }
                    })
                    .collect()
            }
        }
    }

    /// The identifier rendered at a naturalness level.
    pub fn rendering(&self, level: Naturalness) -> String {
        let parts = self.parts(level);
        match level {
            // Regular renderings are always snake_case full words: this is
            // what the expander produces and what the natural views expose.
            Naturalness::Regular => RenderStyle::Snake.join(&parts),
            _ => self.style.join(&parts),
        }
    }

    /// The identifier as it exists in the source schema.
    pub fn native(&self) -> String {
        // Native keeps the schema's own style even at Regular level.
        self.style.join(&self.parts(self.native_level))
    }

    /// The Regular-naturalness phrase used in NL questions ("vegetation
    /// height").
    pub fn phrase(&self) -> String {
        self.words.join(" ")
    }

    /// Crosswalk entry for this concept.
    pub fn crosswalk_entry(&self, is_table: bool) -> CrosswalkEntry {
        let native = self.native();
        let mut renderings = [
            self.rendering(Naturalness::Regular),
            self.rendering(Naturalness::Low),
            self.rendering(Naturalness::Least),
        ];
        // The native identifier maps to itself at its own level (§2.3).
        renderings[self.native_level.index()] = native.clone();
        CrosswalkEntry { native, native_level: self.native_level, renderings, is_table }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renderings_per_level() {
        let c = Concept::new(
            &["vegetation", "height"],
            RenderStyle::Pascal,
            Naturalness::Low,
        );
        assert_eq!(c.rendering(Naturalness::Regular), "vegetation_height");
        assert_eq!(c.rendering(Naturalness::Least), "VgHt");
        assert_eq!(c.native(), c.rendering(Naturalness::Low));
        assert_eq!(c.phrase(), "vegetation height");
    }

    #[test]
    fn native_regular_keeps_style() {
        let c = Concept::new(&["model", "year"], RenderStyle::Pascal, Naturalness::Regular);
        assert_eq!(c.native(), "ModelYear");
        // But the Regular *rendering* (used by virtual schemas and natural
        // views) is snake_case.
        assert_eq!(c.rendering(Naturalness::Regular), "model_year");
    }

    #[test]
    fn crosswalk_entry_self_maps_native_level() {
        let c = Concept::new(&["service", "name"], RenderStyle::Snake, Naturalness::Regular);
        let e = c.crosswalk_entry(false);
        assert_eq!(e.native, "service_name");
        assert_eq!(e.renderings[Naturalness::Regular.index()], "service_name");
        assert_eq!(e.native_level, Naturalness::Regular);
        assert!(!e.is_table);
    }

    #[test]
    fn least_native_concept() {
        let c = Concept::new(
            &["default", "slope"],
            RenderStyle::Pascal,
            Naturalness::Least,
        );
        let native = c.native();
        assert!(native.len() <= 8, "{native}");
        assert_eq!(c.crosswalk_entry(false).renderings[2], native);
    }

    #[test]
    fn word_normalization() {
        let c = Concept::new(&["Species", "CODE"], RenderStyle::Snake, Naturalness::Regular);
        assert_eq!(c.words, vec!["species", "code"]);
    }
}
