//! Heuristics-based naturalness scoring (appendix B.1).
//!
//! Before training ML classifiers the SNAILS authors scored identifiers with
//! a dictionary heuristic:
//!
//! 1. downsample the vocabulary to words containing a superset of the
//!    identifier token's letters, with the letters in the same order
//!    (subsequence candidates);
//! 2. compute the Levenshtein *edit distance* from the token to each
//!    candidate;
//! 3. count candidates within edit distance 1 and 2 — the *candidate
//!    ambiguity* — and take its log to normalize the skewed distribution;
//! 4. score naturalness as the weighted mean of the inverse edit distance and
//!    the inverse log candidate ambiguity, in `[0, 1]` where 1 is most
//!    natural.
//!
//! The paper reports that this heuristic loses to the ML classifiers on
//! recall/precision/F1 but retains it for completeness; so do we (it is one
//! of the Table 5 rows reproduced by `snails-naturalness`).

use crate::dictionary::{dictionary, is_subsequence, Dictionary};
use crate::edit::levenshtein;
use crate::split::split_identifier;

/// Tunable weights for the B.1 heuristic score.
#[derive(Debug, Clone, Copy)]
pub struct HeuristicWeights {
    /// Weight on the inverse-edit-distance component.
    pub edit: f64,
    /// Weight on the inverse-log-candidate-ambiguity component.
    pub ambiguity: f64,
}

impl Default for HeuristicWeights {
    fn default() -> Self {
        HeuristicWeights { edit: 0.7, ambiguity: 0.3 }
    }
}

/// Stateful scorer that borrows the dictionary once.
#[derive(Debug)]
pub struct HeuristicScorer {
    dict: &'static Dictionary,
    weights: HeuristicWeights,
}

impl Default for HeuristicScorer {
    fn default() -> Self {
        Self::new(HeuristicWeights::default())
    }
}

impl HeuristicScorer {
    /// Scorer with explicit weights.
    pub fn new(weights: HeuristicWeights) -> Self {
        HeuristicScorer { dict: dictionary(), weights }
    }

    /// Score a single token in `[0, 1]`.
    pub fn score_token(&self, token: &str) -> f64 {
        let lower = token.to_ascii_lowercase();
        if lower.is_empty() {
            return 0.0;
        }
        if lower.bytes().all(|b| b.is_ascii_digit()) {
            // Bare numbers carry no naming signal; treat as neutral-low.
            return 0.5;
        }
        if self.dict.contains(&lower) || crate::abbrev::is_common_acronym(token) {
            return 1.0;
        }

        // Candidate expansions: dictionary words that contain the token's
        // letters in order. Cap the scan to words no more than 4x as long to
        // bound noise from very short tokens.
        let mut best_dist = usize::MAX;
        let mut within_1 = 0usize;
        let mut within_2 = 0usize;
        let max_len = (lower.len() * 4).max(lower.len() + 2);
        for word in self.dict.iter() {
            if word.len() < lower.len() || word.len() > max_len {
                continue;
            }
            if !is_subsequence(&lower, word) {
                continue;
            }
            let d = levenshtein(&lower, word);
            best_dist = best_dist.min(d);
            if d <= 1 {
                within_1 += 1;
            }
            if d <= 2 {
                within_2 += 1;
            }
        }
        if best_dist == usize::MAX {
            // No candidate expansion at all: indecipherable token.
            return 0.0;
        }
        let edit_component = 1.0 / (1.0 + best_dist as f64);
        let ambiguity = (within_1 + within_2) as f64;
        let ambiguity_component = 1.0 / (1.0 + ambiguity.ln_1p());
        let w = self.weights;
        (w.edit * edit_component + w.ambiguity * ambiguity_component).clamp(0.0, 1.0)
    }

    /// Score a full identifier as the mean of its token scores.
    pub fn score_identifier(&self, identifier: &str) -> f64 {
        let tokens = split_identifier(identifier);
        if tokens.is_empty() {
            return 0.0;
        }
        let sum: f64 = tokens.iter().map(|t| self.score_token(&t.text)).sum();
        sum / tokens.len() as f64
    }
}

/// One-shot convenience wrapper around [`HeuristicScorer`].
pub fn heuristic_naturalness_score(identifier: &str) -> f64 {
    HeuristicScorer::default().score_identifier(identifier)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_words_score_one() {
        let s = HeuristicScorer::default();
        assert_eq!(s.score_token("height"), 1.0);
        assert_eq!(s.score_token("Vegetation"), 1.0);
    }

    #[test]
    fn common_acronym_scores_one() {
        let s = HeuristicScorer::default();
        assert_eq!(s.score_token("ID"), 1.0);
    }

    #[test]
    fn abbreviations_score_lower() {
        let s = HeuristicScorer::default();
        let full = s.score_identifier("vegetation_height");
        let low = s.score_identifier("veg_ht");
        let least = s.score_identifier("vg_ht");
        assert!(full > low, "full {full} vs low {low}");
        assert!(full > least, "full {full} vs least {least}");
    }

    #[test]
    fn gibberish_scores_near_zero() {
        let s = HeuristicScorer::default();
        assert!(s.score_token("zqxj") < 0.3);
    }

    #[test]
    fn empty_scores_zero() {
        let s = HeuristicScorer::default();
        assert_eq!(s.score_identifier(""), 0.0);
        assert_eq!(s.score_token(""), 0.0);
    }

    #[test]
    fn numeric_token_neutral() {
        let s = HeuristicScorer::default();
        assert_eq!(s.score_token("42"), 0.5);
    }

    #[test]
    fn scores_bounded() {
        let s = HeuristicScorer::default();
        for id in ["AdCtTxIRWT", "COGM_Act", "DfltSlp", "service_name", "airbag", "x"] {
            let v = s.score_identifier(id);
            assert!((0.0..=1.0).contains(&v), "{id}: {v}");
        }
    }
}
