//! Character tagging (appendix B.5).
//!
//! The paper observed that word abbreviations generally contain more
//! consonants than vowels (vowels are dropped first), and introduced a
//! pre-processing step that renders the character *classes* of an identifier
//! as a parallel string of special characters which is concatenated with the
//! identifier before classification. Classifiers that use this feature are
//! labeled `+TG` in Table 5.
//!
//! Tag alphabet:
//! * `^` — vowels
//! * `+` — consonants
//! * `#` — numbers
//! * `$` — special characters
//! * `*` — any character not in the above categories

/// The tag character for a single input character.
pub fn char_tag(c: char) -> char {
    match c {
        'a' | 'e' | 'i' | 'o' | 'u' | 'A' | 'E' | 'I' | 'O' | 'U' => '^',
        c if c.is_ascii_alphabetic() => '+',
        c if c.is_ascii_digit() => '#',
        c if c.is_ascii() && !c.is_ascii_alphanumeric() => '$',
        _ => '*',
    }
}

/// The full tag sequence for an identifier, e.g. `AuthorID_5` → `^^++^+^+$#`.
pub fn tag_identifier(identifier: &str) -> String {
    identifier.chars().map(char_tag).collect()
}

/// The paper's `+TG` input encoding: identifier, a space, then its tags
/// (mirroring the fine-tuning prompt format `ADDRESS ^+++^++ ->`).
pub fn tagged_input(identifier: &str) -> String {
    let mut out = String::with_capacity(identifier.len() * 2 + 1);
    out.push_str(identifier);
    out.push(' ');
    out.push_str(&tag_identifier(identifier));
    out
}

/// Vowel / consonant / digit / special counts used as classifier features.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CharCounts {
    /// Vowel count (`^`).
    pub vowels: usize,
    /// Consonant count (`+`).
    pub consonants: usize,
    /// Digit count (`#`).
    pub digits: usize,
    /// Special-character count (`$`).
    pub specials: usize,
    /// Everything else (`*`).
    pub others: usize,
}

impl CharCounts {
    /// Count character classes in an identifier.
    pub fn of(identifier: &str) -> Self {
        let mut counts = CharCounts::default();
        for c in identifier.chars() {
            match char_tag(c) {
                '^' => counts.vowels += 1,
                '+' => counts.consonants += 1,
                '#' => counts.digits += 1,
                '$' => counts.specials += 1,
                _ => counts.others += 1,
            }
        }
        counts
    }

    /// Total characters counted.
    pub fn total(&self) -> usize {
        self.vowels + self.consonants + self.digits + self.specials + self.others
    }

    /// Vowel share among alphabetic characters; English prose sits near 0.4,
    /// consonant-skeleton abbreviations near 0.
    pub fn vowel_ratio(&self) -> f64 {
        let alpha = self.vowels + self.consonants;
        if alpha == 0 {
            0.0
        } else {
            self.vowels as f64 / alpha as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example() {
        // Appendix B.5: AuthorID_5 -> ^^++^+^+$#  (A u t h o r I D _ 5)
        assert_eq!(tag_identifier("AuthorID_5"), "^^++^+^+$#");
    }

    #[test]
    fn address_example() {
        // Appendix B.7 training excerpt: ADDRESS -> ^+++^++
        assert_eq!(tag_identifier("ADDRESS"), "^+++^++");
    }

    #[test]
    fn classes() {
        assert_eq!(char_tag('e'), '^');
        assert_eq!(char_tag('Z'), '+');
        assert_eq!(char_tag('7'), '#');
        assert_eq!(char_tag('_'), '$');
        assert_eq!(char_tag('é'), '*');
    }

    #[test]
    fn tagged_input_format() {
        assert_eq!(tagged_input("AIS"), "AIS ^^+");
    }

    #[test]
    fn char_counts() {
        let c = CharCounts::of("VgHt_2");
        assert_eq!(c.vowels, 0);
        assert_eq!(c.consonants, 4);
        assert_eq!(c.digits, 1);
        assert_eq!(c.specials, 1);
        assert_eq!(c.total(), 6);
        assert_eq!(c.vowel_ratio(), 0.0);
    }

    #[test]
    fn vowel_ratio_of_word() {
        let c = CharCounts::of("vegetation");
        assert!(c.vowel_ratio() > 0.35 && c.vowel_ratio() < 0.6);
    }

    #[test]
    fn empty_counts() {
        let c = CharCounts::of("");
        assert_eq!(c.total(), 0);
        assert_eq!(c.vowel_ratio(), 0.0);
    }
}
