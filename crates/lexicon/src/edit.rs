//! Levenshtein edit distance with a rolling single-row implementation.
//!
//! Used by the appendix B.1 heuristic scorer (edit distance between an
//! identifier token and candidate dictionary expansions) and by the simulated
//! LLMs' typo-like hallucination detection.

/// Classic Levenshtein distance over bytes (inputs are ASCII identifiers).
///
/// Runs in `O(|a| * |b|)` time and `O(min(|a|, |b|))` space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let (a, b) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let a = a.as_bytes();
    let b = b.as_bytes();
    if a.is_empty() {
        return b.len();
    }
    let mut row: Vec<usize> = (0..=a.len()).collect();
    for (j, &bc) in b.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = j + 1;
        for (i, &ac) in a.iter().enumerate() {
            let cost = usize::from(ac != bc);
            let next = (prev_diag + cost).min(row[i] + 1).min(row[i + 1] + 1);
            prev_diag = row[i + 1];
            row[i + 1] = next;
        }
    }
    row[a.len()]
}

/// Case-insensitive Levenshtein distance.
pub fn levenshtein_ignore_case(a: &str, b: &str) -> usize {
    levenshtein(&a.to_ascii_lowercase(), &b.to_ascii_lowercase())
}

/// Normalized similarity in `[0, 1]`: `1 - dist / max_len`.
pub fn similarity(a: &str, b: &str) -> f64 {
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical() {
        assert_eq!(levenshtein("height", "height"), 0);
    }

    #[test]
    fn empty_sides() {
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", ""), 0);
    }

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("vg", "vegetation"), 8);
        assert_eq!(levenshtein("ht", "height"), 4);
    }

    #[test]
    fn symmetric() {
        assert_eq!(levenshtein("abcd", "xy"), levenshtein("xy", "abcd"));
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(levenshtein_ignore_case("HEIGHT", "height"), 0);
        assert!(levenshtein("HEIGHT", "height") > 0);
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(similarity("", ""), 1.0);
        assert_eq!(similarity("abc", "abc"), 1.0);
        assert_eq!(similarity("abc", "xyz"), 0.0);
        let s = similarity("custmr", "customer");
        assert!(s > 0.5 && s < 1.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn triangle_inequality(a in "[a-z]{0,12}", b in "[a-z]{0,12}", c in "[a-z]{0,12}") {
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn bounded_by_longer(a in "[a-z]{0,16}", b in "[a-z]{0,16}") {
            let d = levenshtein(&a, &b);
            prop_assert!(d <= a.len().max(b.len()));
            prop_assert!(d >= a.len().abs_diff(b.len()));
        }

        #[test]
        fn zero_iff_equal(a in "[a-z]{0,16}", b in "[a-z]{0,16}") {
            prop_assert_eq!(levenshtein(&a, &b) == 0, a == b);
        }
    }
}
