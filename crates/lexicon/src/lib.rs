#![warn(missing_docs)]

//! # snails-lexicon
//!
//! Lexical substrate for the SNAILS benchmark: an embedded English word list,
//! tables of common acronyms and conventional abbreviations, identifier token
//! splitting (camelCase / snake_case / SCREAMING_CASE / digit boundaries),
//! the paper's *character tagging* pre-processing feature (appendix B.5),
//! Levenshtein edit distance, and the heuristics-based naturalness score of
//! appendix B.1.
//!
//! Everything in this crate is deterministic and allocation-conscious; it is
//! the hot path of naturalness classification, which is run over hundreds of
//! thousands of identifiers when profiling corpora like SchemaPile.

pub mod abbrev;
pub mod dictionary;
pub mod edit;
pub mod heuristic;
pub mod split;
pub mod tag;

pub use abbrev::{common_abbreviation_expansion, is_common_acronym};
pub use dictionary::{dictionary, is_dictionary_word, Dictionary};
pub use edit::levenshtein;
pub use heuristic::{heuristic_naturalness_score, HeuristicScorer};
pub use split::{split_identifier, IdentifierToken};
pub use tag::{char_tag, tag_identifier};

/// Proportion of an identifier's tokens that exactly match a dictionary word
/// or common acronym.
///
/// This is the paper's *mean token-in-dictionary* measurement (Figure 2): the
/// proportion of tokens in an identifier that match a word in a comprehensive
/// English word list. Least-naturalness identifiers contain fewer in-dictionary
/// tokens; Regular identifiers mostly consist of in-dictionary tokens.
pub fn mean_token_in_dictionary(identifier: &str) -> f64 {
    let tokens = split_identifier(identifier);
    if tokens.is_empty() {
        return 0.0;
    }
    let hits = tokens
        .iter()
        .filter(|t| {
            let lower = t.text.to_ascii_lowercase();
            is_dictionary_word(&lower) || is_common_acronym(&t.text)
        })
        .count();
    hits as f64 / tokens.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_token_in_dictionary_full_words() {
        assert!((mean_token_in_dictionary("vegetation_height") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_token_in_dictionary_abbreviated() {
        // "VgHt" splits into tokens that are not dictionary words.
        assert!(mean_token_in_dictionary("VgHt") < 0.5);
    }

    #[test]
    fn mean_token_in_dictionary_empty() {
        assert_eq!(mean_token_in_dictionary(""), 0.0);
    }

    #[test]
    fn mean_token_in_dictionary_mixed() {
        let v = mean_token_in_dictionary("service_nm");
        assert!(v > 0.0 && v < 1.0, "got {v}");
    }

    #[test]
    fn acronyms_count_as_natural() {
        assert!((mean_token_in_dictionary("GPS_ID") - 1.0).abs() < 1e-12);
    }
}
