//! Identifier token splitting.
//!
//! Database identifiers mix naming conventions: `snake_case`, `camelCase`,
//! `PascalCase`, `SCREAMING_SNAKE`, digit suffixes (`CAUSE3`), and prefix
//! conventions (`tbl_MicroHabitat`, `tlu_topo_position`). Naturalness
//! measurement operates on *word tokens*, so this module provides a splitter
//! that handles all of these conventions deterministically.

/// A single word-ish token extracted from an identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdentifierToken {
    /// The token text as it appeared (original case preserved).
    pub text: String,
    /// Byte offset of the token start within the identifier.
    pub start: usize,
    /// True when the token is entirely ASCII digits.
    pub numeric: bool,
}

impl IdentifierToken {
    fn new(text: &str, start: usize) -> Self {
        IdentifierToken {
            numeric: !text.is_empty() && text.bytes().all(|b| b.is_ascii_digit()),
            text: text.to_owned(),
            start,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum CharClass {
    Lower,
    Upper,
    Digit,
    Separator,
}

fn classify(c: char) -> CharClass {
    if c.is_ascii_lowercase() {
        CharClass::Lower
    } else if c.is_ascii_uppercase() {
        CharClass::Upper
    } else if c.is_ascii_digit() {
        CharClass::Digit
    } else {
        CharClass::Separator
    }
}

/// Split an identifier into word tokens.
///
/// Rules:
/// * `_`, `-`, whitespace, and any other non-alphanumeric character separate
///   tokens and are discarded;
/// * a lower→upper transition starts a new token (`camelCase` → `camel`,
///   `Case`);
/// * an upper-run followed by a lowercase letter keeps the final uppercase
///   letter with the following token (`XMLFile` → `XML`, `File`);
/// * letter↔digit transitions start a new token (`CAUSE3` → `CAUSE`, `3`).
pub fn split_identifier(identifier: &str) -> Vec<IdentifierToken> {
    let mut tokens = Vec::new();
    let chars: Vec<(usize, char)> = identifier.char_indices().collect();
    let mut tok_start: Option<usize> = None;

    let flush = |tokens: &mut Vec<IdentifierToken>, start: usize, end: usize| {
        let text = &identifier[start..end];
        if !text.is_empty() {
            tokens.push(IdentifierToken::new(text, start));
        }
    };

    for i in 0..chars.len() {
        let (pos, c) = chars[i];
        let class = classify(c);
        match class {
            CharClass::Separator => {
                if let Some(s) = tok_start.take() {
                    flush(&mut tokens, s, pos);
                }
            }
            _ => {
                if let Some(s) = tok_start {
                    let prev = classify(chars[i - 1].1);
                    let boundary = match (prev, class) {
                        (CharClass::Lower, CharClass::Upper) => true,
                        (CharClass::Digit, CharClass::Lower | CharClass::Upper) => true,
                        (CharClass::Lower | CharClass::Upper, CharClass::Digit) => true,
                        (CharClass::Upper, CharClass::Lower) => {
                            // `XMLFile`: break before the last upper of a run.
                            i >= 2 && classify(chars[i - 2].1) == CharClass::Upper
                        }
                        _ => false,
                    };
                    if boundary {
                        let split_at = if prev == CharClass::Upper && class == CharClass::Lower {
                            chars[i - 1].0
                        } else {
                            pos
                        };
                        flush(&mut tokens, s, split_at);
                        tok_start = Some(split_at);
                    }
                } else {
                    tok_start = Some(pos);
                }
            }
        }
    }
    if let Some(s) = tok_start {
        flush(&mut tokens, s, identifier.len());
    }
    tokens
}

/// Convenience: lowercase token texts only.
pub fn split_lower(identifier: &str) -> Vec<String> {
    split_identifier(identifier)
        .into_iter()
        .map(|t| t.text.to_ascii_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(id: &str) -> Vec<String> {
        split_identifier(id).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn snake_case() {
        assert_eq!(texts("service_name"), ["service", "name"]);
    }

    #[test]
    fn camel_case() {
        assert_eq!(texts("adaptiveCruiseControl"), ["adaptive", "Cruise", "Control"]);
    }

    #[test]
    fn pascal_case() {
        assert_eq!(texts("ModelYear"), ["Model", "Year"]);
    }

    #[test]
    fn screaming_snake() {
        assert_eq!(texts("HEADREST_DAM"), ["HEADREST", "DAM"]);
    }

    #[test]
    fn acronym_run_before_word() {
        assert_eq!(texts("XMLFile"), ["XML", "File"]);
        assert_eq!(texts("NPSUnit"), ["NPS", "Unit"]);
    }

    #[test]
    fn digit_boundaries() {
        assert_eq!(texts("CAUSE3"), ["CAUSE", "3"]);
        assert_eq!(texts("CSI22"), ["CSI", "22"]);
        assert_eq!(texts("AuthorID_5"), ["Author", "ID", "5"]);
    }

    #[test]
    fn whitespace_and_symbols() {
        assert_eq!(texts("Research Staff"), ["Research", "Staff"]);
        assert_eq!(texts("Veg-Height"), ["Veg", "Height"]);
        assert_eq!(texts("COGM_Act"), ["COGM", "Act"]);
    }

    #[test]
    fn empty_and_separator_only() {
        assert!(texts("").is_empty());
        assert!(texts("___").is_empty());
    }

    #[test]
    fn numeric_flag() {
        let toks = split_identifier("plot12");
        assert!(!toks[0].numeric);
        assert!(toks[1].numeric);
    }

    #[test]
    fn offsets_are_correct() {
        let toks = split_identifier("ab_CdEf");
        assert_eq!(toks[0].start, 0);
        assert_eq!(toks[1].start, 3);
        assert_eq!(toks[2].start, 5);
    }

    #[test]
    fn single_upper_then_lower() {
        assert_eq!(texts("Height"), ["Height"]);
    }
}
