//! Embedded English dictionary.
//!
//! The SNAILS paper measures *mean token-in-dictionary* against "a
//! comprehensive English word list". Shipping a full wordlist file is not
//! possible here, so this module embeds a curated ~1,900-word list that covers
//! (a) the most frequent English words, and (b) the domain vocabulary of the
//! nine SNAILS databases (nature observation, crash statistics, school
//! performance, enterprise resource planning). The list is complete with
//! respect to every Regular-naturalness identifier the `snails-data` crate
//! generates, which is the property the benchmark relies on.

use std::collections::HashSet;
use std::sync::OnceLock;

/// Raw embedded word list, one lowercase word per line.
pub const WORD_LIST: &str = include_str!("words.txt");

/// A set-backed English dictionary with O(1) membership tests.
#[derive(Debug)]
pub struct Dictionary {
    words: HashSet<&'static str>,
    max_len: usize,
}

impl Dictionary {
    fn from_embedded() -> Self {
        let mut words = HashSet::with_capacity(2048);
        let mut max_len = 0;
        for line in WORD_LIST.lines() {
            let w = line.trim();
            if !w.is_empty() {
                max_len = max_len.max(w.len());
                words.insert(w);
            }
        }
        Dictionary { words, max_len }
    }

    /// Membership test; the query must already be lowercase.
    pub fn contains(&self, word: &str) -> bool {
        self.words.contains(word)
    }

    /// Case-insensitive membership test (allocates only for mixed case).
    pub fn contains_ignore_case(&self, word: &str) -> bool {
        if word.bytes().all(|b| b.is_ascii_lowercase()) {
            self.contains(word)
        } else {
            self.contains(word.to_ascii_lowercase().as_str())
        }
    }

    /// Number of words in the dictionary.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the dictionary is empty (never, for the embedded list).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Length of the longest word, an upper bound for expansion searches.
    pub fn max_word_len(&self) -> usize {
        self.max_len
    }

    /// Iterate over all words.
    pub fn iter(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.words.iter().copied()
    }

    /// Words that start with the given lowercase prefix.
    pub fn words_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = &'static str> + 'a {
        self.words.iter().copied().filter(move |w| w.starts_with(prefix))
    }

    /// Words that contain the letters of `subseq` in order (the appendix B.1
    /// downsampling step: candidate expansions of an abbreviation).
    pub fn words_with_subsequence<'a>(
        &'a self,
        subseq: &'a str,
    ) -> impl Iterator<Item = &'static str> + 'a {
        self.words
            .iter()
            .copied()
            .filter(move |w| is_subsequence(subseq, w))
    }
}

/// True when `needle`'s characters appear in `hay` in order (not necessarily
/// contiguously). Both inputs are expected lowercase.
pub fn is_subsequence(needle: &str, hay: &str) -> bool {
    let mut hay_iter = hay.bytes();
    'outer: for nb in needle.bytes() {
        for hb in hay_iter.by_ref() {
            if hb == nb {
                continue 'outer;
            }
        }
        return false;
    }
    true
}

/// The process-wide embedded dictionary.
pub fn dictionary() -> &'static Dictionary {
    static DICT: OnceLock<Dictionary> = OnceLock::new();
    DICT.get_or_init(Dictionary::from_embedded)
}

/// True when `word` (lowercase) is in the embedded dictionary.
pub fn is_dictionary_word(word: &str) -> bool {
    dictionary().contains(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_loads_and_is_large() {
        let d = dictionary();
        assert!(d.len() > 1500, "dictionary too small: {}", d.len());
        assert!(!d.is_empty());
    }

    #[test]
    fn common_words_present() {
        for w in [
            "the", "name", "date", "count", "species", "vehicle", "teacher", "invoice",
            "vegetation", "height", "observation", "customer", "location", "school",
        ] {
            assert!(is_dictionary_word(w), "missing: {w}");
        }
    }

    #[test]
    fn abbreviations_absent() {
        for w in ["vg", "ht", "nm", "qty", "cstmr", "tbl"] {
            assert!(!is_dictionary_word(w), "unexpected word: {w}");
        }
    }

    #[test]
    fn case_insensitive_lookup() {
        assert!(dictionary().contains_ignore_case("Vegetation"));
        assert!(dictionary().contains_ignore_case("HEIGHT"));
        assert!(!dictionary().contains_ignore_case("VgHt"));
    }

    #[test]
    fn subsequence_matching() {
        assert!(is_subsequence("vgt", "vegetation"));
        assert!(is_subsequence("", "anything"));
        assert!(!is_subsequence("xyz", "vegetation"));
        assert!(!is_subsequence("noitateg", "vegetation"));
    }

    #[test]
    fn words_with_prefix_filters() {
        let d = dictionary();
        let hits: Vec<_> = d.words_with_prefix("veget").collect();
        assert!(hits.contains(&"vegetation"));
        assert!(hits.iter().all(|w| w.starts_with("veget")));
    }

    #[test]
    fn max_word_len_is_sane() {
        let d = dictionary();
        assert!(d.max_word_len() >= 10 && d.max_word_len() <= 30);
    }
}
