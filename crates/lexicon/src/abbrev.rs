//! Common acronyms and conventional abbreviations.
//!
//! The SNAILS taxonomy (§2.1) keys on these tables:
//!
//! * **Regular** identifiers may contain *acronyms in common usage* (ID, GPS);
//! * **Low** identifiers contain *recognizable* abbreviations (usually listed
//!   in the conventional-abbreviation table below, e.g. `qty`, `addr`) and
//!   less common acronyms (UTM, CPI);
//! * **Least** identifiers use opaque consonant skeletons and project-specific
//!   acronyms that require external documentation.

use std::collections::HashMap;
use std::sync::OnceLock;

/// Acronyms in common usage: their presence does not lower an identifier
/// below Regular naturalness (§2.1).
pub const COMMON_ACRONYMS: &[&str] = &[
    "ID", "GPS", "URL", "USA", "US", "UK", "SQL", "XML", "CSV", "PDF", "HTML", "API", "USD",
    "GPA", "DOB", "SSN", "VIN", "ZIP", "FAQ", "CEO", "CFO", "HR", "IT", "TV", "DNA", "EPA",
    "OK", "AM", "PM", "UTC", "GMT", "A", "I",
];

/// Less common but *recognizable* acronyms: characteristic of Low naturalness.
pub const RECOGNIZABLE_ACRONYMS: &[&str] = &[
    "UTM", "CPI", "ERP", "SKU", "PO", "GL", "AP", "AR", "FY", "QTY", "NO", "NR", "SEQ",
    "LOC", "ORG", "DEPT", "ACCT", "EMP", "CUST", "MGR", "ADDR", "AMT", "AVG", "STD", "DESC",
];

/// Conventional abbreviation → full-word expansions. These are the
/// abbreviations that non-domain experts routinely decode, so a token found
/// here signals Low (not Least) naturalness, and the expander (Artifact 5)
/// can resolve it without metadata.
pub const CONVENTIONAL_ABBREVIATIONS: &[(&str, &str)] = &[
    ("abbr", "abbreviation"),
    ("acct", "account"),
    ("addr", "address"),
    ("adj", "adjustment"),
    ("admin", "administrator"),
    ("amt", "amount"),
    ("apt", "apartment"),
    ("asst", "assistant"),
    ("attr", "attribute"),
    ("auth", "authorization"),
    ("avg", "average"),
    ("bal", "balance"),
    ("bldg", "building"),
    ("cat", "category"),
    ("cd", "code"),
    ("cfg", "configuration"),
    ("chk", "check"),
    ("cnt", "count"),
    ("co", "company"),
    ("col", "column"),
    ("cond", "condition"),
    ("coord", "coordinate"),
    ("ct", "count"),
    ("ctrl", "control"),
    ("cur", "current"),
    ("curr", "currency"),
    ("cust", "customer"),
    ("db", "database"),
    ("def", "default"),
    ("dept", "department"),
    ("desc", "description"),
    ("dest", "destination"),
    ("diag", "diagnosis"),
    ("diam", "diameter"),
    ("dir", "direction"),
    ("dist", "distance"),
    ("div", "division"),
    ("doc", "document"),
    ("dt", "date"),
    ("elev", "elevation"),
    ("emp", "employee"),
    ("env", "environment"),
    ("eval", "evaluation"),
    ("exp", "expiration"),
    ("fld", "field"),
    ("freq", "frequency"),
    ("gen", "general"),
    ("geo", "geographic"),
    ("gov", "government"),
    ("grp", "group"),
    ("hist", "history"),
    ("hr", "hour"),
    ("ht", "height"),
    ("idx", "index"),
    ("img", "image"),
    ("info", "information"),
    ("init", "initial"),
    ("inj", "injury"),
    ("ins", "insurance"),
    ("insp", "inspection"),
    ("inst", "institution"),
    ("inv", "inventory"),
    ("lang", "language"),
    ("lat", "latitude"),
    ("len", "length"),
    ("lic", "license"),
    ("loc", "location"),
    ("lon", "longitude"),
    ("lvl", "level"),
    ("max", "maximum"),
    ("med", "medical"),
    ("mem", "member"),
    ("mfr", "manufacturer"),
    ("mgr", "manager"),
    ("mgmt", "management"),
    ("min", "minimum"),
    ("misc", "miscellaneous"),
    ("mod", "module"),
    ("mon", "monitoring"),
    ("msg", "message"),
    ("mtg", "meeting"),
    ("natl", "national"),
    ("nbr", "number"),
    ("nm", "name"),
    ("no", "number"),
    ("num", "number"),
    ("obs", "observation"),
    ("ord", "order"),
    ("org", "organization"),
    ("orig", "original"),
    ("pct", "percent"),
    ("perf", "performance"),
    ("pers", "person"),
    ("pmt", "payment"),
    ("pos", "position"),
    ("pref", "preference"),
    ("prev", "previous"),
    ("prod", "product"),
    ("proj", "project"),
    ("prop", "property"),
    ("pt", "point"),
    ("pub", "public"),
    ("purch", "purchase"),
    ("qty", "quantity"),
    ("rcpt", "receipt"),
    ("rec", "record"),
    ("recv", "received"),
    ("ref", "reference"),
    ("reg", "region"),
    ("rep", "representative"),
    ("req", "request"),
    ("res", "resource"),
    ("rev", "revision"),
    ("rpt", "report"),
    ("rt", "route"),
    ("sched", "schedule"),
    ("sci", "scientific"),
    ("sec", "section"),
    ("seq", "sequence"),
    ("spec", "specification"),
    ("sp", "species"),
    ("src", "source"),
    ("stat", "status"),
    ("std", "standard"),
    ("stmt", "statement"),
    ("stud", "student"),
    ("subj", "subject"),
    ("sum", "summary"),
    ("svc", "service"),
    ("sys", "system"),
    ("tbl", "table"),
    ("tchr", "teacher"),
    ("tech", "technical"),
    ("temp", "temperature"),
    ("tlu", "table"),
    ("tot", "total"),
    ("trans", "transaction"),
    ("txn", "transaction"),
    ("typ", "type"),
    ("univ", "university"),
    ("upd", "update"),
    ("usr", "user"),
    ("util", "utility"),
    ("val", "value"),
    ("veg", "vegetation"),
    ("veh", "vehicle"),
    ("ver", "version"),
    ("vis", "visitor"),
    ("vol", "volume"),
    ("wgt", "weight"),
    ("wk", "week"),
    ("wt", "weight"),
    ("yr", "year"),
];

fn abbreviation_map() -> &'static HashMap<&'static str, &'static str> {
    static MAP: OnceLock<HashMap<&'static str, &'static str>> = OnceLock::new();
    MAP.get_or_init(|| CONVENTIONAL_ABBREVIATIONS.iter().copied().collect())
}

/// True when `token` (any case) is an acronym in common usage.
pub fn is_common_acronym(token: &str) -> bool {
    COMMON_ACRONYMS
        .iter()
        .any(|a| a.eq_ignore_ascii_case(token))
}

/// True when `token` is a recognizable-but-uncommon acronym (Low signal).
pub fn is_recognizable_acronym(token: &str) -> bool {
    RECOGNIZABLE_ACRONYMS
        .iter()
        .any(|a| a.eq_ignore_ascii_case(token))
}

/// The conventional expansion of `token` (lowercased lookup), if any.
pub fn common_abbreviation_expansion(token: &str) -> Option<&'static str> {
    let map = abbreviation_map();
    if token.bytes().all(|b| b.is_ascii_lowercase()) {
        map.get(token).copied()
    } else {
        map.get(token.to_ascii_lowercase().as_str()).copied()
    }
}

/// True when `token` has a conventional expansion.
pub fn is_conventional_abbreviation(token: &str) -> bool {
    common_abbreviation_expansion(token).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_acronyms_match_any_case() {
        assert!(is_common_acronym("ID"));
        assert!(is_common_acronym("id"));
        assert!(is_common_acronym("Gps"));
        assert!(!is_common_acronym("UTM"));
    }

    #[test]
    fn recognizable_acronyms() {
        assert!(is_recognizable_acronym("UTM"));
        assert!(is_recognizable_acronym("cpi"));
        assert!(!is_recognizable_acronym("XQZ"));
    }

    #[test]
    fn expansions() {
        assert_eq!(common_abbreviation_expansion("qty"), Some("quantity"));
        assert_eq!(common_abbreviation_expansion("QTY"), Some("quantity"));
        assert_eq!(common_abbreviation_expansion("veg"), Some("vegetation"));
        assert_eq!(common_abbreviation_expansion("zzz"), None);
    }

    #[test]
    fn expansions_are_dictionary_words() {
        for (_, full) in CONVENTIONAL_ABBREVIATIONS {
            // Multi-word expansions are not used; every target must be a word
            // the dictionary knows, so the expander's outputs are Regular.
            assert!(
                crate::dictionary::is_dictionary_word(full) || full.contains(' '),
                "expansion not in dictionary: {full}"
            );
        }
    }

    #[test]
    fn no_duplicate_abbreviations() {
        let mut seen = std::collections::HashSet::new();
        for (abbr, _) in CONVENTIONAL_ABBREVIATIONS {
            assert!(seen.insert(*abbr), "duplicate abbreviation: {abbr}");
        }
    }
}
