//! Multinomial logistic-regression classifier (the finetuned-model stand-in).
//!
//! Trained with mini-batch SGD + L2 regularization on the engineered feature
//! vectors of [`crate::features`]. Deterministic given the seed. This is the
//! substitute for the paper's finetuned GPT-3.5 / CANINE classifiers; the
//! `+TG` variants correspond to [`FeatureConfig::default`] (tagging features
//! on) and the plain variants to [`FeatureConfig::without_tagging`].

use crate::category::Naturalness;
use crate::features::{featurize, FeatureConfig};
use crate::{Classifier, LabeledIdentifier};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Shuffle seed.
    pub seed: u64,
    /// Feature configuration.
    pub features: FeatureConfig,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 60,
            learning_rate: 0.15,
            l2: 1e-4,
            seed: 7,
            features: FeatureConfig::default(),
        }
    }
}

/// A trained softmax classifier: one weight vector per class.
#[derive(Debug, Clone)]
pub struct SoftmaxClassifier {
    name: String,
    weights: [Vec<f64>; 3],
    features: FeatureConfig,
}

fn softmax3(logits: [f64; 3]) -> [f64; 3] {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps = logits.map(|l| (l - max).exp());
    let sum: f64 = exps.iter().sum();
    exps.map(|e| e / sum)
}

impl SoftmaxClassifier {
    /// Train on labeled identifiers.
    pub fn train(name: &str, data: &[LabeledIdentifier], config: TrainConfig) -> Self {
        let examples: Vec<(Vec<f64>, usize)> = data
            .iter()
            .map(|l| (featurize(&l.text, config.features), l.label.index()))
            .collect();
        let dim = examples.first().map_or(1, |(f, _)| f.len());
        let mut weights = [vec![0.0; dim], vec![0.0; dim], vec![0.0; dim]];
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..examples.len()).collect();

        for epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            // Simple learning-rate decay.
            let lr = config.learning_rate / (1.0 + 0.05 * epoch as f64);
            for &i in &order {
                let (x, y) = &examples[i];
                let logits = [
                    dot(&weights[0], x),
                    dot(&weights[1], x),
                    dot(&weights[2], x),
                ];
                let probs = softmax3(logits);
                for (k, w) in weights.iter_mut().enumerate() {
                    let err = probs[k] - if k == *y { 1.0 } else { 0.0 };
                    for (wj, xj) in w.iter_mut().zip(x.iter()) {
                        *wj -= lr * (err * xj + config.l2 * *wj);
                    }
                }
            }
        }
        SoftmaxClassifier { name: name.to_owned(), weights, features: config.features }
    }

    /// Class probabilities for an identifier, ordered `[Regular, Low, Least]`.
    pub fn probabilities(&self, identifier: &str) -> [f64; 3] {
        let x = featurize(identifier, self.features);
        softmax3([
            dot(&self.weights[0], &x),
            dot(&self.weights[1], &x),
            dot(&self.weights[2], &x),
        ])
    }

    /// The feature configuration the model was trained with.
    pub fn feature_config(&self) -> FeatureConfig {
        self.features
    }

    /// Learned weights (per class) for inspection.
    pub fn weights(&self) -> &[Vec<f64>; 3] {
        &self.weights
    }
}

fn dot(w: &[f64], x: &[f64]) -> f64 {
    w.iter().zip(x).map(|(a, b)| a * b).sum()
}

impl Classifier for SoftmaxClassifier {
    fn name(&self) -> &str {
        &self.name
    }

    fn classify(&self, identifier: &str) -> Naturalness {
        let probs = self.probabilities(identifier);
        let mut best = 0;
        for k in 1..3 {
            if probs[k] > probs[best] {
                best = k;
            }
        }
        Naturalness::from_index(best).expect("index < 3")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data() -> Vec<LabeledIdentifier> {
        let regular = [
            "vegetation_height", "service_name", "airbag", "ModelYear", "common_name",
            "water_temperature", "school_district", "employee_count", "species", "location",
            "observation_date", "teacher_name", "crash_severity", "invoice_total",
        ];
        let low = [
            "veg_ht_avg", "svc_nm", "AccountChk", "RecvAsst", "obs_cnt", "sch_dist",
            "emp_no", "loc_cd", "tchr_nm", "inv_tot", "Coord_Syst", "tbl_MicroHabitat",
            "wtr_temp", "crash_sev",
        ];
        let least = [
            "VgHt", "AdCtTxIRWT", "COGM_Act", "DfltSlp", "FNDAbs", "JKWGT12", "EMSGCSEYE",
            "XQZR", "KLMN2", "TTRB", "ZzKp", "QRSN", "WXYB", "PQRM",
        ];
        let mut data = Vec::new();
        for r in regular {
            data.push(LabeledIdentifier::new(r, Naturalness::Regular));
        }
        for l in low {
            data.push(LabeledIdentifier::new(l, Naturalness::Low));
        }
        for l in least {
            data.push(LabeledIdentifier::new(l, Naturalness::Least));
        }
        data
    }

    #[test]
    fn learns_toy_separation() {
        let data = toy_data();
        let clf = SoftmaxClassifier::train("test", &data, TrainConfig::default());
        let correct = data
            .iter()
            .filter(|l| clf.classify(&l.text) == l.label)
            .count();
        assert!(
            correct as f64 / data.len() as f64 > 0.8,
            "train accuracy {correct}/{}",
            data.len()
        );
    }

    #[test]
    fn generalizes_to_unseen() {
        let clf = SoftmaxClassifier::train("test", &toy_data(), TrainConfig::default());
        assert_eq!(clf.classify("student_count"), Naturalness::Regular);
        assert_eq!(clf.classify("XjQw"), Naturalness::Least);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let clf = SoftmaxClassifier::train("test", &toy_data(), TrainConfig::default());
        for id in ["vegetation", "VgHt", "obs_cnt", ""] {
            let p = clf.probabilities(id);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SoftmaxClassifier::train("a", &toy_data(), TrainConfig::default());
        let b = SoftmaxClassifier::train("b", &toy_data(), TrainConfig::default());
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn empty_training_data_is_safe() {
        let clf = SoftmaxClassifier::train("empty", &[], TrainConfig::default());
        // Untrained weights → uniform prediction, but no panic.
        let _ = clf.classify("anything");
    }

    #[test]
    fn softmax3_is_normalized() {
        let p = softmax3([1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }
}
