//! Classifier evaluation: confusion matrix, accuracy, macro P/R/F1 (Table 5).

use crate::category::Naturalness;
use crate::{Classifier, LabeledIdentifier};

/// 3×3 confusion matrix, `counts[gold][predicted]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Raw counts indexed by [`Naturalness::index`].
    pub counts: [[usize; 3]; 3],
}

impl ConfusionMatrix {
    /// Record one (gold, predicted) observation.
    pub fn record(&mut self, gold: Naturalness, predicted: Naturalness) {
        self.counts[gold.index()][predicted.index()] += 1;
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..3).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Per-class precision: `tp / (tp + fp)`, 0 when the class is never
    /// predicted.
    pub fn precision(&self, class: Naturalness) -> f64 {
        let k = class.index();
        let tp = self.counts[k][k];
        let predicted: usize = (0..3).map(|g| self.counts[g][k]).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Per-class recall: `tp / (tp + fn)`, 0 when the class never occurs.
    pub fn recall(&self, class: Naturalness) -> f64 {
        let k = class.index();
        let tp = self.counts[k][k];
        let gold: usize = self.counts[k].iter().sum();
        if gold == 0 {
            0.0
        } else {
            tp as f64 / gold as f64
        }
    }

    /// Per-class F1.
    pub fn f1(&self, class: Naturalness) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged precision over classes present in the gold data.
    pub fn macro_precision(&self) -> f64 {
        self.macro_over(|c| self.precision(c))
    }

    /// Macro-averaged recall.
    pub fn macro_recall(&self) -> f64 {
        self.macro_over(|c| self.recall(c))
    }

    /// Macro-averaged F1.
    pub fn macro_f1(&self) -> f64 {
        self.macro_over(|c| self.f1(c))
    }

    fn macro_over(&self, f: impl Fn(Naturalness) -> f64) -> f64 {
        let present: Vec<Naturalness> = Naturalness::ALL
            .into_iter()
            .filter(|c| self.counts[c.index()].iter().sum::<usize>() > 0)
            .collect();
        if present.is_empty() {
            return 0.0;
        }
        present.iter().map(|&c| f(c)).sum::<f64>() / present.len() as f64
    }
}

/// One Table 5 row: a classifier's aggregate scores on a test set.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifierReport {
    /// Classifier display name.
    pub name: String,
    /// Overall accuracy.
    pub accuracy: f64,
    /// Macro precision.
    pub precision: f64,
    /// Macro recall.
    pub recall: f64,
    /// Macro F1.
    pub f1: f64,
    /// The underlying confusion matrix.
    pub confusion: ConfusionMatrix,
}

/// Evaluate a classifier against a labeled test set.
pub fn evaluate_classifier(
    classifier: &dyn Classifier,
    test: &[LabeledIdentifier],
) -> ClassifierReport {
    let mut confusion = ConfusionMatrix::default();
    for ex in test {
        confusion.record(ex.label, classifier.classify(&ex.text));
    }
    ClassifierReport {
        name: classifier.name().to_owned(),
        accuracy: confusion.accuracy(),
        precision: confusion.macro_precision(),
        recall: confusion.macro_recall(),
        f1: confusion.macro_f1(),
        confusion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perfect_matrix() -> ConfusionMatrix {
        let mut m = ConfusionMatrix::default();
        for c in Naturalness::ALL {
            for _ in 0..10 {
                m.record(c, c);
            }
        }
        m
    }

    #[test]
    fn perfect_scores_one() {
        let m = perfect_matrix();
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.macro_precision(), 1.0);
        assert_eq!(m.macro_recall(), 1.0);
        assert_eq!(m.macro_f1(), 1.0);
        assert_eq!(m.total(), 30);
    }

    #[test]
    fn empty_matrix_is_zero() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.macro_f1(), 0.0);
    }

    #[test]
    fn hand_computed_example() {
        // gold Regular: 2 correct, 1 predicted Low.
        // gold Low: 1 correct, 1 predicted Least.
        let mut m = ConfusionMatrix::default();
        m.record(Naturalness::Regular, Naturalness::Regular);
        m.record(Naturalness::Regular, Naturalness::Regular);
        m.record(Naturalness::Regular, Naturalness::Low);
        m.record(Naturalness::Low, Naturalness::Low);
        m.record(Naturalness::Low, Naturalness::Least);
        assert!((m.accuracy() - 3.0 / 5.0).abs() < 1e-12);
        assert!((m.recall(Naturalness::Regular) - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.precision(Naturalness::Low) - 0.5).abs() < 1e-12);
        assert_eq!(m.precision(Naturalness::Least), 0.0);
        // Least has no gold rows, so macro averages over 2 classes.
        let expected_recall = (2.0 / 3.0 + 0.5) / 2.0;
        assert!((m.macro_recall() - expected_recall).abs() < 1e-12);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let mut m = ConfusionMatrix::default();
        m.record(Naturalness::Regular, Naturalness::Regular);
        m.record(Naturalness::Regular, Naturalness::Low);
        m.record(Naturalness::Low, Naturalness::Regular);
        m.record(Naturalness::Low, Naturalness::Low);
        let p = m.precision(Naturalness::Regular);
        let r = m.recall(Naturalness::Regular);
        assert!((m.f1(Naturalness::Regular) - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn evaluate_runs_classifier() {
        struct Always(Naturalness);
        impl Classifier for Always {
            fn name(&self) -> &str {
                "always"
            }
            fn classify(&self, _: &str) -> Naturalness {
                self.0
            }
        }
        let test = vec![
            LabeledIdentifier::new("a", Naturalness::Regular),
            LabeledIdentifier::new("b", Naturalness::Low),
        ];
        let report = evaluate_classifier(&Always(Naturalness::Regular), &test);
        assert_eq!(report.name, "always");
        assert!((report.accuracy - 0.5).abs() < 1e-12);
    }
}
