//! Threshold classifier over the appendix B.1 heuristic score.

use crate::category::Naturalness;
use crate::Classifier;
use snails_lexicon::heuristic::HeuristicScorer;

/// Classify by thresholding the continuous heuristic naturalness score.
///
/// The paper reports that this heuristic approach loses to ML classification
/// on recall/precision/F1; it appears in our Table 5 reproduction as the
/// baseline row.
#[derive(Debug)]
pub struct HeuristicClassifier {
    scorer: HeuristicScorer,
    /// Scores at or above this are Regular.
    pub regular_threshold: f64,
    /// Scores at or above this (but below `regular_threshold`) are Low.
    pub low_threshold: f64,
}

impl Default for HeuristicClassifier {
    fn default() -> Self {
        HeuristicClassifier {
            scorer: HeuristicScorer::default(),
            regular_threshold: 0.85,
            low_threshold: 0.45,
        }
    }
}

impl HeuristicClassifier {
    /// The continuous score in `[0, 1]`.
    pub fn score(&self, identifier: &str) -> f64 {
        self.scorer.score_identifier(identifier)
    }
}

impl Classifier for HeuristicClassifier {
    fn name(&self) -> &str {
        "Heuristic-B1"
    }

    fn classify(&self, identifier: &str) -> Naturalness {
        let s = self.score(identifier);
        if s >= self.regular_threshold {
            Naturalness::Regular
        } else if s >= self.low_threshold {
            Naturalness::Low
        } else {
            Naturalness::Least
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_order_categories() {
        let clf = HeuristicClassifier::default();
        assert_eq!(clf.classify("vegetation_height"), Naturalness::Regular);
        assert_eq!(clf.classify("ZQXJ"), Naturalness::Least);
    }

    #[test]
    fn scores_monotone_with_level() {
        let clf = HeuristicClassifier::default();
        let regular = clf.score("vegetation_height");
        let least = clf.score("VgHt");
        assert!(regular > least);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(HeuristicClassifier::default().name(), "Heuristic-B1");
    }
}
