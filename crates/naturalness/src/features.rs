//! Feature extraction for naturalness classification.
//!
//! The paper's classifiers (finetuned GPT / CANINE) consume the raw
//! identifier, optionally with the character-tag sequence appended (`+TG`).
//! Our softmax substitute consumes engineered features computed from the same
//! signals the paper identifies as discriminative: dictionary membership,
//! abbreviation-table hits, vowel/consonant structure (what the tag sequence
//! encodes), and tokenizer fragmentation (token-to-character ratio).

use snails_lexicon::abbrev::{
    is_common_acronym, is_conventional_abbreviation, is_recognizable_acronym,
};
use snails_lexicon::dictionary::{dictionary, is_subsequence};
use snails_lexicon::split::split_identifier;
use snails_lexicon::tag::CharCounts;
use snails_tokenize::{token_character_ratio, tokenizer_for, TokenizerProfile};

/// Which feature groups to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureConfig {
    /// Include the character-tagging-derived features (`+TG` variants in
    /// Table 5). Without these the classifier only sees lexical features.
    pub char_tagging: bool,
    /// Include tokenizer features (token-to-character ratio).
    pub tokenizer: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig { char_tagging: true, tokenizer: true }
    }
}

impl FeatureConfig {
    /// Lexical-only configuration (the non-TG Table 5 rows).
    pub fn without_tagging() -> Self {
        FeatureConfig { char_tagging: false, tokenizer: true }
    }
}

/// Names of the features produced by [`featurize`] with the given config,
/// in order. Useful for inspecting learned weights.
pub fn feature_names(config: FeatureConfig) -> Vec<&'static str> {
    let mut names = vec![
        "bias",
        "token_in_dictionary",
        "common_acronym_frac",
        "recognizable_acronym_frac",
        "conventional_abbrev_frac",
        "expandable_frac",
        "opaque_frac",
        "numeric_frac",
        "mean_token_len",
        "short_token_frac",
    ];
    if config.char_tagging {
        names.extend(["vowel_ratio", "consonant_run_max", "special_frac", "digit_frac"]);
    }
    if config.tokenizer {
        names.extend(["tcr_gpt", "tcr_excess"]);
    }
    names
}

/// Longest run of consonant tag characters, normalized by length.
fn max_consonant_run(identifier: &str) -> f64 {
    let mut max_run = 0usize;
    let mut run = 0usize;
    let mut alpha = 0usize;
    for c in identifier.chars() {
        match snails_lexicon::tag::char_tag(c) {
            '+' => {
                run += 1;
                alpha += 1;
                max_run = max_run.max(run);
            }
            '^' => {
                run = 0;
                alpha += 1;
            }
            _ => run = 0,
        }
    }
    if alpha == 0 {
        0.0
    } else {
        max_run as f64 / alpha as f64
    }
}

/// Compute the feature vector for an identifier.
pub fn featurize(identifier: &str, config: FeatureConfig) -> Vec<f64> {
    let tokens = split_identifier(identifier);
    let dict = dictionary();
    let n_alpha_tokens = tokens.iter().filter(|t| !t.numeric).count().max(1) as f64;
    let n_tokens = tokens.len().max(1) as f64;

    let mut in_dict = 0usize;
    let mut common_acr = 0usize;
    let mut recog_acr = 0usize;
    let mut conv_abbrev = 0usize;
    let mut expandable = 0usize;
    let mut opaque = 0usize;
    let mut numeric = 0usize;
    let mut total_len = 0usize;
    let mut short = 0usize;

    for t in &tokens {
        total_len += t.text.len();
        if t.numeric {
            numeric += 1;
            continue;
        }
        if t.text.len() <= 2 {
            short += 1;
        }
        let lower = t.text.to_ascii_lowercase();
        if dict.contains(&lower) || is_common_acronym(&t.text) {
            in_dict += 1;
            if is_common_acronym(&t.text) && !dict.contains(&lower) {
                common_acr += 1;
            }
            continue;
        }
        if is_common_acronym(&t.text) {
            common_acr += 1;
            continue;
        }
        if is_recognizable_acronym(&t.text) {
            recog_acr += 1;
            continue;
        }
        if is_conventional_abbreviation(&t.text) {
            conv_abbrev += 1;
            continue;
        }
        // Is the token a plausible abbreviation of some dictionary word
        // (ordered-subsequence candidate exists)?
        let max_len = (lower.len() * 4).max(lower.len() + 2);
        let has_candidate = dict
            .iter()
            .any(|w| w.len() >= lower.len() && w.len() <= max_len && is_subsequence(&lower, w));
        if has_candidate {
            expandable += 1;
        } else {
            opaque += 1;
        }
    }

    let mut features = vec![
        1.0, // bias
        in_dict as f64 / n_alpha_tokens,
        common_acr as f64 / n_alpha_tokens,
        recog_acr as f64 / n_alpha_tokens,
        conv_abbrev as f64 / n_alpha_tokens,
        expandable as f64 / n_alpha_tokens,
        opaque as f64 / n_alpha_tokens,
        numeric as f64 / n_tokens,
        (total_len as f64 / n_tokens / 12.0).min(1.0),
        short as f64 / n_alpha_tokens,
    ];

    if config.char_tagging {
        let counts = CharCounts::of(identifier);
        let total = counts.total().max(1) as f64;
        features.push(counts.vowel_ratio());
        features.push(max_consonant_run(identifier));
        features.push(counts.specials as f64 / total);
        features.push(counts.digits as f64 / total);
    }

    if config.tokenizer {
        let tcr = token_character_ratio(tokenizer_for(TokenizerProfile::GptLike), identifier);
        features.push(tcr.min(1.0));
        // "Excess" fragmentation above one-token-per-word.
        let per_word = n_tokens / identifier.chars().count().max(1) as f64;
        features.push((tcr - per_word).clamp(-1.0, 1.0));
    }

    features
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_count_matches_names() {
        for config in [
            FeatureConfig::default(),
            FeatureConfig::without_tagging(),
            FeatureConfig { char_tagging: true, tokenizer: false },
            FeatureConfig { char_tagging: false, tokenizer: false },
        ] {
            assert_eq!(
                featurize("Veg_Ht2", config).len(),
                feature_names(config).len(),
                "{config:?}"
            );
        }
    }

    #[test]
    fn regular_identifier_features() {
        let f = featurize("vegetation_height", FeatureConfig::default());
        // token_in_dictionary = 1.0
        assert!((f[1] - 1.0).abs() < 1e-9);
        // opaque_frac = 0
        assert_eq!(f[6], 0.0);
    }

    #[test]
    fn least_identifier_features() {
        let f = featurize("VgHt", FeatureConfig::default());
        assert!(f[1] < 0.5, "in_dict {f:?}");
    }

    #[test]
    fn conventional_abbreviation_detected() {
        let f = featurize("cnt_recv", FeatureConfig::default());
        // Both tokens are conventional abbreviations (cnt, recv).
        assert!(f[4] > 0.9, "conv_abbrev {}", f[4]);
        // `qty` is a recognizable acronym (takes precedence over the
        // conventional-abbreviation table).
        let f = featurize("qty", FeatureConfig::default());
        assert!(f[3] > 0.9, "recog_acronym {}", f[3]);
    }

    #[test]
    fn numeric_fraction() {
        let f = featurize("CSI22", FeatureConfig::default());
        assert!(f[7] > 0.0);
    }

    #[test]
    fn vowel_ratio_distinguishes_abbreviations() {
        let full = featurize("height", FeatureConfig::default());
        let abbr = featurize("hght", FeatureConfig::default());
        let vowel_idx = feature_names(FeatureConfig::default())
            .iter()
            .position(|n| *n == "vowel_ratio")
            .unwrap();
        assert!(full[vowel_idx] > abbr[vowel_idx]);
    }

    #[test]
    fn empty_identifier_is_finite() {
        for v in featurize("", FeatureConfig::default()) {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn features_bounded() {
        for id in ["AdCtTxIRWT", "COGM_Act", "service_name", "x", "Research Staff", "42"] {
            for (i, v) in featurize(id, FeatureConfig::default()).iter().enumerate() {
                assert!(
                    (-1.0..=1.0).contains(v),
                    "feature {i} of {id}: {v}"
                );
            }
        }
    }
}
