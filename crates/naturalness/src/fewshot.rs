//! Few-shot prototype classifier (the few-shot LLM prompting stand-in).
//!
//! The paper's GPT-3.5/GPT-4 few-shot prompting (appendix B.6) shows the
//! model 25 labeled examples and asks for a label. We model the limited
//! supervision as a *nearest-centroid* classifier: the 25 examples are
//! featurized, per-class centroids computed, and queries labeled by closest
//! centroid. With so few examples the decision boundary is coarse, which
//! reproduces the Table 5 ordering (few-shot < finetuned).

use crate::category::Naturalness;
use crate::features::{featurize, FeatureConfig};
use crate::{Classifier, LabeledIdentifier};

/// Nearest-centroid classifier over a small example set.
#[derive(Debug, Clone)]
pub struct FewShotClassifier {
    name: String,
    centroids: [Option<Vec<f64>>; 3],
    features: FeatureConfig,
}

impl FewShotClassifier {
    /// Build from up to `limit` examples (the paper used 25).
    pub fn from_examples(
        name: &str,
        examples: &[LabeledIdentifier],
        limit: usize,
        features: FeatureConfig,
    ) -> Self {
        let mut sums: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut counts = [0usize; 3];
        for ex in examples.iter().take(limit) {
            let f = featurize(&ex.text, features);
            let k = ex.label.index();
            if sums[k].is_empty() {
                sums[k] = vec![0.0; f.len()];
            }
            for (s, x) in sums[k].iter_mut().zip(&f) {
                *s += x;
            }
            counts[k] += 1;
        }
        let centroids = [0, 1, 2].map(|k| {
            (counts[k] > 0).then(|| {
                sums[k].iter().map(|s| s / counts[k] as f64).collect::<Vec<f64>>()
            })
        });
        FewShotClassifier { name: name.to_owned(), centroids, features }
    }

    /// Number of classes with at least one example.
    pub fn covered_classes(&self) -> usize {
        self.centroids.iter().filter(|c| c.is_some()).count()
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl Classifier for FewShotClassifier {
    fn name(&self) -> &str {
        &self.name
    }

    fn classify(&self, identifier: &str) -> Naturalness {
        let f = featurize(identifier, self.features);
        let mut best: Option<(usize, f64)> = None;
        for (k, c) in self.centroids.iter().enumerate() {
            if let Some(c) = c {
                let d = sq_dist(c, &f);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((k, d));
                }
            }
        }
        best.and_then(|(k, _)| Naturalness::from_index(k))
            .unwrap_or(Naturalness::Regular)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn examples() -> Vec<LabeledIdentifier> {
        vec![
            LabeledIdentifier::new("vegetation_height", Naturalness::Regular),
            LabeledIdentifier::new("service_name", Naturalness::Regular),
            LabeledIdentifier::new("ModelYear", Naturalness::Regular),
            LabeledIdentifier::new("veg_ht", Naturalness::Low),
            LabeledIdentifier::new("svc_nm", Naturalness::Low),
            LabeledIdentifier::new("obs_cnt", Naturalness::Low),
            LabeledIdentifier::new("VgHt", Naturalness::Least),
            LabeledIdentifier::new("XQZR", Naturalness::Least),
            LabeledIdentifier::new("KJWT12", Naturalness::Least),
        ]
    }

    #[test]
    fn classifies_obvious_cases() {
        let clf =
            FewShotClassifier::from_examples("fs", &examples(), 25, FeatureConfig::default());
        assert_eq!(clf.classify("water_temperature"), Naturalness::Regular);
        assert_eq!(clf.classify("ZQXJ"), Naturalness::Least);
    }

    #[test]
    fn covered_classes_counts() {
        let clf =
            FewShotClassifier::from_examples("fs", &examples(), 25, FeatureConfig::default());
        assert_eq!(clf.covered_classes(), 3);
        let partial = FewShotClassifier::from_examples(
            "fs",
            &examples()[..3],
            25,
            FeatureConfig::default(),
        );
        assert_eq!(partial.covered_classes(), 1);
    }

    #[test]
    fn limit_is_respected() {
        // With limit 3, only Regular examples are seen → everything Regular.
        let clf =
            FewShotClassifier::from_examples("fs", &examples(), 3, FeatureConfig::default());
        assert_eq!(clf.classify("XQZR"), Naturalness::Regular);
    }

    #[test]
    fn no_examples_defaults_regular() {
        let clf = FewShotClassifier::from_examples("fs", &[], 25, FeatureConfig::default());
        assert_eq!(clf.classify("anything"), Naturalness::Regular);
        assert_eq!(clf.covered_classes(), 0);
    }
}
