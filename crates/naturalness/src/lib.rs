#![warn(missing_docs)]

//! # snails-naturalness
//!
//! The SNAILS naturalness taxonomy (§2.1), feature extraction, and the
//! classifier families compared in Table 5 (appendix B):
//!
//! * [`heuristic`] — the appendix B.1 dictionary heuristic with thresholds;
//! * [`fewshot`] — a 25-example nearest-centroid classifier standing in for
//!   few-shot LLM prompting;
//! * [`softmax`] — a trainable multinomial logistic-regression classifier
//!   standing in for the finetuned GPT/CANINE models, with and without the
//!   paper's character-tagging (`+TG`) feature set;
//! * [`combined`] — the combined-naturalness schema score (appendix B.2,
//!   Equation 5) and per-schema naturalness profiles;
//! * [`metrics`] — accuracy / macro precision / recall / F1 and confusion
//!   matrices for classifier comparison.

pub mod category;
pub mod combined;
pub mod features;
pub mod fewshot;
pub mod heuristic;
pub mod metrics;
pub mod prompts;
pub mod softmax;

pub use category::Naturalness;
pub use combined::{combined_naturalness, NaturalnessProfile};
pub use features::{feature_names, featurize, FeatureConfig};
pub use fewshot::FewShotClassifier;
pub use heuristic::HeuristicClassifier;
pub use metrics::{evaluate_classifier, ClassifierReport, ConfusionMatrix};
pub use softmax::{SoftmaxClassifier, TrainConfig};

/// A labeled identifier, the unit of Collections 1 and 2 (appendix B.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledIdentifier {
    /// The identifier text.
    pub text: String,
    /// Its gold naturalness category.
    pub label: Naturalness,
}

impl LabeledIdentifier {
    /// Construct a labeled example.
    pub fn new(text: impl Into<String>, label: Naturalness) -> Self {
        LabeledIdentifier { text: text.into(), label }
    }
}

/// Anything that can assign a naturalness category to an identifier.
pub trait Classifier {
    /// Classifier display name (Table 5 row label).
    fn name(&self) -> &str;
    /// Classify one identifier.
    fn classify(&self, identifier: &str) -> Naturalness;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_identifier_roundtrip() {
        let l = LabeledIdentifier::new("VgHt", Naturalness::Least);
        assert_eq!(l.text, "VgHt");
        assert_eq!(l.label, Naturalness::Least);
    }
}
