//! Combined naturalness (appendix B.2, Equation 5) and schema profiles.

use crate::category::Naturalness;

/// Proportions of a schema's identifiers in each naturalness category,
/// plus the derived combined score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaturalnessProfile {
    /// Identifier counts per category, indexed by [`Naturalness::index`].
    pub counts: [usize; 3],
}

impl NaturalnessProfile {
    /// Profile from per-identifier labels.
    pub fn from_labels(labels: impl IntoIterator<Item = Naturalness>) -> Self {
        let mut counts = [0usize; 3];
        for l in labels {
            counts[l.index()] += 1;
        }
        NaturalnessProfile { counts }
    }

    /// Total identifiers profiled.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Proportion of identifiers in `category` (0 when empty).
    pub fn proportion(&self, category: Naturalness) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.counts[category.index()] as f64 / total as f64
        }
    }

    /// Combined naturalness (Equation 5):
    /// `1.0·Regular + 0.5·Low + 0.0·Least`, in `[0, 1]`.
    pub fn combined(&self) -> f64 {
        Naturalness::ALL
            .iter()
            .map(|c| c.weight() * self.proportion(*c))
            .sum()
    }
}

/// One-shot combined naturalness over labels.
pub fn combined_naturalness(labels: impl IntoIterator<Item = Naturalness>) -> f64 {
    NaturalnessProfile::from_labels(labels).combined()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_regular_scores_one() {
        let score = combined_naturalness(vec![Naturalness::Regular; 5]);
        assert_eq!(score, 1.0);
    }

    #[test]
    fn all_least_scores_zero() {
        assert_eq!(combined_naturalness(vec![Naturalness::Least; 3]), 0.0);
    }

    #[test]
    fn mixed_weighted_average() {
        // 2 Regular, 1 Low, 1 Least → (2·1.0 + 1·0.5 + 1·0.0) / 4 = 0.625.
        let score = combined_naturalness(vec![
            Naturalness::Regular,
            Naturalness::Regular,
            Naturalness::Low,
            Naturalness::Least,
        ]);
        assert!((score - 0.625).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_is_zero() {
        let p = NaturalnessProfile::from_labels(std::iter::empty());
        assert_eq!(p.total(), 0);
        assert_eq!(p.combined(), 0.0);
        assert_eq!(p.proportion(Naturalness::Regular), 0.0);
    }

    #[test]
    fn proportions_sum_to_one() {
        let p = NaturalnessProfile::from_labels(vec![
            Naturalness::Regular,
            Naturalness::Low,
            Naturalness::Low,
            Naturalness::Least,
        ]);
        let sum: f64 = Naturalness::ALL.iter().map(|c| p.proportion(*c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(p.counts, [1, 2, 1]);
    }
}
