//! The 3-class naturalness taxonomy (§2.1).

use std::fmt;
use std::str::FromStr;

/// Discrete naturalness levels, from most to least natural.
///
/// * **Regular** — complete English words, or acronyms in common usage
///   (`airbag`, `AdaptiveCruiseControl`, `service_name`);
/// * **Low** — abbreviated words and less common but recognizable acronyms;
///   meaning inferable without documentation (`AccountChk`, `RecvAsst`);
/// * **Least** — indecipherable without external metadata (`AdCtTxIRWT`,
///   `DfltSlp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Naturalness {
    /// N3: meaning requires external documentation.
    Least,
    /// N2: abbreviated but recognizable.
    Low,
    /// N1: complete English words / common acronyms.
    Regular,
}

impl Naturalness {
    /// The three categories, most natural first (figure order).
    pub const ALL: [Naturalness; 3] =
        [Naturalness::Regular, Naturalness::Low, Naturalness::Least];

    /// The paper's N-label (`N1`/`N2`/`N3`).
    pub fn n_label(&self) -> &'static str {
        match self {
            Naturalness::Regular => "N1",
            Naturalness::Low => "N2",
            Naturalness::Least => "N3",
        }
    }

    /// Display name used in figures.
    pub fn display_name(&self) -> &'static str {
        match self {
            Naturalness::Regular => "Regular",
            Naturalness::Low => "Low",
            Naturalness::Least => "Least",
        }
    }

    /// Combined-naturalness weight (appendix B.2, Equation 5):
    /// Regular = 1.0, Low = 0.5, Least = 0.0.
    pub fn weight(&self) -> f64 {
        match self {
            Naturalness::Regular => 1.0,
            Naturalness::Low => 0.5,
            Naturalness::Least => 0.0,
        }
    }

    /// Dense index for array-backed statistics (Regular = 0).
    pub fn index(&self) -> usize {
        match self {
            Naturalness::Regular => 0,
            Naturalness::Low => 1,
            Naturalness::Least => 2,
        }
    }

    /// Inverse of [`Naturalness::index`].
    pub fn from_index(i: usize) -> Option<Naturalness> {
        Naturalness::ALL.get(i).copied()
    }

    /// One step less natural, saturating at `Least`.
    pub fn lower(&self) -> Naturalness {
        match self {
            Naturalness::Regular => Naturalness::Low,
            _ => Naturalness::Least,
        }
    }

    /// One step more natural, saturating at `Regular`.
    pub fn higher(&self) -> Naturalness {
        match self {
            Naturalness::Least => Naturalness::Low,
            _ => Naturalness::Regular,
        }
    }
}

impl fmt::Display for Naturalness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

impl FromStr for Naturalness {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "regular" | "n1" => Ok(Naturalness::Regular),
            "low" | "n2" => Ok(Naturalness::Low),
            "least" | "n3" => Ok(Naturalness::Least),
            other => Err(format!("unknown naturalness level: {other}")),
        }
    }
}

/// The four schema versions compared in the experiments: the identifiers as
/// found in the source database, plus the three modified virtual schemas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SchemaVariant {
    /// The source database's own identifiers.
    Native,
    /// All identifiers mapped to Regular naturalness.
    Regular,
    /// All identifiers mapped to Low naturalness.
    Low,
    /// All identifiers mapped to Least naturalness.
    Least,
}

impl SchemaVariant {
    /// All variants in figure order (Native, Regular, Low, Least).
    pub const ALL: [SchemaVariant; 4] = [
        SchemaVariant::Native,
        SchemaVariant::Regular,
        SchemaVariant::Low,
        SchemaVariant::Least,
    ];

    /// Display name.
    pub fn display_name(&self) -> &'static str {
        match self {
            SchemaVariant::Native => "Native",
            SchemaVariant::Regular => "Regular",
            SchemaVariant::Low => "Low",
            SchemaVariant::Least => "Least",
        }
    }

    /// The target naturalness level, `None` for Native.
    pub fn target_level(&self) -> Option<Naturalness> {
        match self {
            SchemaVariant::Native => None,
            SchemaVariant::Regular => Some(Naturalness::Regular),
            SchemaVariant::Low => Some(Naturalness::Low),
            SchemaVariant::Least => Some(Naturalness::Least),
        }
    }
}

impl fmt::Display for SchemaVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_match_equation_5() {
        assert_eq!(Naturalness::Regular.weight(), 1.0);
        assert_eq!(Naturalness::Low.weight(), 0.5);
        assert_eq!(Naturalness::Least.weight(), 0.0);
    }

    #[test]
    fn ordering_least_is_lowest() {
        assert!(Naturalness::Least < Naturalness::Low);
        assert!(Naturalness::Low < Naturalness::Regular);
    }

    #[test]
    fn n_labels() {
        assert_eq!(Naturalness::Regular.n_label(), "N1");
        assert_eq!(Naturalness::Low.n_label(), "N2");
        assert_eq!(Naturalness::Least.n_label(), "N3");
    }

    #[test]
    fn index_round_trip() {
        for n in Naturalness::ALL {
            assert_eq!(Naturalness::from_index(n.index()), Some(n));
        }
        assert_eq!(Naturalness::from_index(3), None);
    }

    #[test]
    fn parse_from_str() {
        assert_eq!("regular".parse::<Naturalness>().unwrap(), Naturalness::Regular);
        assert_eq!("N2".parse::<Naturalness>().unwrap(), Naturalness::Low);
        assert_eq!("LEAST".parse::<Naturalness>().unwrap(), Naturalness::Least);
        assert!("mid".parse::<Naturalness>().is_err());
    }

    #[test]
    fn lower_and_higher_saturate() {
        assert_eq!(Naturalness::Regular.lower(), Naturalness::Low);
        assert_eq!(Naturalness::Low.lower(), Naturalness::Least);
        assert_eq!(Naturalness::Least.lower(), Naturalness::Least);
        assert_eq!(Naturalness::Least.higher(), Naturalness::Low);
        assert_eq!(Naturalness::Regular.higher(), Naturalness::Regular);
    }

    #[test]
    fn variant_targets() {
        assert_eq!(SchemaVariant::Native.target_level(), None);
        assert_eq!(SchemaVariant::Low.target_level(), Some(Naturalness::Low));
        assert_eq!(SchemaVariant::ALL.len(), 4);
        assert_eq!(SchemaVariant::Least.to_string(), "Least");
    }
}
