//! The paper's LLM prompt formats for naturalness classification
//! (appendix B.6 / B.7).
//!
//! The simulated classifiers in this crate do not consume prompts, but the
//! released artifacts include them so the benchmark can be pointed at a real
//! hosted model: [`few_shot_prompt`] renders the GPT-3.5/4 few-shot
//! classification prompt verbatim, and [`finetune_line`] renders the Davinci
//! fine-tuning JSONL lines (with or without character tagging).

use crate::category::Naturalness;
use crate::LabeledIdentifier;
use snails_lexicon::tag::tag_identifier;

/// The fixed instruction header of the appendix B.6 few-shot prompt.
pub const FEW_SHOT_HEADER: &str = "The following is a list of database identifiers and labels \
that indicate how closely they resemble natural english words:\n\
N1: most natural english words\n\
N2: second most natural english words (e.g. abbreviations or combinations of \
natural words and acronyms)\n\
N3: third most natural english words (e.g. very short abbreviations with \
obscured meaning or acronyms)\n";

/// Render the appendix B.6 few-shot classification prompt: the instruction
/// header, `examples` (the paper used 25), and the target identifier with a
/// trailing empty label for completion.
pub fn few_shot_prompt(examples: &[LabeledIdentifier], target: &str) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str(FEW_SHOT_HEADER);
    for ex in examples {
        out.push_str(&format!(
            "\nidentifier: {}\nLabel: {}\n",
            ex.text,
            ex.label.n_label()
        ));
    }
    out.push_str(&format!("\nidentifier: {target}\nLabel:"));
    out
}

/// Render one appendix B.7 fine-tuning JSONL line:
/// `{"prompt":"ADDRESS ^+++^++ ->","completion":" N1"}` with tagging, or the
/// untagged `{"prompt":"ADDRESS ->","completion":" N1"}` variant.
pub fn finetune_line(identifier: &str, label: Naturalness, tagging: bool) -> String {
    let prompt = if tagging {
        format!("{identifier} {} ->", tag_identifier(identifier))
    } else {
        format!("{identifier} ->")
    };
    format!(
        "{{\"prompt\":\"{}\",\"completion\":\" {}\"}}",
        prompt.replace('"', "\\\""),
        label.n_label()
    )
}

/// Render a whole fine-tuning collection as JSONL.
pub fn finetune_jsonl(data: &[LabeledIdentifier], tagging: bool) -> String {
    let mut out = String::new();
    for ex in data {
        out.push_str(&finetune_line(&ex.text, ex.label, tagging));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn few_shot_prompt_matches_paper_format() {
        let examples = vec![
            LabeledIdentifier::new("CASENO", Naturalness::Regular),
            LabeledIdentifier::new("INJNO", Naturalness::Low),
            LabeledIdentifier::new("EMSGCSEYE", Naturalness::Least),
        ];
        let prompt = few_shot_prompt(&examples, "VgHt");
        assert!(prompt.starts_with("The following is a list of database identifiers"));
        assert!(prompt.contains("identifier: CASENO\nLabel: N1"));
        assert!(prompt.contains("identifier: INJNO\nLabel: N2"));
        assert!(prompt.contains("identifier: EMSGCSEYE\nLabel: N3"));
        assert!(prompt.ends_with("identifier: VgHt\nLabel:"));
    }

    #[test]
    fn finetune_line_matches_paper_excerpt() {
        // Appendix B.7: {"prompt":"ADDRESS ^+++^++ ->","completion":" N1"}
        assert_eq!(
            finetune_line("ADDRESS", Naturalness::Regular, true),
            r#"{"prompt":"ADDRESS ^+++^++ ->","completion":" N1"}"#
        );
        assert_eq!(
            finetune_line("AIS", Naturalness::Least, true),
            r#"{"prompt":"AIS ^^+ ->","completion":" N3"}"#
        );
        assert_eq!(
            finetune_line("BACKBPILL", Naturalness::Low, false),
            r#"{"prompt":"BACKBPILL ->","completion":" N2"}"#
        );
    }

    #[test]
    fn jsonl_has_one_line_per_example() {
        let data = vec![
            LabeledIdentifier::new("a", Naturalness::Regular),
            LabeledIdentifier::new("b", Naturalness::Low),
        ];
        let jsonl = finetune_jsonl(&data, false);
        assert_eq!(jsonl.lines().count(), 2);
    }
}
