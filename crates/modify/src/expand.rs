//! The expander (increasing naturalness, appendix C.2).
//!
//! Expansion resolves each token of an abbreviated identifier to a full
//! English word, consulting in priority order:
//!
//! 1. the conventional-abbreviation table (`qty → quantity`);
//! 2. the database's metadata / data dictionary via context-window retrieval
//!    (the paper's GPT-with-metadata-lookup, rebuilt without the LLM: the
//!    candidate is the most frequent context word that starts with the same
//!    letter and contains the token as an ordered subsequence);
//! 3. dictionary-wide ordered-subsequence search, scored by edit distance;
//! 4. fall back to the token unchanged.
//!
//! Output is always a snake_case Regular-naturalness identifier, matching
//! the `num_teach_inexp → number_of_teachers_inexperienced` style of the
//! paper's worked example (without the filler words — we expand 1:1).

use crate::metadata::MetadataIndex;
use snails_lexicon::abbrev::common_abbreviation_expansion;
use snails_lexicon::dictionary::{dictionary, is_dictionary_word, is_subsequence};
use snails_lexicon::edit::levenshtein;
use snails_lexicon::split_identifier;
use snails_naturalness::Naturalness;

/// Abbreviate a word at Low (`least = false`) or Least (`least = true`)
/// level — the candidate generator for context segmentation.
fn snails_modify_abbrev(word: &str, least: bool) -> String {
    crate::abbrev::abbreviate_word(
        word,
        if least { Naturalness::Least } else { Naturalness::Low },
    )
}

/// Identifier expander with optional metadata augmentation.
#[derive(Debug, Default)]
pub struct Expander {
    metadata: Option<MetadataIndex>,
    /// Context window radius (lines either side of a hit).
    pub radius: usize,
    /// Maximum retrieved windows per term (the paper used up to ten).
    pub max_windows: usize,
}

/// How a token was resolved, for expansion-quality reporting (appendix C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpansionSource {
    /// Already a dictionary word or common acronym.
    AlreadyNatural,
    /// Conventional-abbreviation table.
    Conventional,
    /// Metadata context retrieval.
    Metadata,
    /// Dictionary subsequence search.
    Dictionary,
    /// Could not expand; token kept.
    Unresolved,
}

impl Expander {
    /// Expander without metadata (table + dictionary only).
    pub fn new() -> Self {
        Expander { metadata: None, radius: 1, max_windows: 10 }
    }

    /// Expander augmented with a metadata index.
    pub fn with_metadata(metadata: MetadataIndex) -> Self {
        Expander { metadata: Some(metadata), radius: 1, max_windows: 10 }
    }

    /// Words from the metadata context windows of `term`, dictionary words
    /// only, in frequency order.
    fn context_words(&self, term: &str) -> Vec<String> {
        let Some(meta) = &self.metadata else { return Vec::new() };
        let mut words: Vec<(String, usize)> = meta
            .context_vocabulary(term, self.radius, self.max_windows)
            .into_iter()
            .filter(|(w, _)| w.len() >= 3 && is_dictionary_word(w))
            .collect();
        words.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        words.into_iter().map(|(w, _)| w).collect()
    }

    /// Segment a flat multi-word skeleton against context words: each
    /// segment must be a context word or its Low/Least abbreviation
    /// (`mdct` + context {model, category} → `model_category`). This handles
    /// the SAP-style UPPERFLAT identifiers whose tokens encode several words.
    fn segment_against_context(&self, lower: &str, context: &[String]) -> Option<Vec<String>> {
        fn rec(rest: &str, context: &[String], depth: usize, out: &mut Vec<String>) -> bool {
            if rest.is_empty() {
                return !out.is_empty();
            }
            if depth >= 6 {
                return false;
            }
            for w in context {
                // Longest candidates first: the full word, then Low, then
                // Least abbreviations.
                let candidates = [
                    w.clone(),
                    snails_modify_abbrev(w, false),
                    snails_modify_abbrev(w, true),
                ];
                for cand in candidates {
                    if cand.len() >= 2 && rest.starts_with(cand.as_str()) {
                        out.push(w.clone());
                        if rec(&rest[cand.len()..], context, depth + 1, out) {
                            return true;
                        }
                        out.pop();
                    }
                }
            }
            false
        }
        let mut out = Vec::new();
        rec(lower, context, 0, &mut out).then_some(out)
    }

    /// Expand one token, reporting the resolution source.
    pub fn expand_token(&self, token: &str, full_identifier: &str) -> (String, ExpansionSource) {
        let lower = token.to_ascii_lowercase();
        if lower.chars().all(|c| c.is_ascii_digit()) {
            return (lower, ExpansionSource::AlreadyNatural);
        }
        if is_dictionary_word(&lower) || snails_lexicon::is_common_acronym(token) {
            return (lower, ExpansionSource::AlreadyNatural);
        }
        if let Some(full) = common_abbreviation_expansion(&lower) {
            return (full.to_owned(), ExpansionSource::Conventional);
        }
        // Flat multi-word skeletons: segment against the metadata context.
        if self.metadata.is_some() {
            for term in [full_identifier, token] {
                let context = self.context_words(term);
                if context.is_empty() {
                    continue;
                }
                if let Some(words) = self.segment_against_context(&lower, &context) {
                    return (words.join("_"), ExpansionSource::Metadata);
                }
            }
        }
        // Metadata retrieval: look up windows for the whole identifier (the
        // data dictionary keys on identifiers) and for the token itself.
        if let Some(meta) = &self.metadata {
            let mut best: Option<(String, usize)> = None;
            for term in [full_identifier, token] {
                let vocab = meta.context_vocabulary(term, self.radius, self.max_windows);
                for (word, count) in vocab {
                    if word.len() <= lower.len()
                        || !word.starts_with(lower.chars().next().unwrap_or('\0'))
                        || !is_subsequence(&lower, &word)
                        || !is_dictionary_word(&word)
                    {
                        continue;
                    }
                    let better = match &best {
                        None => true,
                        Some((bw, bc)) => {
                            count > *bc || (count == *bc && word.as_str() < bw.as_str())
                        }
                    };
                    if better {
                        best = Some((word, count));
                    }
                }
                if best.is_some() {
                    break;
                }
            }
            if let Some((word, _)) = best {
                return (word, ExpansionSource::Metadata);
            }
        }
        // Dictionary-wide subsequence search, min edit distance, shortest,
        // then lexicographic for determinism.
        let dict = dictionary();
        let max_len = (lower.len() * 4).max(lower.len() + 2);
        let mut best: Option<(&str, usize)> = None;
        for w in dict.iter() {
            if w.len() < lower.len() + 1 || w.len() > max_len {
                continue;
            }
            if !w.starts_with(lower.chars().next().unwrap_or('\0')) {
                continue;
            }
            if !is_subsequence(&lower, w) {
                continue;
            }
            let d = levenshtein(&lower, w);
            let better = match best {
                None => true,
                Some((bw, bd)) => d < bd || (d == bd && (w.len(), w) < (bw.len(), bw)),
            };
            if better {
                best = Some((w, d));
            }
        }
        match best {
            Some((w, _)) => (w.to_owned(), ExpansionSource::Dictionary),
            None => (lower, ExpansionSource::Unresolved),
        }
    }

    /// Expand a full identifier to a snake_case Regular rendering.
    pub fn expand_identifier(&self, identifier: &str) -> String {
        let tokens = split_identifier(identifier);
        if tokens.is_empty() {
            return identifier.to_owned();
        }
        let words: Vec<String> = tokens
            .iter()
            .map(|t| self.expand_token(&t.text, identifier).0)
            .collect();
        words.join("_")
    }

    /// Expansion sources for each token (quality instrumentation).
    pub fn expansion_report(&self, identifier: &str) -> Vec<(String, ExpansionSource)> {
        split_identifier(identifier)
            .iter()
            .map(|t| {
                let (word, src) = self.expand_token(&t.text, identifier);
                (word, src)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_expansion() {
        let e = Expander::new();
        let (w, src) = e.expand_token("qty", "ord_qty");
        assert_eq!(w, "quantity");
        assert_eq!(src, ExpansionSource::Conventional);
    }

    #[test]
    fn already_natural_pass_through() {
        let e = Expander::new();
        let (w, src) = e.expand_token("height", "veg_height");
        assert_eq!(w, "height");
        assert_eq!(src, ExpansionSource::AlreadyNatural);
        let (_, src) = e.expand_token("GPS", "gps_point");
        assert_eq!(src, ExpansionSource::AlreadyNatural);
    }

    #[test]
    fn metadata_resolves_opaque_tokens() {
        let meta = MetadataIndex::from_text(
            "VgHt: the vegetation height in meters measured at plot center\n",
        );
        let e = Expander::with_metadata(meta);
        let expanded = e.expand_identifier("VgHt");
        assert_eq!(expanded, "vegetation_height");
    }

    #[test]
    fn paper_style_nysed_example() {
        // Appendix C.2: num_teach_inexp expands via a data-dictionary line.
        let meta = MetadataIndex::from_text(
            "NUM_TEACH_INEXP Number of teachers with fewer than four years of \
             experience in their positions\n",
        );
        let e = Expander::with_metadata(meta);
        let out = e.expand_identifier("num_teach_inexp");
        assert!(out.starts_with("number_teacher"), "{out}");
    }

    #[test]
    fn dictionary_fallback() {
        let e = Expander::new();
        let (w, src) = e.expand_token("vgtn", "vgtn");
        assert_eq!(w, "vegetation");
        assert_eq!(src, ExpansionSource::Dictionary);
    }

    #[test]
    fn unresolvable_kept() {
        let e = Expander::new();
        let (w, src) = e.expand_token("xqzj", "xqzj");
        assert_eq!(w, "xqzj");
        assert_eq!(src, ExpansionSource::Unresolved);
    }

    #[test]
    fn numbers_pass_through() {
        let e = Expander::new();
        let (w, src) = e.expand_token("22", "CSI22");
        assert_eq!(w, "22");
        assert_eq!(src, ExpansionSource::AlreadyNatural);
    }

    #[test]
    fn full_identifier_snake_case() {
        let e = Expander::new();
        assert_eq!(e.expand_identifier("WtrTemp"), "water_temperature");
    }

    #[test]
    fn expansion_report_lists_tokens() {
        let e = Expander::new();
        let report = e.expansion_report("qty_xqzj");
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].1, ExpansionSource::Conventional);
        assert_eq!(report[1].1, ExpansionSource::Unresolved);
    }

    #[test]
    fn deterministic() {
        let e = Expander::new();
        assert_eq!(e.expand_identifier("SpCd"), e.expand_identifier("SpCd"));
    }

    #[test]
    fn empty_identifier() {
        let e = Expander::new();
        assert_eq!(e.expand_identifier(""), "");
    }
}
