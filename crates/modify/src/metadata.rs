//! Word-indexed metadata documents (the RAG substrate, appendix C.2).
//!
//! The paper's expander reads `.pdf`/`.xml`/`.csv` data dictionaries, indexes
//! them at the word level (word → file locations), and retrieves
//! context-window excerpts around each occurrence of an identifier. This
//! module provides the same service over plain-text documents: `snails-data`
//! generates a data dictionary per database, and [`crate::Expander`] resolves
//! opaque identifiers against it.

use std::collections::HashMap;

/// A line-oriented metadata document with a word-level inverted index.
#[derive(Debug, Clone, Default)]
pub struct MetadataIndex {
    lines: Vec<String>,
    /// lowercase word → line numbers containing it.
    index: HashMap<String, Vec<usize>>,
}

impl MetadataIndex {
    /// Build from document text (typically a generated data dictionary).
    pub fn from_text(text: &str) -> Self {
        let mut doc = MetadataIndex::default();
        for line in text.lines() {
            doc.push_line(line);
        }
        doc
    }

    /// Append one line and index its words.
    pub fn push_line(&mut self, line: &str) {
        let line_no = self.lines.len();
        for word in line
            .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .filter(|w| !w.is_empty())
        {
            self.index
                .entry(word.to_ascii_lowercase())
                .or_default()
                .push(line_no);
        }
        self.lines.push(line.to_owned());
    }

    /// Number of indexed lines.
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// Number of distinct indexed words.
    pub fn vocabulary_size(&self) -> usize {
        self.index.len()
    }

    /// Line numbers where `term` occurs (case-insensitive exact word match).
    pub fn locations(&self, term: &str) -> &[usize] {
        self.index
            .get(&term.to_ascii_lowercase())
            .map_or(&[], Vec::as_slice)
    }

    /// Context windows around each occurrence of `term`: the matching line
    /// plus `radius` lines either side, up to `max_windows` excerpts (the
    /// paper retrieved "up to ten context window-length excerpts").
    pub fn context_windows(&self, term: &str, radius: usize, max_windows: usize) -> Vec<String> {
        let mut seen_centers = std::collections::HashSet::new();
        let mut windows = Vec::new();
        for &line_no in self.locations(term) {
            if windows.len() >= max_windows {
                break;
            }
            if !seen_centers.insert(line_no) {
                continue;
            }
            let start = line_no.saturating_sub(radius);
            let end = (line_no + radius + 1).min(self.lines.len());
            windows.push(self.lines[start..end].join(" "));
        }
        windows
    }

    /// All words occurring in the context windows of `term`, lowercased,
    /// with occurrence counts — the expander's candidate pool.
    pub fn context_vocabulary(
        &self,
        term: &str,
        radius: usize,
        max_windows: usize,
    ) -> HashMap<String, usize> {
        let mut vocab = HashMap::new();
        for window in self.context_windows(term, radius, max_windows) {
            for word in window
                .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .filter(|w| !w.is_empty())
            {
                *vocab.entry(word.to_ascii_lowercase()).or_insert(0) += 1;
            }
        }
        vocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetadataIndex {
        MetadataIndex::from_text(
            "Data dictionary for the vegetation monitoring database\n\
             VgHt: the vegetation height in meters, measured at plot center\n\
             SpCd: the species code assigned by the taxonomy committee\n\
             PltId: the plot identifier\n",
        )
    }

    #[test]
    fn indexes_words_case_insensitively() {
        let idx = sample();
        assert_eq!(idx.locations("vght"), &[1]);
        assert_eq!(idx.locations("VGHT"), &[1]);
        assert_eq!(idx.locations("vegetation"), &[0, 1]);
        assert!(idx.locations("absent").is_empty());
    }

    #[test]
    fn context_windows_include_neighbors() {
        let idx = sample();
        let windows = idx.context_windows("SpCd", 1, 10);
        assert_eq!(windows.len(), 1);
        assert!(windows[0].contains("species code"));
        assert!(windows[0].contains("vegetation height"), "radius line missing");
    }

    #[test]
    fn max_windows_respected() {
        let mut idx = MetadataIndex::default();
        for i in 0..20 {
            idx.push_line(&format!("term occurrence {i}"));
        }
        assert_eq!(idx.context_windows("term", 0, 5).len(), 5);
    }

    #[test]
    fn context_vocabulary_counts() {
        let idx = sample();
        let vocab = idx.context_vocabulary("VgHt", 0, 10);
        assert_eq!(vocab.get("vegetation"), Some(&1));
        assert_eq!(vocab.get("height"), Some(&1));
        assert!(!vocab.contains_key("species"));
    }

    #[test]
    fn counts() {
        let idx = sample();
        assert_eq!(idx.line_count(), 4);
        assert!(idx.vocabulary_size() > 10);
    }

    #[test]
    fn empty_document() {
        let idx = MetadataIndex::from_text("");
        assert_eq!(idx.line_count(), 0);
        assert!(idx.context_windows("x", 2, 5).is_empty());
    }
}
