//! Naturalness crosswalks (Artifact 4).
//!
//! A crosswalk maps every Native schema identifier to semantically
//! equivalent renderings at each naturalness level. Each Native identifier
//! is mapped to itself at its own level (§2.3: "we do not generate new
//! identifiers of the same naturalness as its native form"). The crosswalk
//! powers virtual schemas: prompts are *naturalized* (Native → variant) and
//! generated queries *denaturalized* (variant → Native) without instantiating
//! modified database instances.

use snails_naturalness::category::{Naturalness, SchemaVariant};
use snails_sql::IdentifierMap;
use std::collections::HashSet;

/// One identifier's renderings across all levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrosswalkEntry {
    /// The identifier as it exists in the source database.
    pub native: String,
    /// The Native identifier's own naturalness classification.
    pub native_level: Naturalness,
    /// Renderings indexed by [`Naturalness::index`]
    /// (`[Regular, Low, Least]`). The entry at `native_level` equals
    /// `native`.
    pub renderings: [String; 3],
    /// True when this identifier names a table (else a column).
    pub is_table: bool,
}

impl CrosswalkEntry {
    /// The rendering for a schema variant.
    pub fn rendering(&self, variant: SchemaVariant) -> &str {
        match variant.target_level() {
            None => &self.native,
            Some(level) => &self.renderings[level.index()],
        }
    }
}

/// A full-schema crosswalk.
#[derive(Debug, Clone, Default)]
pub struct Crosswalk {
    entries: Vec<CrosswalkEntry>,
    /// Uppercased native name → entry index (hot-path lookup).
    index: std::collections::HashMap<String, usize>,
}

impl PartialEq for Crosswalk {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl Crosswalk {
    /// Build from entries, de-duplicating colliding renderings per level by
    /// suffixing a discriminator (`_2`, `_3`, ...). Collisions would corrupt
    /// the identifier maps; real crosswalks are human-validated bijections,
    /// so the suffix path is rare.
    /// Renderings at an entry's *native* level are never altered (they must
    /// stay equal to the physical schema identifier); native names are
    /// claimed first, then colliding virtual renderings are suffixed.
    pub fn new(mut entries: Vec<CrosswalkEntry>) -> Self {
        for level in 0..3 {
            let mut seen: HashSet<String> = HashSet::new();
            for e in &entries {
                if e.native_level.index() == level {
                    seen.insert(e.renderings[level].to_ascii_uppercase());
                }
            }
            for e in &mut entries {
                if e.native_level.index() == level {
                    continue;
                }
                let mut name = e.renderings[level].clone();
                let mut n = 2;
                while !seen.insert(name.to_ascii_uppercase()) {
                    name = format!("{}_{n}", e.renderings[level]);
                    n += 1;
                }
                e.renderings[level] = name;
            }
        }
        let index = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.native.to_ascii_uppercase(), i))
            .collect();
        Crosswalk { entries, index }
    }

    /// All entries.
    pub fn entries(&self) -> &[CrosswalkEntry] {
        &self.entries
    }

    /// Number of identifiers covered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry for a native identifier (case-insensitive, O(1)).
    pub fn entry(&self, native: &str) -> Option<&CrosswalkEntry> {
        self.index
            .get(&native.to_ascii_uppercase())
            .map(|&i| &self.entries[i])
    }

    /// Map from Native identifiers to their `variant` renderings — used to
    /// naturalize prompt schema knowledge (appendix D.2).
    pub fn native_to_variant(&self, variant: SchemaVariant) -> IdentifierMap {
        let mut map = IdentifierMap::new();
        if variant == SchemaVariant::Native {
            return map;
        }
        for e in &self.entries {
            map.insert(&e.native, e.rendering(variant));
        }
        map
    }

    /// Map from `variant` renderings back to Native identifiers — used to
    /// denaturalize generated queries (appendix D.4).
    pub fn variant_to_native(&self, variant: SchemaVariant) -> IdentifierMap {
        let mut map = IdentifierMap::new();
        if variant == SchemaVariant::Native {
            return map;
        }
        for e in &self.entries {
            map.insert(e.rendering(variant), &e.native);
        }
        map
    }

    /// Serialize to tab-separated text (the release format of Artifact 4):
    /// `native, native_level, regular, low, least, kind` per line.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("native\tnative_level\tregular\tlow\tleast\tkind\n");
        for e in &self.entries {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\n",
                e.native,
                e.native_level.n_label(),
                e.renderings[0],
                e.renderings[1],
                e.renderings[2],
                if e.is_table { "table" } else { "column" },
            ));
        }
        out
    }

    /// Parse the TSV produced by [`Crosswalk::to_tsv`].
    pub fn from_tsv(text: &str) -> Result<Crosswalk, String> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if i == 0 || line.trim().is_empty() {
                continue; // header / blanks
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 6 {
                return Err(format!("line {}: expected 6 fields, got {}", i + 1, fields.len()));
            }
            let native_level: Naturalness =
                fields[1].parse().map_err(|e| format!("line {}: {e}", i + 1))?;
            entries.push(CrosswalkEntry {
                native: fields[0].to_owned(),
                native_level,
                renderings: [
                    fields[2].to_owned(),
                    fields[3].to_owned(),
                    fields[4].to_owned(),
                ],
                is_table: fields[5] == "table",
            });
        }
        Ok(Crosswalk::new(entries))
    }

    /// The naturalness labels of the identifiers as displayed under
    /// `variant` (Native → the classified native levels; modified → uniform).
    pub fn displayed_levels(&self, variant: SchemaVariant) -> Vec<Naturalness> {
        match variant.target_level() {
            None => self.entries.iter().map(|e| e.native_level).collect(),
            Some(level) => vec![level; self.entries.len()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(
        native: &str,
        level: Naturalness,
        regular: &str,
        low: &str,
        least: &str,
        is_table: bool,
    ) -> CrosswalkEntry {
        CrosswalkEntry {
            native: native.to_owned(),
            native_level: level,
            renderings: [regular.to_owned(), low.to_owned(), least.to_owned()],
            is_table,
        }
    }

    fn demo() -> Crosswalk {
        Crosswalk::new(vec![
            entry(
                "VegHeight",
                Naturalness::Low,
                "vegetation_height",
                "VegHeight",
                "VgHt",
                false,
            ),
            entry(
                "tbl_Locations",
                Naturalness::Regular,
                "tbl_Locations",
                "tbl_Locs",
                "tLc",
                true,
            ),
        ])
    }

    #[test]
    fn native_maps_to_itself_at_native_level() {
        let cw = demo();
        let e = cw.entry("vegheight").unwrap();
        assert_eq!(e.rendering(SchemaVariant::Low), "VegHeight");
        assert_eq!(e.rendering(SchemaVariant::Native), "VegHeight");
        assert_eq!(e.rendering(SchemaVariant::Least), "VgHt");
    }

    #[test]
    fn forward_and_backward_maps() {
        let cw = demo();
        let fwd = cw.native_to_variant(SchemaVariant::Least);
        assert_eq!(fwd.get("VegHeight"), Some("VgHt"));
        assert_eq!(fwd.get("TBL_LOCATIONS"), Some("tLc"));
        let back = cw.variant_to_native(SchemaVariant::Least);
        assert_eq!(back.get("VgHt"), Some("VegHeight"));
        assert_eq!(back.get("TLC"), Some("tbl_Locations"));
    }

    #[test]
    fn native_variant_maps_are_empty() {
        let cw = demo();
        assert!(cw.native_to_variant(SchemaVariant::Native).is_empty());
        assert!(cw.variant_to_native(SchemaVariant::Native).is_empty());
    }

    #[test]
    fn collisions_deduplicated() {
        let cw = Crosswalk::new(vec![
            entry("A1", Naturalness::Least, "alpha", "alp", "a1", false),
            entry("A2", Naturalness::Least, "alpha", "alp", "a2", false),
        ]);
        let regs: Vec<&str> = cw
            .entries()
            .iter()
            .map(|e| e.renderings[0].as_str())
            .collect();
        assert_eq!(regs[0], "alpha");
        assert_eq!(regs[1], "alpha_2");
        // Backward map stays bijective.
        let back = cw.variant_to_native(SchemaVariant::Regular);
        assert_eq!(back.get("alpha"), Some("A1"));
        assert_eq!(back.get("alpha_2"), Some("A2"));
    }

    #[test]
    fn displayed_levels() {
        let cw = demo();
        assert_eq!(
            cw.displayed_levels(SchemaVariant::Native),
            vec![Naturalness::Low, Naturalness::Regular]
        );
        assert_eq!(
            cw.displayed_levels(SchemaVariant::Least),
            vec![Naturalness::Least, Naturalness::Least]
        );
    }

    #[test]
    fn tsv_round_trip() {
        let cw = demo();
        let tsv = cw.to_tsv();
        assert!(tsv.starts_with("native\tnative_level"));
        let back = Crosswalk::from_tsv(&tsv).unwrap();
        assert_eq!(back, cw);
    }

    #[test]
    fn tsv_rejects_malformed_lines() {
        assert!(Crosswalk::from_tsv("header\na\tb\n").is_err());
        assert!(Crosswalk::from_tsv("h\nx\tBAD\tr\tl\ts\tcolumn\n").is_err());
        // Header-only is fine.
        assert!(Crosswalk::from_tsv("header line\n").unwrap().is_empty());
    }

    #[test]
    fn len_and_lookup() {
        let cw = demo();
        assert_eq!(cw.len(), 2);
        assert!(!cw.is_empty());
        assert!(cw.entry("missing").is_none());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// For any set of entries, per-level renderings are unique after
        /// construction (case-insensitively).
        #[test]
        fn renderings_unique(names in proptest::collection::vec("[a-c]{1,3}", 1..8)) {
            let entries: Vec<CrosswalkEntry> = names
                .iter()
                .enumerate()
                .map(|(i, n)| CrosswalkEntry {
                    native: format!("N{i}"),
                    native_level: Naturalness::Low,
                    // Native (Low) renderings are unique by construction, as
                    // the schema builders guarantee; the other levels collide
                    // freely and must be deduplicated.
                    renderings: [n.clone(), format!("N{i}"), n.clone()],
                    is_table: false,
                })
                .collect();
            let cw = Crosswalk::new(entries);
            for level in 0..3 {
                let mut seen = std::collections::HashSet::new();
                for e in cw.entries() {
                    prop_assert!(
                        seen.insert(e.renderings[level].to_ascii_uppercase()),
                        "collision at level {level}: {}",
                        e.renderings[level]
                    );
                }
            }
        }
    }
}
