#![warn(missing_docs)]

//! # snails-modify
//!
//! Identifier naturalness modification (SNAILS Artifacts 4 and 5):
//!
//! * [`abbrev`] — the *abbreviator*: deterministic Regular→Low and →Least
//!   word abbreviation (the paper used GPT-3.5 few-shot prompting; the rules
//!   here reproduce its observed behaviour — drop vowels, keep skeletal
//!   consonants, prefer conventional abbreviations);
//! * [`metadata`] — a word-indexed metadata/data-dictionary reader with
//!   context-window retrieval (the RAG substrate of appendix C.2);
//! * [`expand`] — the *expander*: Least/Low→Regular identifier expansion
//!   using the conventional-abbreviation table, metadata retrieval, and
//!   dictionary subsequence search;
//! * [`crosswalk`] — Artifact 4: per-identifier mappings across all four
//!   schema variants, with [`snails_sql::IdentifierMap`] extraction for
//!   prompt naturalization and query denaturalization.

pub mod abbrev;
pub mod crosswalk;
pub mod expand;
pub mod metadata;
pub mod prompts;

pub use abbrev::{abbreviate_identifier, abbreviate_word, RenderStyle};
pub use crosswalk::{Crosswalk, CrosswalkEntry};
pub use expand::Expander;
pub use metadata::MetadataIndex;
