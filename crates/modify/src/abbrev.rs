//! The abbreviator (decreasing naturalness, appendix C.1).
//!
//! The paper generated less-natural identifiers with GPT-3.5 few-shot
//! prompting ("Abbreviate the database schema identifier to make it slightly
//! shorter: WaterTemperature -> WaterTemp"). The rules here reproduce the
//! dominant patterns of those outputs and of real-world schemas:
//!
//! * **Low**: conventional abbreviation when one exists (`quantity → qty`),
//!   otherwise vowel-dropping after the first letter with length capped near
//!   half the word (`protocol → prtcl`, `height → hght` → capped `hght`);
//!   recognizable by non-experts, never a dictionary word.
//! * **Least**: 2-character consonant skeleton (`vegetation → vg`,
//!   `height → ht`), matching the paper's `Veg-Height → VgHt` example.

use snails_lexicon::abbrev::CONVENTIONAL_ABBREVIATIONS;
use snails_lexicon::dictionary::is_dictionary_word;
use snails_naturalness::Naturalness;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Identifier rendering styles found in real schemas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RenderStyle {
    /// `lower_snake_case`
    Snake,
    /// `PascalCase`
    Pascal,
    /// `camelCase`
    Camel,
    /// `UPPER_SNAKE`
    UpperSnake,
    /// `UPPERFLAT` (SAP-style, words concatenated uppercase)
    UpperFlat,
    /// `Title Case With Spaces` (the rare whitespace identifiers of §3.1 —
    /// the paper found 148 of 19,000; they require bracket quoting).
    Spaced,
}

impl RenderStyle {
    /// Join word tokens in this style.
    pub fn join(&self, words: &[String]) -> String {
        match self {
            RenderStyle::Snake => words
                .iter()
                .map(|w| w.to_ascii_lowercase())
                .collect::<Vec<_>>()
                .join("_"),
            RenderStyle::Pascal => words.iter().map(|w| capitalize(w)).collect(),
            RenderStyle::Camel => {
                let mut out = String::new();
                for (i, w) in words.iter().enumerate() {
                    if i == 0 {
                        out.push_str(&w.to_ascii_lowercase());
                    } else {
                        out.push_str(&capitalize(w));
                    }
                }
                out
            }
            RenderStyle::UpperSnake => words
                .iter()
                .map(|w| w.to_ascii_uppercase())
                .collect::<Vec<_>>()
                .join("_"),
            RenderStyle::UpperFlat => {
                words.iter().map(|w| w.to_ascii_uppercase()).collect()
            }
            RenderStyle::Spaced => words
                .iter()
                .map(|w| capitalize(w))
                .collect::<Vec<_>>()
                .join(" "),
        }
    }

    /// Guess the style of an existing identifier.
    pub fn detect(identifier: &str) -> RenderStyle {
        if identifier.contains(' ') {
            return RenderStyle::Spaced;
        }
        let has_underscore = identifier.contains('_');
        let all_upper = identifier
            .chars()
            .filter(|c| c.is_ascii_alphabetic())
            .all(|c| c.is_ascii_uppercase());
        let starts_lower = identifier.chars().next().is_some_and(|c| c.is_ascii_lowercase());
        match (has_underscore, all_upper, starts_lower) {
            (true, true, _) => RenderStyle::UpperSnake,
            (true, false, _) => RenderStyle::Snake,
            (false, true, _) => RenderStyle::UpperFlat,
            (false, false, true) => RenderStyle::Camel,
            (false, false, false) => RenderStyle::Pascal,
        }
    }
}

fn capitalize(w: &str) -> String {
    let mut chars = w.chars();
    match chars.next() {
        Some(c) => c.to_ascii_uppercase().to_string() + &chars.as_str().to_ascii_lowercase(),
        None => String::new(),
    }
}

fn reverse_conventional() -> &'static HashMap<&'static str, &'static str> {
    static MAP: OnceLock<HashMap<&'static str, &'static str>> = OnceLock::new();
    MAP.get_or_init(|| {
        let mut m = HashMap::new();
        // First mapping wins so the table order defines the canonical
        // abbreviation of each word.
        for (abbr, full) in CONVENTIONAL_ABBREVIATIONS {
            m.entry(*full).or_insert(*abbr);
        }
        m
    })
}

const VOWELS: &[char] = &['a', 'e', 'i', 'o', 'u'];

/// Drop vowels after the first character.
fn vowel_dropped(word: &str) -> String {
    let lower = word.to_ascii_lowercase();
    let mut out = String::with_capacity(lower.len());
    for (i, c) in lower.chars().enumerate() {
        if i == 0 || !VOWELS.contains(&c) {
            out.push(c);
        }
    }
    out
}

/// Abbreviate one word to the target naturalness level.
///
/// `Regular` returns the word unchanged (lowercased). The output for `Low`
/// and `Least` is never a dictionary word.
pub fn abbreviate_word(word: &str, target: Naturalness) -> String {
    let lower = word.to_ascii_lowercase();
    if lower.chars().all(|c| c.is_ascii_digit()) || lower.len() <= 2 {
        return lower;
    }
    match target {
        Naturalness::Regular => lower,
        Naturalness::Low => {
            if let Some(abbr) = reverse_conventional().get(lower.as_str()) {
                return (*abbr).to_owned();
            }
            let mut skeleton = vowel_dropped(&lower);
            // Cap near half the word, but keep at least 3 characters so the
            // abbreviation stays recognizable (Low, not Least).
            let cap = lower.len().div_ceil(2).max(3);
            skeleton.truncate(cap.min(skeleton.len()).max(3.min(skeleton.len())));
            if skeleton.len() < 3 && lower.len() > 3 {
                // Vowel-heavy words (e.g. "area") reduce too far; use a
                // prefix abbreviation instead.
                skeleton = lower.chars().take(3).collect();
            }
            if is_dictionary_word(&skeleton) || skeleton == lower {
                // Fall back to a 4-char prefix minus trailing vowel.
                let mut prefix: String = lower.chars().take(4).collect();
                while prefix.len() > 2 && is_dictionary_word(&prefix) {
                    prefix.pop();
                }
                return prefix;
            }
            skeleton
        }
        Naturalness::Least => {
            // A conventional abbreviation that is already skeletal (≤ 2
            // chars) is the canonical Least form (`height → ht`).
            if let Some(abbr) = reverse_conventional().get(lower.as_str()) {
                if abbr.len() <= 2 {
                    return (*abbr).to_owned();
                }
            }
            // Otherwise: first letter + next consonant (or next letter).
            let mut chars = lower.chars();
            let first = chars.next().expect("len > 2 checked above");
            let second = chars
                .clone()
                .find(|c| !VOWELS.contains(c))
                .or_else(|| chars.next())
                .unwrap_or('x');
            let out: String = [first, second].iter().collect();
            if is_dictionary_word(&out) {
                // e.g. "an", "at": extend by one consonant.
                let third = lower
                    .chars()
                    .skip(2)
                    .find(|c| !VOWELS.contains(c))
                    .unwrap_or('x');
                return [first, second, third].iter().collect();
            }
            out
        }
    }
}

/// Abbreviate a full identifier: split into word tokens, abbreviate each, and
/// re-join in the identifier's detected style.
///
/// This is the standalone Artifact-5 abbreviator; the benchmark crosswalks
/// are built from semantic word sequences instead (see `snails-data`).
pub fn abbreviate_identifier(identifier: &str, target: Naturalness) -> String {
    let style = RenderStyle::detect(identifier);
    let words: Vec<String> = snails_lexicon::split_identifier(identifier)
        .into_iter()
        .map(|t| abbreviate_word(&t.text, target))
        .collect();
    if words.is_empty() {
        return identifier.to_owned();
    }
    style.join(&words)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_veg_height() {
        // Figure 4: VegHeight (Low) abbreviates further to VgHt (Least).
        assert_eq!(abbreviate_word("Veg", Naturalness::Least), "vg");
        assert_eq!(abbreviate_word("Height", Naturalness::Least), "ht");
        assert_eq!(abbreviate_identifier("VegHeight", Naturalness::Least), "VgHt");
    }

    #[test]
    fn conventional_abbreviations_preferred() {
        assert_eq!(abbreviate_word("quantity", Naturalness::Low), "qty");
        assert_eq!(abbreviate_word("height", Naturalness::Low), "ht");
        assert_eq!(abbreviate_word("number", Naturalness::Low), "nbr");
    }

    #[test]
    fn low_abbreviations_not_dictionary_words() {
        for w in ["protocol", "customer", "observation", "temperature", "district"] {
            let a = abbreviate_word(w, Naturalness::Low);
            assert!(!is_dictionary_word(&a), "{w} → {a} is a word");
            assert_ne!(a, w);
            assert!(a.len() >= 2, "{w} → {a} too short");
        }
    }

    #[test]
    fn least_is_two_or_three_chars() {
        for w in ["vegetation", "customer", "location", "species", "district"] {
            let a = abbreviate_word(w, Naturalness::Least);
            assert!(a.len() <= 3, "{w} → {a}");
            assert!(!is_dictionary_word(&a), "{w} → {a} is a word");
        }
    }

    #[test]
    fn least_shorter_than_low() {
        for w in ["vegetation", "customer", "observation", "protocol"] {
            let low = abbreviate_word(w, Naturalness::Low);
            let least = abbreviate_word(w, Naturalness::Least);
            assert!(least.len() < low.len(), "{w}: low={low} least={least}");
        }
    }

    #[test]
    fn short_words_pass_through() {
        assert_eq!(abbreviate_word("id", Naturalness::Least), "id");
        assert_eq!(abbreviate_word("of", Naturalness::Low), "of");
        assert_eq!(abbreviate_word("42", Naturalness::Least), "42");
    }

    #[test]
    fn regular_target_is_identity() {
        assert_eq!(abbreviate_word("Height", Naturalness::Regular), "height");
    }

    #[test]
    fn style_detection() {
        assert_eq!(RenderStyle::detect("service_name"), RenderStyle::Snake);
        assert_eq!(RenderStyle::detect("ModelYear"), RenderStyle::Pascal);
        assert_eq!(RenderStyle::detect("modelYear"), RenderStyle::Camel);
        assert_eq!(RenderStyle::detect("HEADREST_DAM"), RenderStyle::UpperSnake);
        assert_eq!(RenderStyle::detect("CASENO"), RenderStyle::UpperFlat);
        assert_eq!(RenderStyle::detect("Research Staff"), RenderStyle::Spaced);
    }

    #[test]
    fn spaced_style_round_trips() {
        let words = vec!["research".to_owned(), "staff".to_owned()];
        assert_eq!(RenderStyle::Spaced.join(&words), "Research Staff");
        assert_eq!(
            abbreviate_identifier("Research Staff", Naturalness::Least),
            "Rs St"
        );
    }

    #[test]
    fn style_join() {
        let words = vec!["water".to_owned(), "temp".to_owned()];
        assert_eq!(RenderStyle::Snake.join(&words), "water_temp");
        assert_eq!(RenderStyle::Pascal.join(&words), "WaterTemp");
        assert_eq!(RenderStyle::Camel.join(&words), "waterTemp");
        assert_eq!(RenderStyle::UpperSnake.join(&words), "WATER_TEMP");
        assert_eq!(RenderStyle::UpperFlat.join(&words), "WATERTEMP");
    }

    #[test]
    fn identifier_styles_preserved() {
        assert_eq!(
            abbreviate_identifier("water_temperature", Naturalness::Low),
            "wtr_temp"
        );
        let out = abbreviate_identifier("WaterTemperature", Naturalness::Low);
        assert_eq!(out, "WtrTemp");
    }

    #[test]
    fn empty_identifier_unchanged() {
        assert_eq!(abbreviate_identifier("", Naturalness::Low), "");
    }

    #[test]
    fn deterministic() {
        for w in ["vegetation", "protocol", "height"] {
            assert_eq!(
                abbreviate_word(w, Naturalness::Low),
                abbreviate_word(w, Naturalness::Low)
            );
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Abbreviations never grow the word.
        #[test]
        fn never_longer(w in "[a-z]{3,14}") {
            for target in [Naturalness::Low, Naturalness::Least] {
                prop_assert!(abbreviate_word(&w, target).len() <= w.len());
            }
        }

        /// Abbreviation output is lowercase ASCII (word level).
        #[test]
        fn lowercase_ascii(w in "[a-zA-Z]{3,14}") {
            let a = abbreviate_word(&w, Naturalness::Low);
            prop_assert!(a.bytes().all(|b| b.is_ascii_lowercase()));
        }

        /// First letter is preserved, preserving sort/recognition anchors.
        #[test]
        fn first_letter_kept(w in "[a-z]{3,14}") {
            for target in [Naturalness::Low, Naturalness::Least] {
                let a = abbreviate_word(&w, target);
                prop_assert_eq!(a.chars().next(), w.chars().next());
            }
        }
    }
}
