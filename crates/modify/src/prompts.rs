//! The paper's LLM prompt formats for naturalness modification
//! (appendix C.1 / C.2).
//!
//! The rule-based modifiers in this crate do not consume prompts, but the
//! released artifacts include the prompt builders so the pipeline can be
//! pointed at a real hosted model: [`abbreviation_prompt`] renders the
//! GPT-3.5 few-shot abbreviation prompt verbatim, and [`expansion_prompt`]
//! renders the metadata-augmented expansion prompt around retrieved context
//! windows.

use crate::metadata::MetadataIndex;

/// The appendix C.1 few-shot abbreviation examples.
pub const ABBREVIATION_EXAMPLES: &[(&str, &str)] = &[
    ("Protocol_Name", "Protcl_Nm"),
    ("WaterTemperature", "WaterTemp"),
    ("Customer", "Custmr"),
];

/// The per-example instruction line of the C.1 prompt.
pub const ABBREVIATION_INSTRUCTION: &str =
    "Abbreviate the database schema identifier to make it slightly shorter:";

/// Render the appendix C.1 few-shot abbreviation prompt for `identifier`.
pub fn abbreviation_prompt(identifier: &str) -> String {
    let mut out = String::with_capacity(512);
    for (from, to) in ABBREVIATION_EXAMPLES {
        out.push_str(&format!("{ABBREVIATION_INSTRUCTION} {from} -> {to}\n\n"));
    }
    out.push_str(&format!("{ABBREVIATION_INSTRUCTION} {identifier} ->"));
    out
}

/// Render the appendix C.2 expansion prompt: retrieved metadata context
/// windows followed by the identifier-expansion instruction. `radius` and
/// `max_windows` mirror [`crate::Expander`]'s retrieval settings (the paper
/// retrieved up to ten context windows).
pub fn expansion_prompt(
    metadata: &MetadataIndex,
    identifier: &str,
    radius: usize,
    max_windows: usize,
) -> String {
    let context = metadata
        .context_windows(identifier, radius, max_windows)
        .join("\n");
    format!(
        "Using the following text extracted from a data dictionary:\n\n\
         {context}\n\n\
         In the response, provide only the old identifier and new identifier \
         (e.g. \"old_identifier, new_identifier\"). Create a meaningful and \
         concise database identifier using SQL compatible complete words to \
         represent abbreviations and acronyms for only the identifier \
         {identifier}:"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbreviation_prompt_matches_paper_format() {
        let p = abbreviation_prompt("Veg_Height");
        assert!(p.contains("Protocol_Name -> Protcl_Nm"));
        assert!(p.contains("WaterTemperature -> WaterTemp"));
        assert!(p.contains("Customer -> Custmr"));
        assert!(p.ends_with("Veg_Height ->"));
        // Three worked examples + the target instruction.
        assert_eq!(p.matches(ABBREVIATION_INSTRUCTION).count(), 4);
    }

    #[test]
    fn expansion_prompt_embeds_retrieved_context() {
        let meta = MetadataIndex::from_text(
            "NUM_TEACH_INEXP Number of teachers with fewer than four years of \
             experience in their positions\n",
        );
        let p = expansion_prompt(&meta, "num_teach_inexp", 0, 10);
        assert!(p.starts_with("Using the following text extracted from a data dictionary:"));
        assert!(p.contains("Number of teachers with fewer than four years"));
        assert!(p.ends_with("num_teach_inexp:"));
    }

    #[test]
    fn expansion_prompt_with_no_hits_is_still_valid() {
        let meta = MetadataIndex::from_text("nothing relevant here\n");
        let p = expansion_prompt(&meta, "xqzj", 1, 10);
        assert!(p.contains("only the identifier xqzj:"));
    }
}
