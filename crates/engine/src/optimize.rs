//! Cost-based planning over compiled plans.
//!
//! The compiler ([`crate::plan`]) lowers SQL into a positional-slot IR but
//! inherits join order from the FROM clause and evaluates `WHERE` only
//! after every join. This module adds a per-execution optimization pass:
//!
//! * **Predicate pushdown** — infallible single-source `WHERE` conjuncts
//!   run against their base table *before* any join.
//! * **Join reordering** — greedy smallest-estimated-intermediate-first
//!   over the equi-join graph, using per-table statistics
//!   ([`crate::stats::TableStats`]).
//! * **Access-path selection** — `col = const` conjuncts probe a lazily
//!   built secondary hash index instead of scanning, and an unfiltered
//!   build side whose key is a plain column reuses the index as a
//!   prebuilt hash-join build table.
//!
//! # Equivalence contract
//!
//! The optimized executor must stay byte-identical to the unoptimized
//! paths in results, errors, and budget accounting. Three mechanisms make
//! that hold:
//!
//! 1. **Eligibility** ([`analyze`]): only root blocks whose sources are
//!    all base tables, whose joins are all inner equi-joins with
//!    infallible, subquery-free keys, and which carry no `UNION` are
//!    optimized. Pushdown additionally requires *every* `WHERE` conjunct
//!    to be infallible — otherwise the whole `WHERE` stays residual and
//!    runs post-join, where per-row evaluation order (and therefore which
//!    row errors first) is identical to the unoptimized path.
//! 2. **Order restoration**: both the hash and nested inner joins emit
//!    rows lexicographically in (left logical order, right physical row),
//!    so a chain of inner joins yields rows sorted by their physical
//!    row-id *tuple* in FROM order, and those tuples are distinct. After
//!    joining in cost order, one sort by that tuple restores the exact
//!    unoptimized row order (skipped when the order was not changed —
//!    filtering sources keeps subsequences in order).
//! 3. **Gating** ([`CompiledPlan::execute`]): the optimizer only engages
//!    under [`crate::ExecLimits::UNLIMITED`]. Pushdown and reordering
//!    change *how much* work each budget ledger sees (that is the point),
//!    so under any finite budget the unoptimized plan runs and exhaustion
//!    points stay byte-identical — the same rule that gates subquery
//!    memoization. The chosen semantics: **planner decisions never decide
//!    which budget trips first** (DESIGN.md §10).
//!
//! Like the vectorized engine, execution is **pure-then-commit**: the
//! entire optimized pipeline (probes, pushed filters, joins, restoration)
//! runs without charging the meter or touching observability; any
//! surprise aborts to the normal paths at zero cost. Only after the join
//! tree is complete are charges and metrics replayed, then the residual
//! `WHERE` and the tail run through the vectorized engine's own `filter`
//! and `tail` (which carry their own scalar fallbacks and charge points).

use std::collections::HashMap;
use std::sync::Arc;

use snails_obs::Metric as Obs;
use snails_sql::{BinOp, JoinKind, UnaryOp};

use crate::batch::{BatchPool, ColData, ColumnSet};
use crate::catalog::Database;
use crate::error::EngineError;
use crate::exec::{adaptive_batch_size, record_statement, ExecOptions};
use crate::plan::{CExpr, CSelect, CSource, CompiledPlan, ExprId, Runner};
use crate::result::ResultSet;
use crate::stats::TableStats;
use crate::value::Value;
use crate::vector::{
    self, scalar_flags, Ev, JoinKey, KeyCol, Rel, SideKeys, Unvec, VKey, NONE_RID,
};

/// Engagement thresholds for the index-probe access path: below this many
/// rows a scan is as cheap as a probe, and below this many distinct values
/// a probe keeps most of the table anyway.
const PROBE_MIN_ROWS: u64 = 16;
const PROBE_MIN_NDV: u64 = 4;

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

/// Per-node "cannot raise at runtime" flags for a block's arena. Stricter
/// than [`scalar_flags`]: arithmetic, functions, `LIKE`, negation, frozen
/// errors, and anything scalar-flagged are all fallible. Pushing a
/// predicate past a join changes how many rows evaluate it, which is only
/// sound when no evaluation can error.
fn infallible_flags(sel: &CSelect, flags: &[bool]) -> Vec<bool> {
    let mut f: Vec<bool> = Vec::with_capacity(sel.arena.len());
    for (id, node) in sel.arena.iter().enumerate() {
        let ok = !flags[id]
            && match node {
                CExpr::Const(_) => true,
                CExpr::Slot { up, .. } => *up == 0,
                CExpr::Err(_)
                | CExpr::Subquery { .. }
                | CExpr::InSubquery { .. }
                | CExpr::Exists { .. }
                | CExpr::Func { .. }
                | CExpr::Like { .. } => false,
                // `-x` can overflow `i64::MIN`; `NOT` of a clean operand
                // cannot raise.
                CExpr::Unary { op, expr } => *op == UnaryOp::Not && f[*expr],
                CExpr::And { left, right } | CExpr::Or { left, right } => f[*left] && f[*right],
                // Comparisons run through the error-free `cmp_cells`
                // kernel; arithmetic can overflow or divide by zero.
                CExpr::Binary { left, op, right } => {
                    op.is_comparison() && f[*left] && f[*right]
                }
                CExpr::IsNull { expr, .. } => f[*expr],
                CExpr::InList { expr, list, .. } => {
                    f[*expr] && list.iter().all(|&i| f[i])
                }
                CExpr::Between { expr, low, high, .. } => f[*expr] && f[*low] && f[*high],
                CExpr::Case { operand, branches, else_expr } => {
                    operand.is_none_or(|o| f[o])
                        && branches.iter().all(|&(w, t)| f[w] && f[t])
                        && else_expr.is_none_or(|e| f[e])
                }
            };
        f.push(ok);
    }
    f
}

/// Split a predicate into its top-level `AND` conjuncts.
fn split_and(sel: &CSelect, id: ExprId, out: &mut Vec<ExprId>) {
    if let CExpr::And { left, right } = &sel.arena[id] {
        split_and(sel, *left, out);
        split_and(sel, *right, out);
    } else {
        out.push(id);
    }
}

/// Collect the combined-row offsets of every current-block slot in a
/// subtree.
fn collect_slots(sel: &CSelect, id: ExprId, out: &mut Vec<usize>) {
    match &sel.arena[id] {
        CExpr::Const(_) | CExpr::Err(_) => {}
        CExpr::Slot { up, idx } => {
            if *up == 0 {
                out.push(*idx);
            }
        }
        CExpr::Unary { expr, .. } | CExpr::IsNull { expr, .. } | CExpr::Like { expr, .. } => {
            collect_slots(sel, *expr, out);
        }
        CExpr::And { left, right }
        | CExpr::Or { left, right }
        | CExpr::Binary { left, right, .. } => {
            collect_slots(sel, *left, out);
            collect_slots(sel, *right, out);
        }
        CExpr::Func { args, .. } => {
            for a in args {
                if let crate::plan::CArg::Expr(e) = a {
                    collect_slots(sel, *e, out);
                }
            }
        }
        CExpr::InList { expr, list, .. } => {
            collect_slots(sel, *expr, out);
            for &e in list {
                collect_slots(sel, e, out);
            }
        }
        CExpr::InSubquery { expr, .. } => collect_slots(sel, *expr, out),
        CExpr::Exists { .. } | CExpr::Subquery { .. } => {}
        CExpr::Between { expr, low, high, .. } => {
            collect_slots(sel, *expr, out);
            collect_slots(sel, *low, out);
            collect_slots(sel, *high, out);
        }
        CExpr::Case { operand, branches, else_expr } => {
            if let Some(o) = operand {
                collect_slots(sel, *o, out);
            }
            for &(w, t) in branches {
                collect_slots(sel, w, out);
                collect_slots(sel, t, out);
            }
            if let Some(e) = else_expr {
                collect_slots(sel, *e, out);
            }
        }
    }
}

/// One base-table source of the block, with its statistics and the
/// planner's decisions about it.
struct SourceInfo {
    name: String,
    offset: usize,
    width: usize,
    set: Arc<ColumnSet>,
    stats: Arc<TableStats>,
    /// Pushed-down `WHERE` conjuncts (all infallible, single-source).
    pushed: Vec<ExprId>,
    /// Candidate index probe: `(local column, conjunct id, key constant)`.
    probe: Option<(usize, ExprId, Value)>,
    /// Estimated rows surviving the pushed predicates.
    est_rows: f64,
}

/// The planner's verdict for one eligible block.
struct Decision {
    srcs: Vec<SourceInfo>,
    /// Join indices in execution order.
    order: Vec<usize>,
    reordered: bool,
    /// Estimated cardinality after each executed join, parallel to `order`.
    est_joins: Vec<f64>,
    /// `WHERE` conjuncts evaluated after the join tree, in original order.
    residual: Vec<ExprId>,
    /// Worth taking the optimized path (vs. pure overhead).
    nontrivial: bool,
}

/// Map a combined-row offset to its source index, if all offsets in
/// `slots` land in the same source.
fn single_source(srcs: &[SourceInfo], slots: &[usize]) -> Option<usize> {
    let mut found: Option<usize> = None;
    for &idx in slots {
        let s = srcs
            .iter()
            .position(|s| idx >= s.offset && idx < s.offset + s.width)?;
        match found {
            None => found = Some(s),
            Some(prev) if prev == s => {}
            Some(_) => return None,
        }
    }
    found
}

/// `Slot = Const` (either orientation) over this source → `(local column,
/// constant)`.
fn eq_const_pattern(sel: &CSelect, id: ExprId, s: &SourceInfo) -> Option<(usize, Value)> {
    let CExpr::Binary { left, op: BinOp::Eq, right } = &sel.arena[id] else {
        return None;
    };
    let pair = match (&sel.arena[*left], &sel.arena[*right]) {
        (CExpr::Slot { up: 0, idx }, CExpr::Const(v))
        | (CExpr::Const(v), CExpr::Slot { up: 0, idx }) => (*idx, v.clone()),
        _ => None?,
    };
    let (idx, v) = pair;
    (idx >= s.offset && idx < s.offset + s.width).then(|| (idx - s.offset, v))
}

fn val_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(n) => Some(*n as f64),
        Value::Float(x) => Some(*x),
        _ => None,
    }
}

/// Textbook selectivity estimate for one conjunct against one source.
fn selectivity(sel: &CSelect, id: ExprId, s: &SourceInfo) -> f64 {
    let col_of = |e: ExprId| match &sel.arena[e] {
        CExpr::Slot { up: 0, idx } if *idx >= s.offset && *idx < s.offset + s.width => {
            Some(*idx - s.offset)
        }
        _ => None,
    };
    match &sel.arena[id] {
        CExpr::And { left, right } => selectivity(sel, *left, s) * selectivity(sel, *right, s),
        CExpr::Or { left, right } => {
            (selectivity(sel, *left, s) + selectivity(sel, *right, s)).min(1.0)
        }
        CExpr::Unary { op: UnaryOp::Not, expr } => 1.0 - selectivity(sel, *expr, s),
        CExpr::IsNull { expr, negated } => {
            let frac = col_of(*expr)
                .map(|c| s.stats.columns[c].null_fraction(s.stats.row_count))
                .unwrap_or(1.0 / 3.0);
            if *negated {
                1.0 - frac
            } else {
                frac
            }
        }
        CExpr::InList { expr, list, negated } => {
            let base = col_of(*expr)
                .map(|c| {
                    (list.len() as f64 / s.stats.columns[c].ndv.max(1) as f64).min(1.0)
                })
                .unwrap_or(1.0 / 3.0);
            if *negated {
                1.0 - base
            } else {
                base
            }
        }
        CExpr::Between { .. } => 0.25,
        CExpr::Like { .. } => 0.25,
        CExpr::Binary { left, op, right } if op.is_comparison() => {
            let (col, konst) = match (col_of(*left), col_of(*right)) {
                (Some(c), None) => (Some(c), const_of(sel, *right)),
                (None, Some(c)) => (Some(c), const_of(sel, *left)),
                _ => (None, None),
            };
            let Some(c) = col else { return 1.0 / 3.0 };
            let st = &s.stats.columns[c];
            match op {
                BinOp::Eq => 1.0 / st.ndv.max(1) as f64,
                BinOp::NotEq => 1.0 - 1.0 / st.ndv.max(1) as f64,
                BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                    let frac = match (
                        konst.as_ref().and_then(val_f64),
                        st.min.as_ref().and_then(val_f64),
                        st.max.as_ref().and_then(val_f64),
                    ) {
                        (Some(k), Some(lo), Some(hi)) if hi > lo => {
                            ((k - lo) / (hi - lo)).clamp(0.0, 1.0)
                        }
                        _ => return 1.0 / 3.0,
                    };
                    match op {
                        BinOp::Lt | BinOp::LtEq => frac,
                        _ => 1.0 - frac,
                    }
                }
                _ => 1.0 / 3.0,
            }
        }
        _ => 1.0 / 3.0,
    }
}

fn const_of(sel: &CSelect, id: ExprId) -> Option<Value> {
    match &sel.arena[id] {
        CExpr::Const(v) => Some(v.clone()),
        _ => None,
    }
}

/// NDV of a join-key expression against the sources, for the cardinality
/// denominator. A plain column uses its statistics; anything computed
/// falls back to a third of the input.
fn key_ndv(sel: &CSelect, key: ExprId, srcs: &[SourceInfo], side_rows: f64) -> f64 {
    let mut slots = Vec::new();
    collect_slots(sel, key, &mut slots);
    if let [idx] = slots.as_slice() {
        if let Some(si) = single_source(srcs, &[*idx]) {
            let s = &srcs[si];
            if let Some(cs) = s.stats.columns.get(idx - s.offset) {
                return cs.ndv.max(1) as f64;
            }
        }
    }
    (side_rows / 3.0).max(1.0)
}

/// Right-side key NDV: right keys are compiled side-local, so `Slot{0, c}`
/// is column `c` of the right source directly.
fn right_key_ndv(sel: &CSelect, key: ExprId, s: &SourceInfo) -> f64 {
    if let CExpr::Slot { up: 0, idx } = &sel.arena[key] {
        if let Some(cs) = s.stats.columns.get(*idx) {
            return cs.ndv.max(1) as f64;
        }
    }
    (s.est_rows / 3.0).max(1.0)
}

/// Analyze one block. `Ok` means the block is safely optimizable and
/// carries the full plan; `Err` is a human-readable ineligibility reason.
fn analyze(sel: &CSelect, db: &Database, flags: &[bool]) -> Result<Decision, &'static str> {
    if sel.union.is_some() {
        return Err("UNION blocks are not optimized");
    }
    let Some(CSource::Table { name, width }) = &sel.source else {
        return Err("FROM source is not a base table");
    };
    let inf = infallible_flags(sel, flags);
    let make_source = |name: &str, width: usize, offset: usize| -> Result<SourceInfo, &'static str> {
        let t = db.table(name).ok_or("unknown table")?;
        let set = t.columnar();
        if set.width() != width {
            return Err("table width changed since compile");
        }
        Ok(SourceInfo {
            name: name.to_owned(),
            offset,
            width,
            set,
            stats: t.stats(),
            pushed: Vec::new(),
            probe: None,
            est_rows: 0.0,
        })
    };
    let mut srcs = vec![make_source(name, *width, 0)?];
    let mut offset = *width;
    for join in &sel.joins {
        if join.kind != JoinKind::Inner {
            return Err("only inner joins are reorderable");
        }
        let Some(keys) = &join.hash_keys else {
            return Err("join has no equi-key conjunction");
        };
        if join.on.is_none() {
            return Err("join has no ON predicate");
        }
        if keys.iter().any(|&(l, r)| !inf[l] || !inf[r]) {
            return Err("join keys are fallible or need the scalar runner");
        }
        let CSource::Table { name, width } = &join.source else {
            return Err("join source is not a base table");
        };
        srcs.push(make_source(name, *width, offset)?);
        offset += *width;
    }
    if offset != sel.width {
        return Err("combined width mismatch");
    }

    // WHERE split: pushdown only when every conjunct is infallible, so
    // reordering can never change which row raises first.
    let mut residual: Vec<ExprId> = Vec::new();
    if let Some(w) = sel.where_clause {
        let mut conj = Vec::new();
        split_and(sel, w, &mut conj);
        if conj.iter().all(|&c| inf[c]) {
            for c in conj {
                let mut slots = Vec::new();
                collect_slots(sel, c, &mut slots);
                match (!slots.is_empty()).then(|| single_source(&srcs, &slots)).flatten() {
                    Some(i) => srcs[i].pushed.push(c),
                    None => residual.push(c),
                }
            }
        } else {
            residual.push(w);
        }
    }

    // Per-source estimates and index-probe candidates.
    for s in &mut srcs {
        let mut est = s.stats.row_count as f64;
        for &c in &s.pushed {
            if s.probe.is_none() {
                if let Some((local, v)) = eq_const_pattern(sel, c, s) {
                    let ndv = s.stats.columns[local].ndv;
                    if s.stats.row_count >= PROBE_MIN_ROWS && ndv >= PROBE_MIN_NDV {
                        s.probe = Some((local, c, v));
                    }
                }
            }
            est *= selectivity(sel, c, s);
        }
        s.est_rows = est;
    }

    // Greedy join order: repeatedly take the available join (all left-key
    // sources already placed) with the smallest estimated output. The join
    // whose right source has the smallest original index is always
    // available, so the loop cannot deadlock; ties break to the smallest
    // original index, keeping the choice deterministic.
    let n_joins = sel.joins.len();
    let left_refs: Vec<Vec<usize>> = sel
        .joins
        .iter()
        .map(|j| {
            let mut refs = Vec::new();
            for &(l, _) in j.hash_keys.as_ref().expect("checked above") {
                let mut slots = Vec::new();
                collect_slots(sel, l, &mut slots);
                for idx in slots {
                    if let Some(si) =
                        srcs.iter().position(|s| idx >= s.offset && idx < s.offset + s.width)
                    {
                        if !refs.contains(&si) {
                            refs.push(si);
                        }
                    }
                }
            }
            refs
        })
        .collect();
    let mut placed = vec![false; srcs.len()];
    placed[0] = true;
    let mut done = vec![false; n_joins];
    let mut order = Vec::with_capacity(n_joins);
    let mut est_joins = Vec::with_capacity(n_joins);
    let mut card = srcs[0].est_rows;
    for _ in 0..n_joins {
        let mut best: Option<(f64, usize)> = None;
        for (j, join) in sel.joins.iter().enumerate() {
            if done[j] || !left_refs[j].iter().all(|&s| placed[s]) {
                continue;
            }
            let right = &srcs[j + 1];
            let mut denom = 1.0f64;
            for &(l, r) in join.hash_keys.as_ref().expect("checked above") {
                denom *= key_ndv(sel, l, &srcs, card).max(right_key_ndv(sel, r, right));
            }
            let est = card * right.est_rows / denom.max(1.0);
            if best.is_none_or(|(b, _)| est < b) {
                best = Some((est, j));
            }
        }
        let (est, j) = best.ok_or("join graph is disconnected")?;
        order.push(j);
        est_joins.push(est);
        done[j] = true;
        placed[j + 1] = true;
        card = est;
    }
    let reordered = order.iter().enumerate().any(|(i, &j)| i != j);
    let any_pushed = srcs.iter().any(|s| !s.pushed.is_empty());
    let any_probe = srcs.iter().any(|s| s.probe.is_some());
    let nontrivial = reordered || any_probe || (n_joins > 0 && any_pushed);
    Ok(Decision { srcs, order, reordered, est_joins, residual, nontrivial })
}

// ---------------------------------------------------------------------------
// Pure execution phase
// ---------------------------------------------------------------------------

/// Wrap one source's filtered row ids as a relation whose columns sit at
/// the block's combined offsets, so block-scope expressions evaluate
/// unchanged. Foreign columns map to a dummy entry that is provably never
/// gathered (single-source expressions reference only their own slots);
/// `materialize_row` must not be called on the result.
fn positioned(set: &Arc<ColumnSet>, ids: Vec<u32>, offset: usize, total_width: usize) -> Rel {
    let w = set.width();
    let len = ids.len();
    Rel {
        srcs: vec![Arc::clone(set)],
        rowids: vec![ids],
        len,
        col_map: (0..total_width)
            .map(|c| {
                if c >= offset && c < offset + w {
                    (0u32, (c - offset) as u32)
                } else {
                    (0u32, 0u32)
                }
            })
            .collect(),
        width: total_width,
    }
}

/// Replay log of one pushed-filter application, for the commit phase.
struct FilterApp {
    input: u64,
    kept: u64,
    /// Per-batch `(input, kept)` for the selectivity histogram.
    batches: Vec<(u64, u64)>,
    /// Rows handled by dictionary-code kernels, replayed at commit.
    dict_rows: u64,
}

/// Apply one pushed conjunct to a source's surviving ids, purely.
fn pure_filter(
    sel: &CSelect,
    flags: &[bool],
    rel: &Rel,
    pred: ExprId,
    batch: usize,
    pool: &BatchPool,
) -> Result<(Vec<u32>, FilterApp), Unvec> {
    let ev = Ev::new(sel, rel, flags, pool);
    let mut keep: Vec<u32> = Vec::new();
    let mut batches = Vec::new();
    let mut rows = pool.take_u32();
    let mut start = 0usize;
    while start < rel.len {
        let end = (start + batch).min(rel.len);
        rows.clear();
        rows.extend(start as u32..end as u32);
        let col = ev.eval(pred, &rows)?;
        let before = keep.len();
        for (i, &row) in rows.iter().enumerate() {
            if col.truth_at(i) == Some(true) {
                keep.push(row);
            }
        }
        col.recycle(pool);
        batches.push(((end - start) as u64, (keep.len() - before) as u64));
        start = end;
    }
    pool.put_u32(rows);
    let kept_ids: Vec<u32> = keep.iter().map(|&i| rel.rowids[0][i as usize]).collect();
    let app = FilterApp {
        input: rel.len as u64,
        kept: kept_ids.len() as u64,
        batches,
        dict_rows: ev.dict_rows.get(),
    };
    Ok((kept_ids, app))
}

/// Evaluate one side's join keys purely (no obs, no charges) — mirror of
/// the vectorized `side_keys` with the side pre-picked, accumulating the
/// same typed [`SideKeys`] representation so the optimizer's joins run
/// the code-space atom loops. Returns the keys plus the number of batches
/// consumed (replayed at commit).
fn pure_keys(
    sel: &CSelect,
    flags: &[bool],
    rel: &Rel,
    key_ids: &[ExprId],
    batch: usize,
    pool: &BatchPool,
) -> Result<(SideKeys, u64), Unvec> {
    let ev = Ev::new(sel, rel, flags, pool);
    let mut acc = SideKeys::Cols(
        key_ids
            .iter()
            .map(|_| {
                let mut bits = pool.take_u64();
                bits.reserve(rel.len);
                KeyCol::Bits(bits)
            })
            .collect(),
    );
    let mut batches = 0u64;
    let mut rows = pool.take_u32();
    let mut start = 0usize;
    while start < rel.len {
        let end = (start + batch).min(rel.len);
        rows.clear();
        rows.extend(start as u32..end as u32);
        let cols = key_ids
            .iter()
            .map(|&k| ev.eval(k, &rows))
            .collect::<Result<Vec<_>, _>>()?;
        match &mut acc {
            SideKeys::Cols(kcols)
                if kcols.iter().zip(&cols).all(|(kc, c)| kc.can_append(c)) =>
            {
                for (kc, c) in kcols.iter_mut().zip(&cols) {
                    kc.append(c, rows.len());
                }
            }
            _ => {
                let mut gen =
                    std::mem::replace(&mut acc, SideKeys::Gen(Vec::new())).into_gen();
                vector::append_gen(&mut gen, &cols, rows.len());
                acc = SideKeys::Gen(gen);
            }
        }
        for c in cols {
            c.recycle(pool);
        }
        batches += 1;
        start = end;
    }
    pool.put_u32(rows);
    Ok((acc, batches))
}

/// Per-source pure-phase outcome.
struct SourceExec {
    probe_used: bool,
    probe_kept: u64,
    filters: Vec<FilterApp>,
}

impl SourceExec {
    fn untouched(&self) -> bool {
        !self.probe_used && self.filters.is_empty()
    }
}

/// Per-join pure-phase outcome (in execution order).
struct JoinExec {
    j: usize,
    build_len: u64,
    probe_len: u64,
    emitted: u64,
    key_batches: u64,
    est: f64,
    used_index: bool,
    /// Rows streamed through the dictionary-code translation (replayed as
    /// telemetry at commit).
    dict_rows: u64,
}

/// Convert an equality-probe constant to its index key; `None` means the
/// predicate can match nothing (NULL or NaN never equals anything).
fn probe_key(v: &Value) -> Option<VKey> {
    match v {
        Value::Null => None,
        Value::Int(n) => Some(VKey::num(*n as f64)),
        Value::Float(x) => (!x.is_nan()).then(|| VKey::num(*x)),
        Value::Str(s) => Some(VKey::Str(Arc::from(s.to_ascii_lowercase()))),
    }
}

// ---------------------------------------------------------------------------
// Explain
// ---------------------------------------------------------------------------

/// One rendered plan operator with its estimated vs actual cardinality.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainStep {
    /// Operator kind: `scan`, `index_probe`, `filter`, `join`,
    /// `residual_filter`, or `output`.
    pub op: String,
    /// Operator target (table name, predicate count, …).
    pub target: String,
    /// Planner's cardinality estimate going *out* of this operator.
    pub est_rows: f64,
    /// Observed output cardinality.
    pub actual_rows: u64,
}

/// A rendered plan choice: what the cost-based planner decided for one
/// statement, with estimated vs actual cardinalities per operator.
/// Deterministic for a given database + statement — byte-identical at any
/// thread count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Explanation {
    /// Database the plan ran against.
    pub database: String,
    /// Whether the cost-based path executed the statement.
    pub optimized: bool,
    /// Why the optimizer declined, when `optimized` is false.
    pub reason: Option<String>,
    /// Sources in FROM-clause order.
    pub from_order: Vec<String>,
    /// Sources in chosen execution order (first scan, then each join's
    /// right side).
    pub join_order: Vec<String>,
    /// True when the executed join order differs from the FROM order.
    pub reordered: bool,
    /// Number of `WHERE` conjuncts pushed below the join tree.
    pub predicates_pushed: usize,
    /// Number of index-probe access paths taken.
    pub index_probes: usize,
    /// Operator-level plan with estimated vs actual cardinalities.
    pub steps: Vec<ExplainStep>,
    /// Final result-set row count.
    pub rows_out: u64,
}

impl Explanation {
    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("database: {}\n", self.database));
        out.push_str(&format!("optimized: {}\n", self.optimized));
        if let Some(r) = &self.reason {
            out.push_str(&format!("reason: {r}\n"));
        }
        if !self.join_order.is_empty() {
            out.push_str(&format!(
                "join order: {}{}\n",
                self.join_order.join(" -> "),
                if self.reordered { " (reordered)" } else { "" }
            ));
        }
        out.push_str(&format!(
            "predicates pushed: {} | index probes: {}\n",
            self.predicates_pushed, self.index_probes
        ));
        for s in &self.steps {
            out.push_str(&format!(
                "  {:<14} {:<24} est={:<12.1} actual={}\n",
                s.op, s.target, s.est_rows, s.actual_rows
            ));
        }
        out.push_str(&format!("rows out: {}\n", self.rows_out));
        out
    }

    /// Single-line JSON rendering (no external dependencies).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    '\n' => "\\n".chars().collect(),
                    c if (c as u32) < 0x20 => {
                        format!("\\u{:04x}", c as u32).chars().collect()
                    }
                    c => vec![c],
                })
                .collect()
        }
        let steps = self
            .steps
            .iter()
            .map(|s| {
                format!(
                    "{{\"op\":\"{}\",\"target\":\"{}\",\"est_rows\":{:.2},\"actual_rows\":{}}}",
                    esc(&s.op),
                    esc(&s.target),
                    s.est_rows,
                    s.actual_rows
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let names = |v: &[String]| {
            v.iter().map(|n| format!("\"{}\"", esc(n))).collect::<Vec<_>>().join(",")
        };
        format!(
            "{{\"database\":\"{}\",\"optimized\":{},\"reason\":{},\"from_order\":[{}],\
             \"join_order\":[{}],\"reordered\":{},\"predicates_pushed\":{},\
             \"index_probes\":{},\"steps\":[{}],\"rows_out\":{}}}",
            esc(&self.database),
            self.optimized,
            self.reason
                .as_ref()
                .map_or("null".to_owned(), |r| format!("\"{}\"", esc(r))),
            names(&self.from_order),
            names(&self.join_order),
            self.reordered,
            self.predicates_pushed,
            self.index_probes,
            steps,
            self.rows_out
        )
    }
}

// ---------------------------------------------------------------------------
// The optimized executor
// ---------------------------------------------------------------------------

/// Try to execute `plan` through the cost-based path. `None` means the
/// plan was ineligible or the optimization was trivial (nothing pushed,
/// probed, or reordered) — the caller falls through to the normal
/// executors at zero cost, because nothing was charged or observed.
pub(crate) fn try_execute(
    plan: &CompiledPlan,
    db: &Database,
    opts: ExecOptions,
) -> Option<Result<ResultSet, EngineError>> {
    let runner = Runner::new(db, opts);
    let result = attempt(&runner, &plan.root, db, false, None)?;
    record_statement(&runner.meter, &result);
    Some(result)
}

/// Explain `plan`: run it (optimized when eligible, unoptimized
/// otherwise) and report the chosen plan with estimated vs actual
/// cardinalities.
pub(crate) fn explain_plan(
    plan: &CompiledPlan,
    db: &Database,
    opts: ExecOptions,
) -> Result<Explanation, EngineError> {
    let mut ex = Explanation { database: db.name.clone(), ..Default::default() };
    let gated = opts.optimize && opts.hash_join && opts.limits.is_unlimited();
    if gated {
        let runner = Runner::new(db, opts);
        if let Some(result) = attempt(&runner, &plan.root, db, true, Some(&mut ex)) {
            let rs = result?;
            ex.optimized = true;
            ex.rows_out = rs.rows.len() as u64;
            return Ok(ex);
        }
    } else {
        ex.reason =
            Some("optimizer gated off (finite limits, hash_join=false, or optimize=false)".into());
    }
    let rs = plan.execute(db, ExecOptions { optimize: false, ..opts })?;
    ex.optimized = false;
    if ex.reason.is_none() {
        ex.reason = Some("plan not eligible for cost-based execution".into());
    }
    ex.steps.clear();
    ex.rows_out = rs.rows.len() as u64;
    Ok(ex)
}

/// The optimized executor: analysis, pure phase, commit. See the module
/// docs for the equivalence argument. `force` takes the optimized path
/// even when trivial (explain wants the plan rendered either way).
#[allow(clippy::too_many_lines)]
fn attempt(
    r: &Runner<'_>,
    sel: &CSelect,
    db: &Database,
    force: bool,
    mut explain: Option<&mut Explanation>,
) -> Option<Result<ResultSet, EngineError>> {
    let flags = scalar_flags(sel);
    let dec = match analyze(sel, db, &flags) {
        Ok(d) => d,
        Err(reason) => {
            if let Some(ex) = explain {
                ex.reason = Some(reason.to_owned());
            }
            return None;
        }
    };
    if !(force || dec.nontrivial) {
        if let Some(ex) = explain {
            ex.reason = Some("optimization is trivial for this plan".to_owned());
        }
        return None;
    }
    let batch = r.opts.batch_size.unwrap_or_else(|| adaptive_batch_size(sel.width)).max(1);
    let nsrc = dec.srcs.len();

    // ---- Pure phase (no charges, no obs; any surprise bails for free) --
    let mut src_ids: Vec<Vec<u32>> = Vec::with_capacity(nsrc);
    let mut src_exec: Vec<SourceExec> = Vec::with_capacity(nsrc);
    for s in &dec.srcs {
        let mut ids: Vec<u32> = (0..s.set.len as u32).collect();
        let mut ex = SourceExec { probe_used: false, probe_kept: 0, filters: Vec::new() };
        let mut to_filter: Vec<ExprId> = s.pushed.clone();
        if let Some((local, conj, key)) = &s.probe {
            let t = db.table(&s.name)?;
            let ix = t.index(*local);
            if ix.filter_exact {
                ids = probe_key(key)
                    .and_then(|k| ix.map.get(&k).cloned())
                    .unwrap_or_default();
                to_filter.retain(|c| c != conj);
                ex.probe_used = true;
                ex.probe_kept = ids.len() as u64;
            }
        }
        for &c in &to_filter {
            let rel = positioned(&s.set, ids, s.offset, sel.width);
            let (kept, app) = pure_filter(sel, &flags, &rel, c, batch, &r.pool).ok()?;
            ids = kept;
            ex.filters.push(app);
        }
        src_ids.push(ids);
        src_exec.push(ex);
    }

    // Joins in cost order over physical-row-id assignments.
    let mut assign: Vec<Option<Vec<u32>>> = vec![None; nsrc];
    assign[0] = Some(src_ids[0].clone());
    let mut n = src_ids[0].len();
    let mut join_exec: Vec<JoinExec> = Vec::with_capacity(dec.order.len());
    for (pos, &j) in dec.order.iter().enumerate() {
        let join = &sel.joins[j];
        let right = j + 1;
        let s = &dec.srcs[right];
        let keys = join.hash_keys.as_ref()?;
        let left_ids: Vec<ExprId> = keys.iter().map(|&(l, _)| l).collect();
        let right_ids: Vec<ExprId> = keys.iter().map(|&(_, rk)| rk).collect();

        // Left keys evaluate over the partially assembled combined row:
        // placed sources carry their physical ids, absent sources a
        // NONE_RID pad (gathers as NULL; left keys never reference them).
        let lrel = Rel {
            srcs: dec.srcs.iter().map(|s| Arc::clone(&s.set)).collect(),
            rowids: (0..nsrc)
                .map(|si| assign[si].clone().unwrap_or_else(|| vec![NONE_RID; n]))
                .collect(),
            len: n,
            col_map: dec
                .srcs
                .iter()
                .enumerate()
                .flat_map(|(si, s)| (0..s.width).map(move |c| (si as u32, c as u32)))
                .collect(),
            width: sel.width,
        };
        let (lkeys, lb) = pure_keys(sel, &flags, &lrel, &left_ids, batch, &r.pool).ok()?;

        // Build side: an untouched right source with a plain single-column
        // key reuses the secondary index as a prebuilt build table — same
        // key equivalence ([`VKey`]), same ascending-row bucket order, so
        // the emission sequence is identical to building from scratch.
        let single_col = match (keys.len() == 1, &sel.arena[right_ids[0]]) {
            (true, CExpr::Slot { up: 0, idx }) if *idx < s.width => Some(*idx),
            _ => None,
        };
        let mut key_batches = lb;
        let mut used_index = false;
        let mut dict_rows = 0u64;
        let mut emits = r.pool.take_pairs();
        if let Some(col) = single_col.filter(|_| src_exec[right].untouched()) {
            let ix = db.table(&s.name)?.index(col);
            used_index = true;
            for li in 0..lkeys.len() {
                if let Some(vk) = lkeys.one_at(li) {
                    if let Some(hits) = ix.map.get(&vk) {
                        for &ri in hits {
                            emits.push((li as u32, ri));
                        }
                    }
                }
            }
        } else {
            let rrel = positioned(&s.set, src_ids[right].clone(), 0, s.width);
            let (rkeys, rb) = pure_keys(sel, &flags, &rrel, &right_ids, batch, &r.pool).ok()?;
            key_batches += rb;
            // One- and two-column typed sides run the code-space atom
            // loops (inner joins only here, build side = right); anything
            // else falls back to hashing JoinKeys.
            let pairs = match (lkeys, rkeys) {
                (SideKeys::Cols(lc), SideKeys::Cols(rc)) if lc.len() <= 2 => {
                    let atoms: Vec<(Vec<u64>, Vec<u64>)> = lc
                        .into_iter()
                        .zip(rc)
                        .map(|(l, rcol)| vector::atom_pair(l, rcol, true, &mut dict_rows))
                        .collect();
                    let pairs = match atoms.as_slice() {
                        [(l0, r0)] => vector::pure_inner_join_atoms(l0, r0, &r.pool),
                        [(l0, r0), (l1, r1)] => {
                            let lz: Vec<(u64, u64)> =
                                l0.iter().zip(l1).map(|(&a, &b)| (a, b)).collect();
                            let rz: Vec<(u64, u64)> =
                                r0.iter().zip(r1).map(|(&a, &b)| (a, b)).collect();
                            vector::pure_inner_join_atoms(&lz, &rz, &r.pool)
                        }
                        _ => unreachable!("guard admits one or two key columns"),
                    };
                    for (a, b) in atoms {
                        r.pool.put_u64(a);
                        r.pool.put_u64(b);
                    }
                    pairs
                }
                (lk, rk) => {
                    let (lg, rg) = (lk.into_gen(), rk.into_gen());
                    let mut table: HashMap<&JoinKey, Vec<u32>> = HashMap::new();
                    for (ri, k) in rg.iter().enumerate() {
                        if let Some(k) = k {
                            table.entry(k).or_default().push(ri as u32);
                        }
                    }
                    let mut out = r.pool.take_pairs();
                    for (li, k) in lg.iter().enumerate() {
                        if let Some(k) = k {
                            if let Some(hits) = table.get(k) {
                                for &ri in hits {
                                    out.push((li as u32, ri));
                                }
                            }
                        }
                    }
                    out
                }
            };
            // Logical → physical for the filtered side.
            emits.extend(pairs.iter().map(|&(li, ri)| (li, src_ids[right][ri as usize])));
            r.pool.put_pairs(pairs);
        }

        for a in &mut assign {
            if let Some(prev) = a.take() {
                *a = Some(emits.iter().map(|&(l, _)| prev[l as usize]).collect());
            }
        }
        assign[right] = Some(emits.iter().map(|&(_, ri)| ri).collect());
        join_exec.push(JoinExec {
            j,
            build_len: src_ids[right].len() as u64,
            probe_len: n as u64,
            emitted: emits.len() as u64,
            key_batches,
            est: dec.est_joins[pos],
            used_index,
            dict_rows,
        });
        n = emits.len();
        r.pool.put_pairs(emits);
    }

    // Restore the FROM-order emission sequence: inner equi-join chains
    // emit lexicographically in their physical row-id tuple, and the
    // tuples are distinct, so one sort is exact.
    if dec.reordered && n > 1 {
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let cols: Vec<&Vec<u32>> = assign.iter().map(|a| a.as_ref().expect("all placed")).collect();
        perm.sort_unstable_by(|&a, &b| {
            for ids in &cols {
                match ids[a as usize].cmp(&ids[b as usize]) {
                    std::cmp::Ordering::Equal => continue,
                    o => return o,
                }
            }
            std::cmp::Ordering::Equal
        });
        for a in assign.iter_mut() {
            let ids = a.as_ref().expect("all placed");
            *a = Some(perm.iter().map(|&p| ids[p as usize]).collect());
        }
    }

    let rel = Rel {
        srcs: dec.srcs.iter().map(|s| Arc::clone(&s.set)).collect(),
        rowids: assign.into_iter().map(|a| a.expect("all placed")).collect(),
        len: n,
        col_map: dec
            .srcs
            .iter()
            .enumerate()
            .flat_map(|(si, s)| (0..s.width).map(move |c| (si as u32, c as u32)))
            .collect(),
        width: sel.width,
    };

    // ---- Commit phase: replay charges and observability, then finish ---
    if let Err(e) = r.meter.enter_block() {
        return Some(Err(e));
    }
    let result = (|| -> Result<ResultSet, EngineError> {
        for (s, ex) in dec.srcs.iter().zip(&src_exec) {
            r.meter.charge_steps(s.set.len as u64)?;
            snails_obs::observe(Obs::EngineOpScanRows, s.set.len as u64);
            let batches = s.set.len.div_ceil(batch) as u64;
            snails_obs::add(Obs::EngineVecBatches, batches);
            snails_obs::add(Obs::EngineOpScanBatches, batches);
            for col in &s.set.cols {
                if let ColData::Str { dict, .. } = col {
                    snails_obs::observe(Obs::EngineVecDictEntries, dict.len() as u64);
                }
            }
            if ex.probe_used {
                snails_obs::add(Obs::EngineOptIndexProbes, 1);
                r.meter.charge_steps(ex.probe_kept)?;
                snails_obs::observe(Obs::EngineOpFilterRows, ex.probe_kept);
            }
            for f in &ex.filters {
                r.meter.charge_steps(f.input)?;
                for &(inp, kept) in &f.batches {
                    snails_obs::add(Obs::EngineVecBatches, 1);
                    snails_obs::add(Obs::EngineOpFilterBatches, 1);
                    snails_obs::observe(Obs::EngineVecSelectivityPct, kept * 100 / inp.max(1));
                }
                if f.dict_rows > 0 {
                    snails_obs::add(Obs::EngineVecDictKernelRows, f.dict_rows);
                }
                snails_obs::observe(Obs::EngineOpFilterRows, f.kept);
            }
        }
        snails_obs::add(Obs::EngineOptPlans, 1);
        let displaced = dec.order.iter().enumerate().filter(|&(i, &j)| i != j).count() as u64;
        if displaced > 0 {
            snails_obs::add(Obs::EngineOptJoinsReordered, displaced);
        }
        let pushed_total: u64 = dec.srcs.iter().map(|s| s.pushed.len() as u64).sum();
        if pushed_total > 0 {
            snails_obs::add(Obs::EngineOptPredicatesPushed, pushed_total);
        }
        for je in &join_exec {
            r.meter.charge_join(je.build_len)?;
            r.meter.charge_join(je.probe_len + je.emitted)?;
            snails_obs::add(Obs::EngineVecBatches, je.key_batches);
            snails_obs::add(Obs::EngineOpJoinBatches, je.key_batches);
            if je.dict_rows > 0 {
                snails_obs::add(Obs::EngineVecDictKernelRows, je.dict_rows);
            }
            snails_obs::observe(Obs::EngineOpJoinRows, je.emitted);
            let err_pct =
                ((je.est - je.emitted as f64).abs() / (je.emitted.max(1) as f64) * 100.0)
                    .min(100_000.0) as u64;
            snails_obs::observe(Obs::EngineOptCardErrPct, err_pct);
        }
        let mut rel = rel;
        let before_residual = rel.len as u64;
        let after_residual;
        let result;
        if r.opts.fusion {
            // Residual conjuncts chain a selection vector instead of
            // re-materializing the joined row set after each predicate;
            // the tail consumes the final selection directly.
            let mut sel_rows: Option<Vec<u32>> = None;
            for &c in &dec.residual {
                let next = vector::filter_sel(r, sel, &rel, c, sel_rows.as_deref(), batch, &flags)?;
                if let Some(prev) = sel_rows.replace(next) {
                    r.pool.put_u32(prev);
                }
            }
            if !dec.residual.is_empty() {
                snails_obs::add(Obs::EngineVecFusedPipelines, 1);
            }
            after_residual = sel_rows.as_ref().map_or(rel.len as u64, |s| s.len() as u64);
            result = vector::tail(r, sel, &rel, sel_rows.as_deref(), &flags);
            if let Some(s) = sel_rows {
                r.pool.put_u32(s);
            }
        } else {
            for &c in &dec.residual {
                rel = vector::filter(r, sel, rel, c, batch, &flags)?;
            }
            after_residual = rel.len as u64;
            result = vector::tail(r, sel, &rel, None, &flags);
        }
        let result = result?;

        if let Some(ex) = explain.as_mut() {
            ex.from_order = dec.srcs.iter().map(|s| s.name.clone()).collect();
            ex.join_order = std::iter::once(dec.srcs[0].name.clone())
                .chain(dec.order.iter().map(|&j| dec.srcs[j + 1].name.clone()))
                .collect();
            ex.reordered = dec.reordered;
            ex.predicates_pushed = dec.srcs.iter().map(|s| s.pushed.len()).sum();
            ex.index_probes = src_exec.iter().filter(|e| e.probe_used).count();
            let mut steps = Vec::new();
            for ((s, e), ids) in dec.srcs.iter().zip(&src_exec).zip(&src_ids) {
                steps.push(ExplainStep {
                    op: if e.probe_used { "index_probe" } else { "scan" }.to_owned(),
                    target: s.name.clone(),
                    est_rows: s.est_rows,
                    actual_rows: ids.len() as u64,
                });
            }
            for je in &join_exec {
                steps.push(ExplainStep {
                    op: if je.used_index { "join(index)" } else { "join" }.to_owned(),
                    target: dec.srcs[je.j + 1].name.clone(),
                    est_rows: je.est,
                    actual_rows: je.emitted,
                });
            }
            if !dec.residual.is_empty() {
                steps.push(ExplainStep {
                    op: "residual_filter".to_owned(),
                    target: format!("{} conjunct(s)", dec.residual.len()),
                    est_rows: before_residual as f64 / 3.0f64.powi(dec.residual.len() as i32),
                    actual_rows: after_residual,
                });
            }
            steps.push(ExplainStep {
                op: "output".to_owned(),
                target: "result".to_owned(),
                est_rows: steps.last().map_or(0.0, |s| s.est_rows),
                actual_rows: result.rows.len() as u64,
            });
            ex.steps = steps;
        }
        Ok(result)
    })();
    r.meter.exit_block();
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableSchema;
    use crate::value::DataType;

    fn three_table_db() -> Database {
        let mut db = Database::new("opt");
        db.create_table(
            TableSchema::new("fact")
                .column("k1", DataType::Int)
                .column("k2", DataType::Int)
                .column("v", DataType::Int),
        );
        db.create_table(
            TableSchema::new("d1").column("k1", DataType::Int).column("a", DataType::Varchar),
        );
        db.create_table(
            TableSchema::new("d2").column("k2", DataType::Int).column("b", DataType::Varchar),
        );
        for i in 0..600i64 {
            db.insert("fact", vec![Value::Int(i % 30), Value::Int(i % 50), Value::Int(i)])
                .unwrap();
        }
        for j in 0..30i64 {
            db.insert("d1", vec![Value::Int(j), Value::from(format!("a{j}").as_str())])
                .unwrap();
        }
        for j in 0..50i64 {
            db.insert("d2", vec![Value::Int(j), Value::from(format!("b{j}").as_str())])
                .unwrap();
        }
        db
    }

    fn explain_of(db: &Database, sql: &str) -> Explanation {
        let stmt = snails_sql::parse(sql).unwrap();
        let plan = crate::compile(db, &stmt).unwrap();
        plan.explain(db, ExecOptions::default()).unwrap()
    }

    #[test]
    fn join_order_pinned_for_skewed_fixture() {
        let db = three_table_db();
        // Filtering d2 to one key makes fact⋈d2 the cheaper first join.
        let ex = explain_of(
            &db,
            "SELECT COUNT(*) FROM fact \
             JOIN d1 ON fact.k1 = d1.k1 \
             JOIN d2 ON fact.k2 = d2.k2 \
             WHERE d2.b = 'b7'",
        );
        assert!(ex.optimized, "reason: {:?}", ex.reason);
        assert!(ex.reordered);
        assert_eq!(ex.join_order, vec!["fact", "d2", "d1"]);
        assert_eq!(ex.predicates_pushed, 1);
        assert_eq!(ex.index_probes, 1);
        assert!(ex.steps.iter().any(|s| s.op.starts_with("join")));
    }

    #[test]
    fn unfiltered_joins_keep_from_order() {
        let db = three_table_db();
        let ex = explain_of(
            &db,
            "SELECT COUNT(*) FROM fact \
             JOIN d1 ON fact.k1 = d1.k1 \
             JOIN d2 ON fact.k2 = d2.k2",
        );
        assert!(ex.optimized, "reason: {:?}", ex.reason);
        // Both joins keep cardinality at 600; greedy ties break to the
        // original order.
        assert!(!ex.reordered);
        assert_eq!(ex.join_order, vec!["fact", "d1", "d2"]);
    }

    #[test]
    fn optimized_results_match_unoptimized() {
        let db = three_table_db();
        let queries = [
            "SELECT fact.v, d1.a, d2.b FROM fact \
             JOIN d1 ON fact.k1 = d1.k1 \
             JOIN d2 ON fact.k2 = d2.k2 \
             WHERE d2.b = 'b7' ORDER BY fact.v",
            "SELECT d1.a, COUNT(*) FROM fact \
             JOIN d1 ON fact.k1 = d1.k1 \
             JOIN d2 ON fact.k2 = d2.k2 \
             WHERE d2.k2 < 10 GROUP BY d1.a ORDER BY d1.a",
            "SELECT fact.v FROM fact JOIN d2 ON fact.k2 = d2.k2 WHERE fact.v = 123",
            "SELECT fact.v, d1.a FROM fact JOIN d1 ON fact.k1 = d1.k1 \
             WHERE d1.a = 'a3' AND fact.v < 100",
        ];
        for sql in queries {
            let stmt = snails_sql::parse(sql).unwrap();
            let plan = crate::compile(&db, &stmt).unwrap();
            let optimized = plan.execute(&db, ExecOptions::default()).unwrap();
            let plain = plan
                .execute(&db, ExecOptions { optimize: false, ..Default::default() })
                .unwrap();
            let row = plan
                .execute(
                    &db,
                    ExecOptions { optimize: false, vectorized: false, ..Default::default() },
                )
                .unwrap();
            assert_eq!(optimized, plain, "optimized vs vector mismatch: {sql}");
            assert_eq!(optimized, row, "optimized vs row mismatch: {sql}");
        }
    }

    #[test]
    fn finite_limits_gate_the_optimizer_off() {
        let db = three_table_db();
        let stmt = snails_sql::parse(
            "SELECT COUNT(*) FROM fact JOIN d2 ON fact.k2 = d2.k2 WHERE d2.b = 'b7'",
        )
        .unwrap();
        let plan = crate::compile(&db, &stmt).unwrap();
        let limited = ExecOptions {
            limits: crate::ExecLimits { max_steps: Some(1_000_000), ..Default::default() },
            ..Default::default()
        };
        let ex = plan.explain(&db, limited).unwrap();
        assert!(!ex.optimized);
        assert!(ex.reason.as_deref().unwrap_or("").contains("gated off"));
        // And the gated execution still returns correct rows.
        let rs = plan.execute(&db, limited).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(12)]]);
    }

    #[test]
    fn explain_json_parses_shape() {
        let db = three_table_db();
        let ex = explain_of(
            &db,
            "SELECT COUNT(*) FROM fact JOIN d1 ON fact.k1 = d1.k1 \
             JOIN d2 ON fact.k2 = d2.k2 WHERE d2.b = 'b7'",
        );
        let json = ex.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"optimized\":true"));
        assert!(json.contains("\"est_rows\""));
        assert!(json.contains("\"actual_rows\""));
        assert!(ex.render().contains("join order"));
    }
}
