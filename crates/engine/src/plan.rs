//! Compile-once query plans.
//!
//! The AST interpreter in [`crate::exec`] re-resolves every column
//! reference by string comparison per row and re-walks the raw AST for
//! every predicate, projection, and correlated subquery. The SNAILS grid
//! executes the same few hundred gold/predicted queries across every
//! (database × variant × workflow) cell, so this module lowers a parsed
//! [`Statement`] **once** into a [`CompiledPlan`]:
//!
//! * column references become positional [`CExpr::Slot`]s — `(up, index)`
//!   into the lexical frame chain — resolved at plan time against the same
//!   binding lists `Scope::resolve` would search per row;
//! * predicates, projections, and aggregate arguments become a flat typed
//!   expression IR (an arena of [`CExpr`] nodes indexed by `ExprId`)
//!   evaluated over slot indices;
//! * correlated subqueries are compiled once and re-bound per outer row
//!   through the runtime [`Frame`] chain;
//! * `LIKE` patterns are pre-lowercased at plan time and matched with the
//!   linear-time two-pointer [`like_match`];
//! * name-resolution errors (unknown/ambiguous columns, unknown tables)
//!   are *frozen into the plan* as [`CExpr::Err`] thunks that raise at the
//!   exact point the interpreter would, so compiled execution is
//!   output-identical — same `ResultSet`s **and** same `EngineError`s,
//!   including [`ExecLimits`](crate::ExecLimits) `ResourceExhausted`
//!   accounting, which goes through the same shared [`Meter`].
//!
//! A plan snapshots catalog *structure* (table/view column lists and view
//! bodies), not data: table rows are re-read from the database at each
//! execution. Compile against the database you will execute against, after
//! any DDL (view installation) is done. [`CompiledPlan::execute`] guards
//! against cross-database misuse by name; [`PlanCache`] additionally keys
//! its map by database name.

use std::cell::RefCell;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

use snails_sql::{
    BinOp, ColumnRef, Expr, FunctionArg, JoinKind, Literal, OrderItem, SelectItem,
    SelectStatement, Statement, TableSource, UnaryOp, UnionKind,
};

use crate::catalog::Database;
use crate::error::EngineError;
use crate::exec::{
    bool_value, contains_aggregate, equi_join_keys, eval_binary, eval_unary, finish_aggregate,
    is_aggregate_name, like_match, record_statement, scalar_fn, truth, Binding, ExecLimits,
    ExecOptions, Meter,
};
use snails_obs::Metric as Obs;
use crate::result::ResultSet;
use crate::value::{HashKey, Value};

/// Index of a [`CExpr`] node in its block's arena.
///
/// Arenas are built in post-order — every node is pushed after its
/// children — so a child's id is always smaller than its parent's. The
/// vectorized executor relies on this for one-pass per-node analyses.
pub(crate) type ExprId = usize;

/// A compiled scalar expression: the typed IR evaluated over slot indices.
#[derive(Debug)]
pub(crate) enum CExpr {
    /// A literal, pre-converted to a [`Value`] (strings already interned).
    Const(Value),
    /// A column reference resolved at plan time: hop `up` frames out, then
    /// read the row at combined-row offset `idx`.
    Slot {
        /// Number of enclosing query blocks to hop out of.
        up: u32,
        /// Offset into that block's combined row.
        idx: usize,
    },
    /// A plan-time-detectable error (unknown/ambiguous column, bare `*`,
    /// aggregate in scalar context), frozen as a thunk so it raises at the
    /// exact evaluation point where the interpreter would raise it.
    Err(EngineError),
    /// Unary operation.
    Unary { op: UnaryOp, expr: ExprId },
    /// Three-valued short-circuit `AND`.
    And { left: ExprId, right: ExprId },
    /// Three-valued short-circuit `OR`.
    Or { left: ExprId, right: ExprId },
    /// Comparison or arithmetic (never `And`/`Or`).
    Binary { left: ExprId, op: BinOp, right: ExprId },
    /// Scalar function call. The name stays a string so unknown-function
    /// and argument errors reproduce the interpreter's exact messages; the
    /// dispatch itself is the shared [`scalar_fn`].
    Func { name: String, args: Vec<CArg> },
    /// `expr IS [NOT] NULL`.
    IsNull { expr: ExprId, negated: bool },
    /// `expr [NOT] IN (v, ...)`.
    InList { expr: ExprId, list: Vec<ExprId>, negated: bool },
    /// `expr [NOT] IN (SELECT ...)` — subquery compiled once, re-bound per
    /// outer row. `uncorrelated` is the plan-time proof that no slot inside
    /// the block escapes it (see [`block_is_correlated`]), which licenses
    /// the per-execution memo in [`Runner::run_subquery`].
    InSubquery { expr: ExprId, query: Box<CSelect>, negated: bool, uncorrelated: bool },
    /// `[NOT] EXISTS (SELECT ...)`.
    Exists { query: Box<CSelect>, negated: bool, uncorrelated: bool },
    /// `expr [NOT] BETWEEN low AND high`.
    Between { expr: ExprId, low: ExprId, high: ExprId, negated: bool },
    /// `expr [NOT] LIKE pattern`, pattern pre-lowercased at plan time.
    Like { expr: ExprId, pattern: Box<str>, negated: bool },
    /// Scalar subquery.
    Subquery { query: Box<CSelect>, uncorrelated: bool },
    /// `CASE [operand] WHEN ... THEN ... [ELSE ...] END`.
    Case {
        operand: Option<ExprId>,
        branches: Vec<(ExprId, ExprId)>,
        else_expr: Option<ExprId>,
    },
}

/// Compiled function argument.
#[derive(Debug)]
pub(crate) enum CArg {
    /// `*` — raises `{name}(*) is not valid` in argument position, exactly
    /// where the interpreter raises it.
    Wildcard,
    /// An ordinary expression argument.
    Expr(ExprId),
}

/// A compiled expression that may contain aggregates, mirroring the
/// interpreter's `eval_grouped`: aggregate calls compute over the group's
/// rows, everything else over the representative row.
#[derive(Debug)]
pub(crate) enum GExpr {
    /// An aggregate call.
    Agg { name: String, distinct: bool, arg: AggArg },
    /// Short-circuit `AND` over grouped operands.
    And(Box<GExpr>, Box<GExpr>),
    /// Short-circuit `OR` over grouped operands.
    Or(Box<GExpr>, Box<GExpr>),
    /// Non-logical binary over grouped operands.
    Binary { left: Box<GExpr>, op: BinOp, right: Box<GExpr> },
    /// Unary over a grouped operand.
    Unary { op: UnaryOp, expr: Box<GExpr> },
    /// No aggregate at this node: evaluate as a scalar over the
    /// representative row.
    Row(ExprId),
}

/// Compiled aggregate argument.
#[derive(Debug)]
pub(crate) enum AggArg {
    /// `COUNT(*)`.
    CountStar,
    /// Ordinary argument expression, evaluated per group row.
    Expr(ExprId),
    /// `*` under a non-COUNT aggregate — `{name}(*) is not valid`.
    StarInvalid,
    /// No argument — `{name} requires an argument`.
    Missing,
}

/// A projection/`HAVING`/`ORDER BY` expression: routed through the grouped
/// evaluator iff it contains an aggregate (decided statically, exactly as
/// the interpreter's per-call `contains_aggregate` check decides).
#[derive(Debug)]
pub(crate) enum CUnit {
    Row(ExprId),
    Grouped(GExpr),
}

/// Compiled projection item.
#[derive(Debug)]
pub(crate) enum CItem {
    /// Copy a source column by combined-row offset (wildcard expansion).
    Passthrough(usize),
    /// Evaluate an expression.
    Expr(CUnit),
}

/// Compiled `ORDER BY` key.
#[derive(Debug)]
pub(crate) enum COrder {
    /// Alias reference into the output row (T-SQL `ORDER BY alias`).
    Output(usize),
    /// Arbitrary expression over the unit.
    Unit(CUnit),
}

/// A compiled `FROM`/`JOIN` source.
#[derive(Debug)]
pub(crate) enum CSource {
    /// Base table: rows re-read from the database at execution.
    Table { name: String, width: usize },
    /// View or derived table: a nested block run with no parent scope.
    Sub { plan: Box<CSelect>, width: usize },
    /// Name that resolved to nothing at plan time — raises
    /// `UnknownTable` when (and only when) the source is loaded.
    Missing(String),
}

impl CSource {
    pub(crate) fn width(&self) -> usize {
        match self {
            CSource::Table { width, .. } | CSource::Sub { width, .. } => *width,
            CSource::Missing(_) => 0,
        }
    }
}

/// A compiled join step.
#[derive(Debug)]
pub(crate) struct CJoin {
    pub(crate) kind: JoinKind,
    pub(crate) source: CSource,
    /// Combined width of everything left of this join.
    pub(crate) left_width: usize,
    /// `ON` predicate compiled against the accumulated (left + right)
    /// bindings.
    pub(crate) on: Option<ExprId>,
    /// Equi-key pairs `(left key, right key)` compiled in side-local
    /// scopes, present iff the interpreter's `equi_join_keys` extraction
    /// succeeds on the same bindings — so the hash/nested decision is
    /// reached from literally the same classification.
    pub(crate) hash_keys: Option<Vec<(ExprId, ExprId)>>,
}

/// One compiled query block (a `SELECT` plus an optional `UNION` chain).
#[derive(Debug)]
pub(crate) struct CSelect {
    /// Flat expression arena for this block.
    pub(crate) arena: Vec<CExpr>,
    /// `FROM` source; `None` is the zero-width single-row set (`SELECT 1`).
    pub(crate) source: Option<CSource>,
    pub(crate) joins: Vec<CJoin>,
    pub(crate) where_clause: Option<ExprId>,
    /// True when the block aggregates (explicit `GROUP BY` or aggregate
    /// functions anywhere in items/`HAVING`/`ORDER BY`).
    pub(crate) grouped: bool,
    pub(crate) group_by: Vec<ExprId>,
    pub(crate) having: Option<CUnit>,
    /// Output names and item plans; `Err` for a plan-time projection error
    /// (unknown binding in `alias.*`), surfaced after `WHERE` runs —
    /// exactly where the interpreter surfaces it.
    pub(crate) projection: Result<(Vec<String>, Vec<CItem>), EngineError>,
    pub(crate) order_by: Vec<(COrder, bool)>,
    pub(crate) distinct: bool,
    pub(crate) top: Option<u64>,
    pub(crate) union: Option<(UnionKind, Box<CSelect>)>,
    /// Combined row width of the `FROM`/`JOIN` row set.
    pub(crate) width: usize,
}

/// A statement compiled against one database's catalog structure.
///
/// Holds no row data — executing re-reads table rows — but bakes in name
/// resolution, view bodies, and join strategy, so it must be executed
/// against the database it was compiled for.
#[derive(Debug)]
pub struct CompiledPlan {
    pub(crate) db_name: String,
    pub(crate) root: CSelect,
}

/// Lower a parsed statement into a [`CompiledPlan`] for `db`.
///
/// Mirrors [`crate::execute_with`]: `CREATE VIEW` is rejected here (it
/// needs a mutable database — use [`crate::apply_ddl`]).
pub fn compile(db: &Database, stmt: &Statement) -> Result<CompiledPlan, EngineError> {
    match stmt {
        Statement::Select(s) => Ok(CompiledPlan {
            db_name: db.name.clone(),
            root: Compiler { db }.compile_select(s, None),
        }),
        Statement::CreateView { .. } => Err(EngineError::unsupported(
            "CREATE VIEW requires apply_ddl (mutable database)",
        )),
    }
}

impl CompiledPlan {
    /// Execute the plan against `db`.
    ///
    /// Output-identical to running the original statement through
    /// [`crate::execute_with`] with the same options, provided `db` has the
    /// same structure it had at compile time.
    ///
    /// A plan is **mode-agnostic**: [`compile`] takes no [`ExecOptions`],
    /// so the same `CompiledPlan` serves the vectorized executor
    /// (`opts.vectorized`, the default — see [`crate::vector`]) and the
    /// row-at-a-time runner alike; the dispatch happens here, per
    /// execution. Both paths produce byte-identical results, errors, and
    /// budget accounting.
    pub fn execute(&self, db: &Database, opts: ExecOptions) -> Result<ResultSet, EngineError> {
        if db.name != self.db_name {
            return Err(EngineError::Catalog {
                message: format!(
                    "plan compiled for database {:?} executed against {:?}",
                    self.db_name, db.name
                ),
            });
        }
        if opts.optimize && opts.hash_join && opts.limits.is_unlimited() {
            // Cost-based path (see `crate::optimize`): only under
            // unlimited budgets, where pushdown/reordering cannot change
            // which budget trips first. Returns `None` (at zero cost —
            // nothing charged, nothing observed) when the plan is
            // ineligible or the optimization would be a no-op.
            if let Some(result) = crate::optimize::try_execute(self, db, opts) {
                return result;
            }
        }
        if opts.vectorized {
            return crate::vector::execute_plan(self, db, opts);
        }
        let runner = Runner::new(db, opts);
        let result = runner.run_select(&self.root, None);
        record_statement(&runner.meter, &result);
        result
    }

    /// Explain the plan: execute it against `db` (through the cost-based
    /// path when eligible) and report the planner's decisions with
    /// estimated vs actual cardinalities per operator. Deterministic for
    /// a given database + statement — byte-identical at any thread count.
    pub fn explain(
        &self,
        db: &Database,
        opts: ExecOptions,
    ) -> Result<crate::optimize::Explanation, EngineError> {
        if db.name != self.db_name {
            return Err(EngineError::Catalog {
                message: format!(
                    "plan compiled for database {:?} executed against {:?}",
                    self.db_name, db.name
                ),
            });
        }
        crate::optimize::explain_plan(self, db, opts)
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// Compile-time mirror of the runtime `Scope` chain: the binding lists of
/// each enclosing query block, without rows. Structurally 1:1 with the
/// [`Frame`] chain the runner builds, which is what makes `(up, idx)` slots
/// valid.
struct ScopeCtx<'a> {
    bindings: &'a [Binding],
    parent: Option<&'a ScopeCtx<'a>>,
}

impl<'a> ScopeCtx<'a> {
    /// Plan-time replica of `Scope::resolve`: same search order, same
    /// ambiguity rules, same errors — but returning a position instead of a
    /// value.
    fn resolve(&self, col: &ColumnRef) -> Result<(u32, usize), EngineError> {
        if let Some(q) = &col.qualifier {
            let mut offset = 0usize;
            for b in self.bindings {
                if b.name.eq_ignore_ascii_case(q) {
                    if let Some(i) =
                        b.columns.iter().position(|c| c.eq_ignore_ascii_case(&col.name))
                    {
                        return Ok((0, offset + i));
                    }
                    // Qualifier matched but column missing: fall through to
                    // the parent (same early break as the interpreter).
                    break;
                }
                offset += b.columns.len();
            }
            if let Some(p) = self.parent {
                return p.resolve(col).map(|(up, idx)| (up + 1, idx));
            }
            return Err(EngineError::UnknownColumn { name: format!("{q}.{}", col.name) });
        }
        let mut found: Option<usize> = None;
        let mut offset = 0usize;
        for b in self.bindings {
            if let Some(i) = b.columns.iter().position(|c| c.eq_ignore_ascii_case(&col.name)) {
                if found.is_some() {
                    return Err(EngineError::AmbiguousColumn { name: col.name.clone() });
                }
                found = Some(offset + i);
            }
            offset += b.columns.len();
        }
        if let Some(i) = found {
            return Ok((0, i));
        }
        if let Some(p) = self.parent {
            return p.resolve(col).map(|(up, idx)| (up + 1, idx));
        }
        Err(EngineError::UnknownColumn { name: col.name.clone() })
    }
}

struct Compiler<'a> {
    db: &'a Database,
}

impl<'a> Compiler<'a> {
    fn compile_select(&self, stmt: &SelectStatement, outer: Option<&ScopeCtx<'_>>) -> CSelect {
        let mut arena = Vec::new();

        // FROM and JOINs: build sources and the accumulated binding list.
        let mut bindings: Vec<Binding> = Vec::new();
        let source = stmt.from.as_ref().map(|src| {
            let (cs, b) = self.compile_source(src);
            bindings.push(b);
            cs
        });
        let mut joins = Vec::with_capacity(stmt.joins.len());
        for join in &stmt.joins {
            let (cs, b) = self.compile_source(&join.source);
            let left_width: usize = bindings.iter().map(|b| b.columns.len()).sum();
            let left_bindings_len = bindings.len();
            bindings.push(b);
            // Hash-key extraction runs on the exact binding slices the
            // interpreter hands to `equi_join_keys`, so plan time reaches
            // the identical hash/nested decision.
            let hash_keys = match (&join.on, join.kind) {
                (Some(pred), kind) if kind != JoinKind::Cross => {
                    let (left_b, right_b) = bindings.split_at(left_bindings_len);
                    equi_join_keys(pred, left_b, right_b).map(|keys| {
                        keys.iter()
                            .map(|&(l, r)| {
                                // Side-local scopes, as in the hash join's
                                // `side_key`: the extraction proved every
                                // column resolves inside its side.
                                let ls = ScopeCtx { bindings: left_b, parent: outer };
                                let lid = self.compile_expr(l, &ls, &mut arena);
                                let rs = ScopeCtx { bindings: right_b, parent: outer };
                                let rid = self.compile_expr(r, &rs, &mut arena);
                                (lid, rid)
                            })
                            .collect()
                    })
                }
                _ => None,
            };
            let on = join.on.as_ref().map(|pred| {
                let scope = ScopeCtx { bindings: &bindings, parent: outer };
                self.compile_expr(pred, &scope, &mut arena)
            });
            joins.push(CJoin { kind: join.kind, source: cs, left_width, on, hash_keys });
        }
        let width: usize = bindings.iter().map(|b| b.columns.len()).sum();
        let scope = ScopeCtx { bindings: &bindings, parent: outer };

        let where_clause =
            stmt.where_clause.as_ref().map(|p| self.compile_expr(p, &scope, &mut arena));

        let has_aggregates = stmt.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => contains_aggregate(expr),
            _ => false,
        }) || stmt.having.as_ref().is_some_and(contains_aggregate)
            || stmt.order_by.iter().any(|o| contains_aggregate(&o.expr));
        let grouped = has_aggregates || !stmt.group_by.is_empty();

        let projection = self.compile_projection(stmt, &bindings, &scope, &mut arena);

        let group_by: Vec<ExprId> =
            stmt.group_by.iter().map(|g| self.compile_expr(g, &scope, &mut arena)).collect();
        let having =
            stmt.having.as_ref().map(|h| self.compile_unit(h, &scope, &mut arena));

        let out_names: &[String] = match &projection {
            Ok((names, _)) => names,
            Err(_) => &[],
        };
        let order_by: Vec<(COrder, bool)> = stmt
            .order_by
            .iter()
            .map(|o| (self.compile_order_key(o, out_names, &scope, &mut arena), o.descending))
            .collect();

        let union = stmt
            .union
            .as_ref()
            .map(|(kind, rhs)| (*kind, Box::new(self.compile_select(rhs, outer))));

        CSelect {
            arena,
            source,
            joins,
            where_clause,
            grouped,
            group_by,
            having,
            projection,
            order_by,
            distinct: stmt.distinct,
            top: stmt.top,
            union,
            width,
        }
    }

    /// Plan-time replica of the interpreter's `load_source` name
    /// resolution: the table/view/shadowing decision is frozen into the
    /// plan (the row data is not).
    fn compile_source(&self, src: &TableSource) -> (CSource, Binding) {
        match src {
            TableSource::Named { schema, name, alias } => {
                let binding_name = alias.clone().unwrap_or_else(|| name.clone());
                let dbo = schema.as_deref().is_none_or(|s| s.eq_ignore_ascii_case("dbo"));
                let shadowing_view = if schema.is_none() {
                    self.db.view(None, name).or_else(|| {
                        self.db.views().find(|v| v.name.eq_ignore_ascii_case(name))
                    })
                } else {
                    None
                };
                if dbo && shadowing_view.is_none() {
                    if let Some(t) = self.db.table(name) {
                        let columns: Vec<String> =
                            t.schema.column_names().map(str::to_owned).collect();
                        let width = columns.len();
                        return (
                            CSource::Table { name: name.clone(), width },
                            Binding { name: binding_name, columns },
                        );
                    }
                }
                match shadowing_view.or_else(|| self.db.view(schema.as_deref(), name)) {
                    Some(view) => {
                        let plan = self.compile_select(&view.query, None);
                        let columns = plan.output_columns().to_vec();
                        let width = columns.len();
                        (
                            CSource::Sub { plan: Box::new(plan), width },
                            Binding { name: binding_name, columns },
                        )
                    }
                    None => (
                        CSource::Missing(name.clone()),
                        Binding { name: binding_name, columns: Vec::new() },
                    ),
                }
            }
            TableSource::Derived { query, alias } => {
                let plan = self.compile_select(query, None);
                let columns = plan.output_columns().to_vec();
                let width = columns.len();
                (
                    CSource::Sub { plan: Box::new(plan), width },
                    Binding { name: alias.clone(), columns },
                )
            }
        }
    }

    fn compile_projection(
        &self,
        stmt: &SelectStatement,
        bindings: &[Binding],
        scope: &ScopeCtx<'_>,
        arena: &mut Vec<CExpr>,
    ) -> Result<(Vec<String>, Vec<CItem>), EngineError> {
        let mut names = Vec::new();
        let mut items = Vec::new();
        for (i, item) in stmt.items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    let mut offset = 0usize;
                    for b in bindings {
                        for (ci, c) in b.columns.iter().enumerate() {
                            names.push(c.clone());
                            items.push(CItem::Passthrough(offset + ci));
                        }
                        offset += b.columns.len();
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let mut offset = 0usize;
                    let mut found = false;
                    for b in bindings {
                        if b.name.eq_ignore_ascii_case(q) {
                            for (ci, c) in b.columns.iter().enumerate() {
                                names.push(c.clone());
                                items.push(CItem::Passthrough(offset + ci));
                            }
                            found = true;
                            break;
                        }
                        offset += b.columns.len();
                    }
                    if !found {
                        return Err(EngineError::UnknownTable { name: q.clone() });
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let name = alias.clone().unwrap_or_else(|| match expr {
                        Expr::Column(c) => c.name.clone(),
                        Expr::Function { name, .. } => name.to_ascii_lowercase(),
                        _ => format!("expr_{i}"),
                    });
                    names.push(name);
                    items.push(CItem::Expr(self.compile_unit(expr, scope, arena)));
                }
            }
        }
        Ok((names, items))
    }

    fn compile_order_key(
        &self,
        item: &OrderItem,
        out_names: &[String],
        scope: &ScopeCtx<'_>,
        arena: &mut Vec<CExpr>,
    ) -> COrder {
        // Alias reference? The interpreter builds a last-wins
        // uppercase-name map, hence `rposition`.
        if let Expr::Column(c) = &item.expr {
            if c.qualifier.is_none() {
                if let Some(i) =
                    out_names.iter().rposition(|n| n.eq_ignore_ascii_case(&c.name))
                {
                    return COrder::Output(i);
                }
            }
        }
        COrder::Unit(self.compile_unit(&item.expr, scope, arena))
    }

    /// Compile an expression that may contain aggregates, choosing the
    /// grouped or row evaluator statically (the interpreter's `eval_unit`
    /// makes the same `contains_aggregate` choice per call).
    fn compile_unit(&self, e: &Expr, scope: &ScopeCtx<'_>, arena: &mut Vec<CExpr>) -> CUnit {
        if contains_aggregate(e) {
            CUnit::Grouped(self.compile_grouped(e, scope, arena))
        } else {
            CUnit::Row(self.compile_expr(e, scope, arena))
        }
    }

    /// Mirror of the interpreter's `eval_grouped` recursion shape.
    fn compile_grouped(&self, e: &Expr, scope: &ScopeCtx<'_>, arena: &mut Vec<CExpr>) -> GExpr {
        match e {
            Expr::Function { name, args, distinct } if is_aggregate_name(name) => {
                let arg = match args.first() {
                    Some(FunctionArg::Wildcard) if name == "COUNT" => AggArg::CountStar,
                    Some(FunctionArg::Wildcard) => AggArg::StarInvalid,
                    Some(FunctionArg::Expr(a)) => {
                        AggArg::Expr(self.compile_expr(a, scope, arena))
                    }
                    None => AggArg::Missing,
                };
                GExpr::Agg { name: name.clone(), distinct: *distinct, arg }
            }
            Expr::Binary { left, op: BinOp::And, right } => GExpr::And(
                Box::new(self.compile_grouped(left, scope, arena)),
                Box::new(self.compile_grouped(right, scope, arena)),
            ),
            Expr::Binary { left, op: BinOp::Or, right } => GExpr::Or(
                Box::new(self.compile_grouped(left, scope, arena)),
                Box::new(self.compile_grouped(right, scope, arena)),
            ),
            Expr::Binary { left, op, right } => GExpr::Binary {
                left: Box::new(self.compile_grouped(left, scope, arena)),
                op: *op,
                right: Box::new(self.compile_grouped(right, scope, arena)),
            },
            Expr::Unary { op, expr } => GExpr::Unary {
                op: *op,
                expr: Box::new(self.compile_grouped(expr, scope, arena)),
            },
            _ => GExpr::Row(self.compile_expr(e, scope, arena)),
        }
    }

    fn push(&self, arena: &mut Vec<CExpr>, node: CExpr) -> ExprId {
        arena.push(node);
        arena.len() - 1
    }

    /// Mirror of the interpreter's scalar `eval`, arm by arm, with name
    /// resolution and statically-detectable errors done now.
    fn compile_expr(&self, e: &Expr, scope: &ScopeCtx<'_>, arena: &mut Vec<CExpr>) -> ExprId {
        let node = match e {
            Expr::Literal(l) => CExpr::Const(match l {
                Literal::Int(n) => Value::Int(*n),
                Literal::Float(x) => Value::Float(*x),
                Literal::Str(s) => Value::from(s.as_str()),
                Literal::Null => Value::Null,
            }),
            Expr::Column(c) => match scope.resolve(c) {
                Ok((up, idx)) => CExpr::Slot { up, idx },
                Err(err) => CExpr::Err(err),
            },
            Expr::Unary { op, expr } => {
                let id = self.compile_expr(expr, scope, arena);
                CExpr::Unary { op: *op, expr: id }
            }
            Expr::Binary { left, op, right } => {
                let l = self.compile_expr(left, scope, arena);
                let r = self.compile_expr(right, scope, arena);
                match op {
                    BinOp::And => CExpr::And { left: l, right: r },
                    BinOp::Or => CExpr::Or { left: l, right: r },
                    _ => CExpr::Binary { left: l, op: *op, right: r },
                }
            }
            Expr::Function { name, args, .. } => {
                if is_aggregate_name(name) {
                    // The interpreter raises this before touching the
                    // arguments; freezing it keeps that precedence.
                    CExpr::Err(EngineError::type_error(format!(
                        "aggregate {name} outside grouped context"
                    )))
                } else {
                    let cargs = args
                        .iter()
                        .map(|a| match a {
                            FunctionArg::Wildcard => CArg::Wildcard,
                            FunctionArg::Expr(e) => {
                                CArg::Expr(self.compile_expr(e, scope, arena))
                            }
                        })
                        .collect();
                    CExpr::Func { name: name.clone(), args: cargs }
                }
            }
            Expr::IsNull { expr, negated } => {
                let id = self.compile_expr(expr, scope, arena);
                CExpr::IsNull { expr: id, negated: *negated }
            }
            Expr::InList { expr, list, negated } => {
                let id = self.compile_expr(expr, scope, arena);
                let list = list.iter().map(|i| self.compile_expr(i, scope, arena)).collect();
                CExpr::InList { expr: id, list, negated: *negated }
            }
            Expr::InSubquery { expr, query, negated } => {
                let id = self.compile_expr(expr, scope, arena);
                let plan = self.compile_select(query, Some(scope));
                let uncorrelated = !block_is_correlated(&plan, 0);
                CExpr::InSubquery {
                    expr: id,
                    query: Box::new(plan),
                    negated: *negated,
                    uncorrelated,
                }
            }
            Expr::Exists { query, negated } => {
                let plan = self.compile_select(query, Some(scope));
                let uncorrelated = !block_is_correlated(&plan, 0);
                CExpr::Exists { query: Box::new(plan), negated: *negated, uncorrelated }
            }
            Expr::Between { expr, low, high, negated } => {
                let e = self.compile_expr(expr, scope, arena);
                let lo = self.compile_expr(low, scope, arena);
                let hi = self.compile_expr(high, scope, arena);
                CExpr::Between { expr: e, low: lo, high: hi, negated: *negated }
            }
            Expr::Like { expr, pattern, negated } => {
                let id = self.compile_expr(expr, scope, arena);
                CExpr::Like {
                    expr: id,
                    pattern: pattern.to_ascii_lowercase().into_boxed_str(),
                    negated: *negated,
                }
            }
            Expr::Subquery(q) => {
                let plan = self.compile_select(q, Some(scope));
                let uncorrelated = !block_is_correlated(&plan, 0);
                CExpr::Subquery { query: Box::new(plan), uncorrelated }
            }
            Expr::Case { operand, branches, else_expr } => {
                let operand = operand.as_ref().map(|o| self.compile_expr(o, scope, arena));
                let branches = branches
                    .iter()
                    .map(|(w, t)| {
                        (self.compile_expr(w, scope, arena), self.compile_expr(t, scope, arena))
                    })
                    .collect();
                let else_expr =
                    else_expr.as_ref().map(|e| self.compile_expr(e, scope, arena));
                CExpr::Case { operand, branches, else_expr }
            }
            Expr::Wildcard => CExpr::Err(EngineError::type_error("bare * outside COUNT")),
        };
        self.push(arena, node)
    }
}

impl CSelect {
    /// Output column names, or an empty slice when projection planning
    /// failed (the block errors before producing columns, so nothing can
    /// observe the difference).
    fn output_columns(&self) -> &[String] {
        match &self.projection {
            Ok((names, _)) => names,
            Err(_) => &[],
        }
    }
}

/// Does any slot in `sel` reach a frame *outside* the block `level` hops
/// up? Called with `level = 0` on a freshly compiled subquery block, this
/// decides correlation: every expression in a block's arena evaluates with
/// that block's row at `up = 0` (join hash keys and `ON` predicates use
/// side-local/accumulated frames whose parent is the block's outer scope,
/// so the same bound applies), a nested subquery adds one frame, and a
/// `UNION` arm runs under the same outer scope. Derived tables and views
/// compile with no outer scope, so their slots cannot escape and their
/// arenas need no walk.
fn block_is_correlated(sel: &CSelect, level: u32) -> bool {
    sel.arena.iter().any(|e| match e {
        CExpr::Slot { up, .. } => *up > level,
        CExpr::InSubquery { query, .. }
        | CExpr::Exists { query, .. }
        | CExpr::Subquery { query, .. } => block_is_correlated(query, level + 1),
        _ => false,
    }) || sel
        .union
        .as_ref()
        .is_some_and(|(_, rhs)| block_is_correlated(rhs, level))
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Runtime mirror of the compile-time [`ScopeCtx`] chain: the current
/// combined row of each enclosing query block. [`CExpr::Slot`]'s `up` hops
/// this chain; correlated subqueries re-bind by running under a new frame
/// whose parent is the current one.
#[derive(Clone, Copy)]
pub(crate) struct Frame<'a> {
    pub(crate) row: &'a [Value],
    pub(crate) parent: Option<&'a Frame<'a>>,
}

impl<'a> Frame<'a> {
    pub(crate) fn slot(&self, up: u32, idx: usize) -> &Value {
        let mut f = self;
        for _ in 0..up {
            f = f.parent.expect("slot depth matches compile-time scope chain");
        }
        &f.row[idx]
    }
}

/// The group unit representative: a real row of the block, or the
/// synthesized all-NULL row of an empty global aggregate group.
enum Rep {
    Row(usize),
    Nulls(Vec<Value>),
}

pub(crate) struct Runner<'a> {
    pub(crate) db: &'a Database,
    pub(crate) opts: ExecOptions,
    pub(crate) meter: Meter,
    /// Per-execution results of uncorrelated subquery blocks, keyed by
    /// block address (each `Box<CSelect>` is a distinct, pinned block).
    /// Only consulted when [`Self::memo_enabled`] holds.
    subquery_memo: RefCell<HashMap<usize, Result<Rc<ResultSet>, EngineError>>>,
    /// Hot-loop buffer pool for the vectorized executors (see
    /// [`crate::batch::BatchPool`]); unused on the scalar path.
    pub(crate) pool: crate::batch::BatchPool,
}

impl<'a> Runner<'a> {
    pub(crate) fn new(db: &'a Database, opts: ExecOptions) -> Self {
        Runner {
            db,
            opts,
            meter: Meter::new(opts.limits),
            subquery_memo: RefCell::new(HashMap::new()),
            pool: crate::batch::BatchPool::new(),
        }
    }

    /// Memoizing uncorrelated subqueries skips their per-outer-row re-runs,
    /// which also skips the steps/join-rows/depth charges those re-runs
    /// would have paid. With every limit off the ledger is unobservable, so
    /// the skip is licensed; under any finite budget the memo stays off and
    /// the compiled path charges row-for-row what the interpreter charges.
    fn memo_enabled(&self) -> bool {
        self.opts.limits == ExecLimits::UNLIMITED
    }

    /// Run a subquery block under `frame`. Blocks proven uncorrelated at
    /// plan time run once per statement execution and replay from the memo
    /// (their result cannot depend on `frame`); everything else re-runs
    /// per outer row, exactly like the interpreter.
    fn run_subquery(
        &self,
        q: &CSelect,
        frame: &Frame<'_>,
        uncorrelated: bool,
    ) -> Result<Rc<ResultSet>, EngineError> {
        if !uncorrelated || !self.memo_enabled() {
            return self.run_select(q, Some(frame)).map(Rc::new);
        }
        let key = q as *const CSelect as usize;
        if let Some(cached) = self.subquery_memo.borrow().get(&key) {
            return cached.clone();
        }
        let result = self.run_select(q, Some(frame)).map(Rc::new);
        self.subquery_memo.borrow_mut().insert(key, result.clone());
        result
    }
    /// Depth-guarded entry point for a compiled block, mirroring the
    /// interpreter's `select` wrapper.
    pub(crate) fn run_select(
        &self,
        sel: &CSelect,
        outer: Option<&Frame<'_>>,
    ) -> Result<ResultSet, EngineError> {
        self.meter.enter_block()?;
        let result = self.run_select_inner(sel, outer);
        self.meter.exit_block();
        result
    }

    fn run_select_inner(
        &self,
        sel: &CSelect,
        outer: Option<&Frame<'_>>,
    ) -> Result<ResultSet, EngineError> {
        // FROM and JOINs.
        let mut rows = match &sel.source {
            Some(src) => self.load_source(src)?,
            None => vec![Vec::new()],
        };
        for join in &sel.joins {
            let right = self.load_source(&join.source)?;
            rows = self.join(sel, rows, right, join, outer)?;
            snails_obs::observe(Obs::EngineOpJoinRows, rows.len() as u64);
        }

        // WHERE.
        if let Some(pred) = sel.where_clause {
            self.meter.charge_steps(rows.len() as u64)?;
            let mut kept = Vec::new();
            for row in rows {
                let frame = Frame { row: &row, parent: outer };
                if truth(&self.eval(sel, pred, &frame)?) == Some(true) {
                    kept.push(row);
                }
            }
            rows = kept;
            snails_obs::observe(Obs::EngineOpFilterRows, rows.len() as u64);
        }

        let mut result = self.tail(sel, rows, outer)?;

        // UNION [ALL].
        if let Some((kind, rhs)) = &sel.union {
            let rhs_rs = self.run_select(rhs, outer)?;
            if rhs_rs.column_count() != result.column_count() {
                return Err(EngineError::type_error(format!(
                    "UNION arity mismatch: {} vs {} columns",
                    result.column_count(),
                    rhs_rs.column_count()
                )));
            }
            result.rows.extend(rhs_rs.rows);
            if *kind == UnionKind::Distinct {
                let mut seen: HashSet<Vec<HashKey>> = HashSet::new();
                result.rows.retain(|row| seen.insert(row.iter().map(Value::hash_key).collect()));
            }
        }

        if let Some(budget) = self.opts.limits.max_output_rows {
            if result.rows.len() as u64 > budget {
                return Err(EngineError::resource_exhausted("output row budget", budget));
            }
        }

        Ok(result)
    }

    /// The post-`WHERE` stages of one block — projection-error surfacing,
    /// grouping, `HAVING`, projection, `DISTINCT`, `ORDER BY`, `TOP` —
    /// over already-filtered `rows`. Factored out of `run_select_inner` so
    /// the vectorized executor (`crate::vector`) can hand exactly these
    /// semantics a materialized row set when a block's unit expressions
    /// contain subqueries (or the input is empty) and scalar evaluation is
    /// the cheapest exact path. `UNION` and the output-row budget stay in
    /// the caller.
    pub(crate) fn tail(
        &self,
        sel: &CSelect,
        rows: Vec<Vec<Value>>,
        outer: Option<&Frame<'_>>,
    ) -> Result<ResultSet, EngineError> {
        // Plan-time projection errors surface here, after WHERE — exactly
        // where the interpreter calls `projection_plan`.
        let (out_columns, items) = match &sel.projection {
            Ok(p) => p,
            Err(e) => return Err(e.clone()),
        };

        // Units: (representative, group member indices). Indices into
        // `rows` instead of cloned row vectors — the one representational
        // difference from the interpreter, invisible in the output.
        let units: Vec<(Rep, Vec<usize>)> = if sel.grouped {
            if sel.group_by.is_empty() {
                let rep = if rows.is_empty() {
                    Rep::Nulls(vec![Value::Null; sel.width])
                } else {
                    Rep::Row(0)
                };
                vec![(rep, (0..rows.len()).collect())]
            } else {
                self.meter.charge_steps(rows.len() as u64)?;
                let mut units: Vec<Vec<usize>> = Vec::new();
                let mut groups: HashMap<Vec<HashKey>, usize> = HashMap::new();
                for (ri, row) in rows.iter().enumerate() {
                    let frame = Frame { row, parent: outer };
                    let mut key = Vec::with_capacity(sel.group_by.len());
                    for &g in &sel.group_by {
                        key.push(self.eval(sel, g, &frame)?.hash_key());
                    }
                    match groups.entry(key) {
                        Entry::Occupied(e) => units[*e.get()].push(ri),
                        Entry::Vacant(e) => {
                            e.insert(units.len());
                            units.push(vec![ri]);
                        }
                    }
                }
                units.into_iter().map(|g| (Rep::Row(g[0]), g)).collect()
            }
        } else {
            (0..rows.len()).map(|i| (Rep::Row(i), vec![i])).collect()
        };
        if sel.grouped {
            snails_obs::observe(Obs::EngineOpGroupUnits, units.len() as u64);
        }

        // HAVING.
        let units: Vec<_> = if let Some(h) = &sel.having {
            let mut kept = Vec::new();
            for unit in units {
                let v = self.eval_unit(sel, h, &unit, &rows, outer)?;
                if truth(&v) == Some(true) {
                    kept.push(unit);
                }
            }
            kept
        } else {
            units
        };

        // Projection + ORDER BY keys.
        self.meter.charge_steps(units.len() as u64)?;
        let mut projected: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(units.len());
        for unit in &units {
            let rep: &[Value] = match &unit.0 {
                Rep::Row(i) => &rows[*i],
                Rep::Nulls(r) => r,
            };
            let mut out_row = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    CItem::Passthrough(idx) => out_row.push(rep[*idx].clone()),
                    CItem::Expr(u) => {
                        out_row.push(self.eval_unit(sel, u, unit, &rows, outer)?)
                    }
                }
            }
            let mut keys = Vec::with_capacity(sel.order_by.len());
            for (key, _) in &sel.order_by {
                match key {
                    COrder::Output(i) => keys.push(out_row[*i].clone()),
                    COrder::Unit(u) => keys.push(self.eval_unit(sel, u, unit, &rows, outer)?),
                }
            }
            projected.push((out_row, keys));
        }
        snails_obs::observe(Obs::EngineOpProjectRows, projected.len() as u64);

        // DISTINCT.
        if sel.distinct {
            let mut seen: HashSet<Vec<HashKey>> = HashSet::new();
            projected.retain(|(row, _)| seen.insert(row.iter().map(Value::hash_key).collect()));
        }

        // ORDER BY (stable).
        if !sel.order_by.is_empty() {
            snails_obs::observe(Obs::EngineOpSortRows, projected.len() as u64);
            projected.sort_by(|(_, ka), (_, kb)| {
                for (i, (_, desc)) in sel.order_by.iter().enumerate() {
                    let ord = ka[i].total_cmp(&kb[i]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }

        // TOP.
        let mut out_rows: Vec<Vec<Value>> = projected.into_iter().map(|(r, _)| r).collect();
        if let Some(n) = sel.top {
            out_rows.truncate(n as usize);
        }

        Ok(ResultSet { columns: out_columns.clone(), rows: out_rows })
    }

    fn load_source(&self, src: &CSource) -> Result<Vec<Vec<Value>>, EngineError> {
        match src {
            CSource::Table { name, .. } => {
                let t = self
                    .db
                    .table(name)
                    .ok_or_else(|| EngineError::UnknownTable { name: name.clone() })?;
                self.meter.charge_steps(t.rows.len() as u64)?;
                snails_obs::observe(Obs::EngineOpScanRows, t.rows.len() as u64);
                Ok(t.rows.clone())
            }
            CSource::Sub { plan, .. } => {
                let rows = self.run_select(plan, None)?.rows;
                snails_obs::observe(Obs::EngineOpScanRows, rows.len() as u64);
                Ok(rows)
            }
            CSource::Missing(name) => Err(EngineError::UnknownTable { name: name.clone() }),
        }
    }

    fn join(
        &self,
        sel: &CSelect,
        left: Vec<Vec<Value>>,
        right: Vec<Vec<Value>>,
        join: &CJoin,
        outer: Option<&Frame<'_>>,
    ) -> Result<Vec<Vec<Value>>, EngineError> {
        if self.opts.hash_join && join.kind != JoinKind::Cross {
            if let (Some(keys), Some(_)) = (&join.hash_keys, join.on) {
                return self.hash_join(sel, left, right, join, keys, outer);
            }
        }
        self.nested_join(sel, left, right, join, outer)
    }

    /// Build/probe hash join — identical structure, charge points, and
    /// output order to the interpreter's `hash_join`.
    pub(crate) fn hash_join(
        &self,
        sel: &CSelect,
        left: Vec<Vec<Value>>,
        right: Vec<Vec<Value>>,
        join: &CJoin,
        keys: &[(ExprId, ExprId)],
        outer: Option<&Frame<'_>>,
    ) -> Result<Vec<Vec<Value>>, EngineError> {
        let left_width = join.left_width;
        let right_width = join.source.width();
        let mut rows = Vec::new();

        // One side's key tuple; `None` marks an unmatchable key (NULL/NaN).
        let side_key = |row: &[Value], pick: fn(&(ExprId, ExprId)) -> ExprId| {
            let frame = Frame { row, parent: outer };
            let mut key = Vec::with_capacity(keys.len());
            for k in keys {
                let v = self.eval(sel, pick(k), &frame)?;
                if v.is_null() || matches!(v, Value::Float(x) if x.is_nan()) {
                    return Ok(None);
                }
                key.push(v.hash_key());
            }
            Ok::<_, EngineError>(Some(key))
        };
        let left_key = |row: &[Value]| side_key(row, |k| k.0);
        let right_key = |row: &[Value]| side_key(row, |k| k.1);

        match join.kind {
            JoinKind::Inner | JoinKind::Left | JoinKind::Full => {
                let mut table: HashMap<Vec<HashKey>, Vec<usize>> = HashMap::new();
                self.meter.charge_join(right.len() as u64)?;
                for (ri, r) in right.iter().enumerate() {
                    if let Some(k) = right_key(r)? {
                        table.entry(k).or_default().push(ri);
                    }
                }
                let mut right_matched = vec![false; right.len()];
                for l in &left {
                    let hits: &[usize] = match left_key(l)? {
                        Some(k) => table.get(&k).map(Vec::as_slice).unwrap_or(&[]),
                        None => &[],
                    };
                    self.meter.charge_join(1 + hits.len() as u64)?;
                    for &ri in hits {
                        let mut combined = l.clone();
                        combined.extend(right[ri].iter().cloned());
                        rows.push(combined);
                        right_matched[ri] = true;
                    }
                    if hits.is_empty() && join.kind != JoinKind::Inner {
                        let mut combined = l.clone();
                        combined.extend(std::iter::repeat_n(Value::Null, right_width));
                        rows.push(combined);
                    }
                }
                if join.kind == JoinKind::Full {
                    for (ri, r) in right.iter().enumerate() {
                        if !right_matched[ri] {
                            let mut combined = vec![Value::Null; left_width];
                            combined.extend(r.iter().cloned());
                            rows.push(combined);
                        }
                    }
                }
            }
            JoinKind::Right => {
                let mut table: HashMap<Vec<HashKey>, Vec<usize>> = HashMap::new();
                self.meter.charge_join(left.len() as u64)?;
                for (li, l) in left.iter().enumerate() {
                    if let Some(k) = left_key(l)? {
                        table.entry(k).or_default().push(li);
                    }
                }
                for r in &right {
                    let hits: &[usize] = match right_key(r)? {
                        Some(k) => table.get(&k).map(Vec::as_slice).unwrap_or(&[]),
                        None => &[],
                    };
                    self.meter.charge_join(1 + hits.len() as u64)?;
                    for &li in hits {
                        let mut combined = left[li].clone();
                        combined.extend(r.iter().cloned());
                        rows.push(combined);
                    }
                    if hits.is_empty() {
                        let mut combined = vec![Value::Null; left_width];
                        combined.extend(r.iter().cloned());
                        rows.push(combined);
                    }
                }
            }
            JoinKind::Cross => unreachable!("cross joins never take the hash path"),
        }
        Ok(rows)
    }

    pub(crate) fn nested_join(
        &self,
        sel: &CSelect,
        left: Vec<Vec<Value>>,
        right: Vec<Vec<Value>>,
        join: &CJoin,
        outer: Option<&Frame<'_>>,
    ) -> Result<Vec<Vec<Value>>, EngineError> {
        let left_width = join.left_width;
        let right_width = join.source.width();
        let mut rows = Vec::new();

        let on_true = |combined: &[Value]| -> Result<bool, EngineError> {
            match join.on {
                None => Ok(true),
                Some(pred) => {
                    let frame = Frame { row: combined, parent: outer };
                    Ok(truth(&self.eval(sel, pred, &frame)?) == Some(true))
                }
            }
        };

        match join.kind {
            JoinKind::Inner | JoinKind::Cross => {
                for l in &left {
                    self.meter.charge_join(right.len().max(1) as u64)?;
                    for r in &right {
                        let mut combined = l.clone();
                        combined.extend(r.iter().cloned());
                        if on_true(&combined)? {
                            rows.push(combined);
                        }
                    }
                }
            }
            JoinKind::Left => {
                for l in &left {
                    self.meter.charge_join(right.len().max(1) as u64)?;
                    let mut matched = false;
                    for r in &right {
                        let mut combined = l.clone();
                        combined.extend(r.iter().cloned());
                        if on_true(&combined)? {
                            rows.push(combined);
                            matched = true;
                        }
                    }
                    if !matched {
                        let mut combined = l.clone();
                        combined.extend(std::iter::repeat_n(Value::Null, right_width));
                        rows.push(combined);
                    }
                }
            }
            JoinKind::Right => {
                for r in &right {
                    self.meter.charge_join(left.len().max(1) as u64)?;
                    let mut matched = false;
                    for l in &left {
                        let mut combined = l.clone();
                        combined.extend(r.iter().cloned());
                        if on_true(&combined)? {
                            rows.push(combined);
                            matched = true;
                        }
                    }
                    if !matched {
                        let mut combined = vec![Value::Null; left_width];
                        combined.extend(r.iter().cloned());
                        rows.push(combined);
                    }
                }
            }
            JoinKind::Full => {
                let mut right_matched = vec![false; right.len()];
                for l in &left {
                    self.meter.charge_join(right.len().max(1) as u64)?;
                    let mut matched = false;
                    for (ri, r) in right.iter().enumerate() {
                        let mut combined = l.clone();
                        combined.extend(r.iter().cloned());
                        if on_true(&combined)? {
                            rows.push(combined);
                            matched = true;
                            right_matched[ri] = true;
                        }
                    }
                    if !matched {
                        let mut combined = l.clone();
                        combined.extend(std::iter::repeat_n(Value::Null, right_width));
                        rows.push(combined);
                    }
                }
                for (ri, r) in right.iter().enumerate() {
                    if !right_matched[ri] {
                        let mut combined = vec![Value::Null; left_width];
                        combined.extend(r.iter().cloned());
                        rows.push(combined);
                    }
                }
            }
        }
        Ok(rows)
    }

    fn eval_unit(
        &self,
        sel: &CSelect,
        unit_expr: &CUnit,
        unit: &(Rep, Vec<usize>),
        rows: &[Vec<Value>],
        outer: Option<&Frame<'_>>,
    ) -> Result<Value, EngineError> {
        let rep: &[Value] = match &unit.0 {
            Rep::Row(i) => &rows[*i],
            Rep::Nulls(r) => r,
        };
        match unit_expr {
            CUnit::Row(id) => {
                let frame = Frame { row: rep, parent: outer };
                self.eval(sel, *id, &frame)
            }
            CUnit::Grouped(g) => self.eval_grouped(sel, g, rep, &unit.1, rows, outer),
        }
    }

    /// Mirror of the interpreter's `eval_grouped` (including its
    /// three-valued short-circuit for AND/OR).
    fn eval_grouped(
        &self,
        sel: &CSelect,
        g: &GExpr,
        rep: &[Value],
        group: &[usize],
        rows: &[Vec<Value>],
        outer: Option<&Frame<'_>>,
    ) -> Result<Value, EngineError> {
        match g {
            GExpr::Agg { name, distinct, arg } => match arg {
                AggArg::CountStar => Ok(Value::Int(group.len() as i64)),
                AggArg::StarInvalid => {
                    Err(EngineError::type_error(format!("{name}(*) is not valid")))
                }
                AggArg::Missing => {
                    Err(EngineError::type_error(format!("{name} requires an argument")))
                }
                AggArg::Expr(id) => {
                    let mut values = Vec::with_capacity(group.len());
                    for &ri in group {
                        let frame = Frame { row: &rows[ri], parent: outer };
                        let v = self.eval(sel, *id, &frame)?;
                        if !v.is_null() {
                            values.push(v);
                        }
                    }
                    finish_aggregate(name, *distinct, values)
                }
            },
            GExpr::And(left, right) => {
                let l = truth(&self.eval_grouped(sel, left, rep, group, rows, outer)?);
                if l == Some(false) {
                    return Ok(bool_value(Some(false)));
                }
                let r = truth(&self.eval_grouped(sel, right, rep, group, rows, outer)?);
                Ok(bool_value(match (l, r) {
                    (Some(true), Some(true)) => Some(true),
                    (_, Some(false)) => Some(false),
                    _ => None,
                }))
            }
            GExpr::Or(left, right) => {
                let l = truth(&self.eval_grouped(sel, left, rep, group, rows, outer)?);
                if l == Some(true) {
                    return Ok(bool_value(Some(true)));
                }
                let r = truth(&self.eval_grouped(sel, right, rep, group, rows, outer)?);
                Ok(bool_value(match (l, r) {
                    (Some(false), Some(false)) => Some(false),
                    (_, Some(true)) => Some(true),
                    _ => None,
                }))
            }
            GExpr::Binary { left, op, right } => {
                let l = self.eval_grouped(sel, left, rep, group, rows, outer)?;
                let r = self.eval_grouped(sel, right, rep, group, rows, outer)?;
                eval_binary(&l, *op, &r)
            }
            GExpr::Unary { op, expr } => {
                let v = self.eval_grouped(sel, expr, rep, group, rows, outer)?;
                eval_unary(*op, &v)
            }
            GExpr::Row(id) => {
                let frame = Frame { row: rep, parent: outer };
                self.eval(sel, *id, &frame)
            }
        }
    }

    /// Scalar IR evaluation — mirror of the interpreter's `eval`, arm by
    /// arm, minus the per-row name resolution it no longer needs.
    pub(crate) fn eval(
        &self,
        sel: &CSelect,
        id: ExprId,
        frame: &Frame<'_>,
    ) -> Result<Value, EngineError> {
        match &sel.arena[id] {
            CExpr::Const(v) => Ok(v.clone()),
            CExpr::Slot { up, idx } => Ok(frame.slot(*up, *idx).clone()),
            CExpr::Err(e) => Err(e.clone()),
            CExpr::Unary { op, expr } => {
                let v = self.eval(sel, *expr, frame)?;
                eval_unary(*op, &v)
            }
            CExpr::And { left, right } => {
                let l = truth(&self.eval(sel, *left, frame)?);
                if l == Some(false) {
                    return Ok(bool_value(Some(false)));
                }
                let r = truth(&self.eval(sel, *right, frame)?);
                Ok(bool_value(match (l, r) {
                    (Some(true), Some(true)) => Some(true),
                    (_, Some(false)) => Some(false),
                    _ => None,
                }))
            }
            CExpr::Or { left, right } => {
                let l = truth(&self.eval(sel, *left, frame)?);
                if l == Some(true) {
                    return Ok(bool_value(Some(true)));
                }
                let r = truth(&self.eval(sel, *right, frame)?);
                Ok(bool_value(match (l, r) {
                    (Some(false), Some(false)) => Some(false),
                    (_, Some(true)) => Some(true),
                    _ => None,
                }))
            }
            CExpr::Binary { left, op, right } => {
                let l = self.eval(sel, *left, frame)?;
                let r = self.eval(sel, *right, frame)?;
                eval_binary(&l, *op, &r)
            }
            CExpr::Func { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    match a {
                        CArg::Wildcard => {
                            return Err(EngineError::type_error(format!(
                                "{name}(*) is not valid"
                            )))
                        }
                        CArg::Expr(id) => vals.push(self.eval(sel, *id, frame)?),
                    }
                }
                scalar_fn(name, &vals)
            }
            CExpr::IsNull { expr, negated } => {
                let v = self.eval(sel, *expr, frame)?;
                Ok(bool_value(Some(v.is_null() != *negated)))
            }
            CExpr::InList { expr, list, negated } => {
                let v = self.eval(sel, *expr, frame)?;
                let mut saw_null = v.is_null();
                let mut found = false;
                for &item in list {
                    let iv = self.eval(sel, item, frame)?;
                    match v.sql_eq(&iv) {
                        Some(true) => {
                            found = true;
                            break;
                        }
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                let b = if found {
                    Some(true)
                } else if saw_null {
                    None
                } else {
                    Some(false)
                };
                Ok(bool_value(b.map(|x| x != *negated)))
            }
            CExpr::InSubquery { expr, query, negated, uncorrelated } => {
                let v = self.eval(sel, *expr, frame)?;
                let rs = self.run_subquery(query, frame, *uncorrelated)?;
                let mut saw_null = v.is_null();
                let mut found = false;
                for row in &rs.rows {
                    let Some(iv) = row.first() else { continue };
                    match v.sql_eq(iv) {
                        Some(true) => {
                            found = true;
                            break;
                        }
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                let b = if found {
                    Some(true)
                } else if saw_null {
                    None
                } else {
                    Some(false)
                };
                Ok(bool_value(b.map(|x| x != *negated)))
            }
            CExpr::Exists { query, negated, uncorrelated } => {
                let rs = self.run_subquery(query, frame, *uncorrelated)?;
                Ok(bool_value(Some(rs.is_empty() == *negated)))
            }
            CExpr::Between { expr, low, high, negated } => {
                let v = self.eval(sel, *expr, frame)?;
                let lo = self.eval(sel, *low, frame)?;
                let hi = self.eval(sel, *high, frame)?;
                let ge = v.sql_cmp(&lo).map(|o| o != std::cmp::Ordering::Less);
                let le = v.sql_cmp(&hi).map(|o| o != std::cmp::Ordering::Greater);
                let b = match (ge, le) {
                    (Some(a), Some(b)) => Some(a && b),
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    _ => None,
                };
                Ok(bool_value(b.map(|x| x != *negated)))
            }
            CExpr::Like { expr, pattern, negated } => {
                let v = self.eval(sel, *expr, frame)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Str(s) => {
                        let m = like_match(&s.to_ascii_lowercase(), pattern);
                        Ok(bool_value(Some(m != *negated)))
                    }
                    other => Err(EngineError::type_error(format!("LIKE over {other:?}"))),
                }
            }
            CExpr::Subquery { query, uncorrelated } => {
                let rs = self.run_subquery(query, frame, *uncorrelated)?;
                Ok(rs.scalar().cloned().unwrap_or(Value::Null))
            }
            CExpr::Case { operand, branches, else_expr } => {
                match operand {
                    Some(op) => {
                        let v = self.eval(sel, *op, frame)?;
                        for &(when, then) in branches {
                            let w = self.eval(sel, when, frame)?;
                            if v.sql_eq(&w) == Some(true) {
                                return self.eval(sel, then, frame);
                            }
                        }
                    }
                    None => {
                        for &(when, then) in branches {
                            if truth(&self.eval(sel, when, frame)?) == Some(true) {
                                return self.eval(sel, then, frame);
                            }
                        }
                    }
                }
                match else_expr {
                    Some(e) => self.eval(sel, *e, frame),
                    None => Ok(Value::Null),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

/// A thread-safe compile-once cache: (database name, normalized SQL) →
/// [`CompiledPlan`].
///
/// Normalization is token-stream based ([`snails_sql::cache_key`]), so the
/// same statement modulo whitespace, keyword case, and comments hits one
/// entry. Statements that fail to lex/parse/compile are never cached — the
/// error is recomputed per call, matching the uncached path exactly.
///
/// Intended lifetime: one cache per `(database, variant)` evaluation
/// context, created after any DDL (view installation) is applied, since
/// compiled plans snapshot catalog structure.
#[derive(Debug, Default)]
pub struct PlanCache {
    inner: Mutex<CacheInner>,
    /// `None` = unbounded (the default).
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Map plus FIFO insertion order, updated together under one lock.
#[derive(Debug, Default)]
struct CacheInner {
    plans: HashMap<String, Arc<CompiledPlan>>,
    order: std::collections::VecDeque<String>,
}

impl PlanCache {
    /// New unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache holding at most `capacity` plans; when a compile would
    /// overflow it, the oldest *inserted* entry is evicted (FIFO — cheap,
    /// deterministic, and order-insensitive to concurrent hits, unlike
    /// LRU). `capacity` is clamped to at least 1.
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache { capacity: Some(capacity.max(1)), ..Self::default() }
    }

    /// Parse/compile `sql` (or fetch the cached plan) and execute it.
    ///
    /// Behaviorally identical to [`crate::run_sql_with`] for a structurally
    /// stable database.
    pub fn run(
        &self,
        db: &Database,
        sql: &str,
        opts: ExecOptions,
    ) -> Result<ResultSet, EngineError> {
        let plan = self.plan(db, sql)?;
        plan.execute(db, opts)
    }

    /// Fetch or compile the plan for `sql` against `db`.
    pub fn plan(&self, db: &Database, sql: &str) -> Result<Arc<CompiledPlan>, EngineError> {
        let Some(norm) = snails_sql::cache_key(sql) else {
            // Unlexable input: fall through to the parser for its exact
            // error (never cached).
            let stmt = snails_sql::parse(sql).map_err(EngineError::from_parse)?;
            return compile(db, &stmt).map(Arc::new);
        };
        let key = format!("{}\u{1}{}", db.name, norm);
        // The lock is held across the compile: a racing lookup of the same
        // key then blocks and *hits* instead of compiling twice, which makes
        // the hit/miss/compile counts pure functions of the lookup sequence
        // — identical at any thread count (the telemetry report's
        // deterministic section depends on this). Compilation is cheap AST
        // lowering, so the serialization is negligible next to execution.
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        if let Some(p) = inner.plans.get(&key) {
            self.hits.fetch_add(1, AtomicOrdering::Relaxed);
            snails_obs::add(Obs::EnginePlanCacheHit, 1);
            return Ok(Arc::clone(p));
        }
        self.misses.fetch_add(1, AtomicOrdering::Relaxed);
        snails_obs::add(Obs::EnginePlanCacheMiss, 1);
        let stmt = snails_sql::parse(sql).map_err(EngineError::from_parse)?;
        let plan = Arc::new(compile(db, &stmt)?);
        snails_obs::add(Obs::EnginePlanCompile, 1);
        inner.plans.insert(key.clone(), Arc::clone(&plan));
        inner.order.push_back(key);
        if let Some(cap) = self.capacity {
            while inner.plans.len() > cap {
                let oldest = inner.order.pop_front().expect("order tracks plans");
                inner.plans.remove(&oldest);
                self.evictions.fetch_add(1, AtomicOrdering::Relaxed);
                snails_obs::add(Obs::EnginePlanCacheEviction, 1);
            }
        }
        Ok(plan)
    }

    /// Pre-compile `sql` into the cache without counting a hit or a miss —
    /// the checkpoint-resume warm pass.
    ///
    /// A resumed grid restores completed cells from disk instead of
    /// executing them, so their statements would never reach [`Self::plan`]
    /// and later cells that share a statement would pay a cold compile the
    /// uninterrupted run amortized away. Replaying restored cells' executed
    /// SQL through `warm` (serially, in grid order) restores the cache to
    /// the state the uninterrupted run would have reached. Counted under
    /// `engine.plan.resume_warm` (plus `engine.plan.compile` when a compile
    /// actually happens) so resumed runs are distinguishable from fresh
    /// ones in the assembly telemetry section; hit/miss counters stay
    /// reserved for execution-path lookups.
    ///
    /// Returns `true` when the statement is cached afterwards (already
    /// present or compiled now); `false` when it cannot be cached (unlexable
    /// or uncompilable — errors are never cached, matching [`Self::plan`]).
    pub fn warm(&self, db: &Database, sql: &str) -> bool {
        snails_obs::add(Obs::EnginePlanResumeWarm, 1);
        let Some(norm) = snails_sql::cache_key(sql) else { return false };
        let key = format!("{}\u{1}{}", db.name, norm);
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        if inner.plans.contains_key(&key) {
            return true;
        }
        let Ok(stmt) = snails_sql::parse(sql) else { return false };
        let Ok(plan) = compile(db, &stmt) else { return false };
        snails_obs::add(Obs::EnginePlanCompile, 1);
        inner.plans.insert(key.clone(), Arc::new(plan));
        inner.order.push_back(key);
        if let Some(cap) = self.capacity {
            while inner.plans.len() > cap {
                let oldest = inner.order.pop_front().expect("order tracks plans");
                inner.plans.remove(&oldest);
                self.evictions.fetch_add(1, AtomicOrdering::Relaxed);
                snails_obs::add(Obs::EnginePlanCacheEviction, 1);
            }
        }
        true
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(AtomicOrdering::Relaxed)
    }

    /// Cache misses (compilations) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(AtomicOrdering::Relaxed)
    }

    /// Plans evicted by the capacity bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(AtomicOrdering::Relaxed)
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache poisoned").plans.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableSchema;
    use crate::value::DataType;
    use crate::{run_sql_with, ExecLimits};

    fn db() -> Database {
        let mut db = Database::new("plandb");
        db.create_table(
            TableSchema::new("t")
                .column("id", DataType::Int)
                .column("name", DataType::Varchar)
                .column("score", DataType::Float),
        );
        for (id, name, score) in
            [(1, "alpha", 1.5), (2, "beta", 2.5), (3, "alpha", 3.5), (4, "gamma", 0.5)]
        {
            db.insert("t", vec![Value::Int(id), Value::from(name), Value::Float(score)])
                .unwrap();
        }
        db.create_table(
            TableSchema::new("u").column("id", DataType::Int).column("t_id", DataType::Int),
        );
        for (id, t_id) in [(10, 1), (11, 2), (12, 2)] {
            db.insert("u", vec![Value::Int(id), Value::Int(t_id)]).unwrap();
        }
        db
    }

    /// Compile + execute must match parse + interpret exactly (both Ok and
    /// Err cases).
    fn check(db: &Database, sql: &str) {
        let opts = ExecOptions::default();
        let interpreted = run_sql_with(db, sql, opts);
        let cache = PlanCache::new();
        let planned = cache.run(db, sql, opts);
        assert_eq!(planned, interpreted, "plan/interpreter divergence for {sql:?}");
    }

    #[test]
    fn basic_equivalence() {
        let db = db();
        for sql in [
            "SELECT * FROM t",
            "SELECT name, score FROM t WHERE id > 1 ORDER BY score DESC",
            "SELECT t.name, u.id FROM t JOIN u ON t.id = u.t_id ORDER BY u.id",
            "SELECT name, COUNT(*), SUM(score) FROM t GROUP BY name ORDER BY name",
            "SELECT name FROM t WHERE name LIKE 'a%'",
            "SELECT DISTINCT name FROM t ORDER BY name",
            "SELECT TOP 2 id FROM t ORDER BY id DESC",
            "SELECT id FROM t UNION SELECT t_id FROM u ORDER BY id",
            "SELECT name FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.t_id = t.id)",
            "SELECT name FROM t WHERE id IN (SELECT t_id FROM u)",
            "SELECT (SELECT COUNT(*) FROM u WHERE u.t_id = t.id) FROM t ORDER BY id",
            "SELECT name, COUNT(*) FROM t GROUP BY name HAVING COUNT(*) > 1 AND name = 'alpha'",
            "SELECT CASE WHEN score > 2 THEN 'hi' ELSE 'lo' END FROM t ORDER BY id",
            "SELECT UPPER(name), LEN(name), ROUND(score, 0) FROM t ORDER BY id",
            "SELECT a.name FROM (SELECT name FROM t WHERE id < 3) a ORDER BY a.name",
        ] {
            check(&db, sql);
        }
    }

    #[test]
    fn error_equivalence() {
        let db = db();
        for sql in [
            "SELECT missing FROM t",
            "SELECT x.name FROM t",
            "SELECT id FROM t JOIN u ON t.id = u.t_id",  // ambiguous id in projection
            "SELECT * FROM nothere",
            "SELECT z.* FROM t",
            "SELECT SUM(name) FROM t",
            "SELECT name FROM t WHERE id LIKE 'x'",
        ] {
            check(&db, sql);
        }
    }

    #[test]
    fn limits_equivalence() {
        let db = db();
        let tight = ExecOptions {
            limits: ExecLimits {
                max_steps: Some(6),
                max_join_rows: Some(4),
                max_output_rows: Some(2),
                max_subquery_depth: Some(1),
            },
            ..Default::default()
        };
        for sql in [
            "SELECT * FROM t",
            "SELECT * FROM t JOIN u ON t.id = u.t_id",
            "SELECT name FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.t_id = t.id)",
            "SELECT id FROM t CROSS JOIN u",
        ] {
            let interpreted = run_sql_with(&db, sql, tight);
            let cache = PlanCache::new();
            let planned = cache.run(&db, sql, tight);
            assert_eq!(planned, interpreted, "limit divergence for {sql:?}");
        }
    }

    #[test]
    fn cache_hits_on_normalized_sql() {
        let db = db();
        let cache = PlanCache::new();
        cache.run(&db, "SELECT id FROM t WHERE id = 1", ExecOptions::default()).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // Same statement modulo whitespace/case of keywords: cache hit.
        cache.run(&db, "select id\n  from t where id = 1", ExecOptions::default()).unwrap();
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
        // Different literal: distinct plan.
        cache.run(&db, "SELECT id FROM t WHERE id = 2", ExecOptions::default()).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn plan_rejects_wrong_database() {
        let db1 = db();
        let mut db2 = db();
        db2.name = "other".to_owned();
        let stmt = snails_sql::parse("SELECT * FROM t").unwrap();
        let plan = compile(&db1, &stmt).unwrap();
        assert!(plan.execute(&db1, ExecOptions::default()).is_ok());
        assert!(matches!(
            plan.execute(&db2, ExecOptions::default()),
            Err(EngineError::Catalog { .. })
        ));
    }

    #[test]
    fn correlated_subquery_rebinds_per_outer_row() {
        let db = db();
        check(
            &db,
            "SELECT name, (SELECT COUNT(*) FROM u WHERE u.t_id = t.id) AS n \
             FROM t ORDER BY id",
        );
    }

    #[test]
    fn views_compile_into_plan() {
        let mut db = db();
        let stmt = snails_sql::parse(
            "CREATE VIEW best AS SELECT name, score FROM t WHERE score > 1",
        )
        .unwrap();
        crate::apply_ddl(&mut db, &stmt).unwrap();
        check(&db, "SELECT name FROM best ORDER BY name");
        check(&db, "SELECT COUNT(*) FROM best");
    }
}
