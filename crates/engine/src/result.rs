//! Result sets.

use crate::value::Value;
use std::fmt;

/// A materialized query result: column names plus rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Output column names (aliases applied; generated names for unnamed
    /// expressions).
    pub columns: Vec<String>,
    /// Row data; every row has `columns.len()` values.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// New result set with the given column names.
    pub fn new(columns: Vec<String>) -> Self {
        ResultSet { columns, rows: Vec::new() }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.eq_ignore_ascii_case(name))
    }

    /// The values of column `i`, in row order.
    pub fn column_values(&self, i: usize) -> Vec<Value> {
        self.rows.iter().map(|r| r[i].clone()).collect()
    }

    /// A single scalar (first row, first column), if present.
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Value::to_string).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let mut rs = ResultSet::new(vec!["a".into(), "B".into()]);
        rs.rows.push(vec![Value::Int(1), Value::from("x")]);
        assert_eq!(rs.row_count(), 1);
        assert_eq!(rs.column_count(), 2);
        assert_eq!(rs.column_index("b"), Some(1));
        assert_eq!(rs.column_values(0), vec![Value::Int(1)]);
        assert_eq!(rs.scalar(), Some(&Value::Int(1)));
        assert!(!rs.is_empty());
    }

    #[test]
    fn display_renders_rows() {
        let mut rs = ResultSet::new(vec!["n".into()]);
        rs.rows.push(vec![Value::Int(7)]);
        let s = rs.to_string();
        assert!(s.contains('n') && s.contains('7'));
    }

    #[test]
    fn empty_scalar_is_none() {
        let rs = ResultSet::new(vec!["n".into()]);
        assert_eq!(rs.scalar(), None);
        assert!(rs.is_empty());
    }
}
