//! Columnar storage primitives for the vectorized executor.
//!
//! A [`ColumnSet`] is the column-major mirror of a table's (or any
//! materialized relation's) row storage: one typed vector per column —
//! [`ColData::I64`], [`ColData::F64`], or dictionary-encoded
//! [`ColData::Str`] — each with a validity [`Bitmap`] marking NULLs, and a
//! [`ColData::Mixed`] fallback for columns whose non-NULL values span more
//! than one runtime type (the engine is dynamically typed, so a declared
//! `int` column can legally hold text).
//!
//! The representation is lossless: [`ColumnSet::value`] reconstructs a
//! [`Value`] that is `==` to the original under the engine's value
//! equality (floats keep their exact bit pattern, including `-0.0` and NaN
//! payloads; text comes back as a refcount clone of the dictionary's
//! interned `Arc<str>`). That is what lets the vectorized executor in
//! [`crate::vector`] promise byte-identical result sets to the row-at-a-
//! time interpreter: any column it cannot type stays `Mixed` and flows
//! through the same scalar kernels.
//!
//! Dictionary encoding serves two masters: repeated strings in a column
//! collapse to a `u32` code (cheap gathers, cheap equality), and each
//! distinct string's ASCII-lowercase form is computed **once** at build
//! time ([`Dict::lower`]), so case-insensitive comparisons, `LIKE`
//! matching, and hash/group keys on the hot path never re-lowercase per
//! row.

use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A fixed-length bit vector; bit `i` set means "row `i` is valid
/// (non-NULL)" in the column that owns it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An all-false bitmap of `len` bits.
    pub fn new_false(len: usize) -> Bitmap {
        Bitmap { words: vec![0; len.div_ceil(64)], len }
    }

    /// An empty bitmap with room for `cap` pushed bits.
    pub fn with_capacity(cap: usize) -> Bitmap {
        Bitmap { words: Vec::with_capacity(cap.div_ceil(64)), len: 0 }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 != 0
    }

    /// Set bit `i` to `v`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        let mask = 1u64 << (i % 64);
        if v {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Append one bit.
    #[inline]
    pub fn push(&mut self, v: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if v {
            let i = self.len;
            self.words[i / 64] |= 1u64 << (i % 64);
        }
        self.len += 1;
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Drop every bit but keep the word capacity (pool recycling).
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }
}

/// A string dictionary: the distinct strings of one column in first-seen
/// order, with their ASCII-lowercase forms precomputed.
#[derive(Debug, Default)]
pub struct Dict {
    /// Distinct strings, indexed by code (original case preserved).
    pub strs: Vec<Arc<str>>,
    /// `lower[code]` is `strs[code].to_ascii_lowercase()`, interned once.
    pub lower: Vec<Arc<str>>,
}

impl Dict {
    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.strs.len()
    }

    /// True when the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.strs.is_empty()
    }
}

/// One column's values in columnar form.
///
/// Typed variants hold every row's value in a contiguous vector plus a
/// validity bitmap (invalid ≙ SQL NULL; the slot in the value vector is a
/// zero placeholder). A column is typed only when **all** of its non-NULL
/// values share one runtime [`Value`] variant, so reconstruction is exact.
#[derive(Debug)]
pub enum ColData {
    /// All non-NULL values are `Value::Int`.
    I64 {
        /// Row values (0 where invalid).
        vals: Vec<i64>,
        /// Validity: set ≙ non-NULL.
        valid: Bitmap,
    },
    /// All non-NULL values are `Value::Float`.
    F64 {
        /// Row values (0.0 where invalid); bit patterns preserved.
        vals: Vec<f64>,
        /// Validity: set ≙ non-NULL.
        valid: Bitmap,
    },
    /// All non-NULL values are `Value::Str`, dictionary-encoded.
    Str {
        /// Dictionary codes (0 where invalid).
        codes: Vec<u32>,
        /// Validity: set ≙ non-NULL.
        valid: Bitmap,
        /// The column's dictionary.
        dict: Arc<Dict>,
    },
    /// Non-NULL values span more than one runtime type: verbatim values.
    Mixed {
        /// Row values, exactly as stored in the row representation.
        vals: Vec<Value>,
    },
}

impl ColData {
    /// Reconstruct row `i`'s [`Value`] (equal to the original row value).
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColData::I64 { vals, valid } => {
                if valid.get(i) {
                    Value::Int(vals[i])
                } else {
                    Value::Null
                }
            }
            ColData::F64 { vals, valid } => {
                if valid.get(i) {
                    Value::Float(vals[i])
                } else {
                    Value::Null
                }
            }
            ColData::Str { codes, valid, dict } => {
                if valid.get(i) {
                    Value::Str(Arc::clone(&dict.strs[codes[i] as usize]))
                } else {
                    Value::Null
                }
            }
            ColData::Mixed { vals } => vals[i].clone(),
        }
    }
}

/// A relation in column-major form: one [`ColData`] per column, all of the
/// same length.
#[derive(Debug, Default)]
pub struct ColumnSet {
    /// Columns, in schema order.
    pub cols: Vec<ColData>,
    /// Row count (every column's length).
    pub len: usize,
}

/// Classification of a column's non-NULL value types during a build pass.
#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Unseen,
    Int,
    Float,
    Str,
    Mixed,
}

impl ColumnSet {
    /// Build the columnar form of `rows` (each of width `width`).
    ///
    /// Two passes per column: classify the non-NULL value types, then fill
    /// the chosen representation. An all-NULL column becomes `I64` with an
    /// all-false validity bitmap (reconstruction is NULL either way).
    pub fn from_rows(width: usize, rows: &[Vec<Value>]) -> ColumnSet {
        let n = rows.len();
        let mut cols = Vec::with_capacity(width);
        for c in 0..width {
            let mut kind = Kind::Unseen;
            for row in rows {
                kind = match (kind, &row[c]) {
                    (k, Value::Null) => k,
                    (Kind::Unseen | Kind::Int, Value::Int(_)) => Kind::Int,
                    (Kind::Unseen | Kind::Float, Value::Float(_)) => Kind::Float,
                    (Kind::Unseen | Kind::Str, Value::Str(_)) => Kind::Str,
                    _ => Kind::Mixed,
                };
                if kind == Kind::Mixed {
                    break;
                }
            }
            let col = match kind {
                Kind::Unseen | Kind::Int => {
                    let mut vals = Vec::with_capacity(n);
                    let mut valid = Bitmap::with_capacity(n);
                    for row in rows {
                        match &row[c] {
                            Value::Int(v) => {
                                vals.push(*v);
                                valid.push(true);
                            }
                            _ => {
                                vals.push(0);
                                valid.push(false);
                            }
                        }
                    }
                    ColData::I64 { vals, valid }
                }
                Kind::Float => {
                    let mut vals = Vec::with_capacity(n);
                    let mut valid = Bitmap::with_capacity(n);
                    for row in rows {
                        match &row[c] {
                            Value::Float(v) => {
                                vals.push(*v);
                                valid.push(true);
                            }
                            _ => {
                                vals.push(0.0);
                                valid.push(false);
                            }
                        }
                    }
                    ColData::F64 { vals, valid }
                }
                Kind::Str => {
                    let mut codes = Vec::with_capacity(n);
                    let mut valid = Bitmap::with_capacity(n);
                    let mut dict = Dict::default();
                    let mut intern: HashMap<Arc<str>, u32> = HashMap::new();
                    for row in rows {
                        match &row[c] {
                            Value::Str(s) => {
                                let code = match intern.get(s.as_ref()) {
                                    Some(&code) => code,
                                    None => {
                                        let code = dict.strs.len() as u32;
                                        dict.strs.push(Arc::clone(s));
                                        dict.lower
                                            .push(Arc::from(s.to_ascii_lowercase()));
                                        intern.insert(Arc::clone(s), code);
                                        code
                                    }
                                };
                                codes.push(code);
                                valid.push(true);
                            }
                            _ => {
                                codes.push(0);
                                valid.push(false);
                            }
                        }
                    }
                    ColData::Str { codes, valid, dict: Arc::new(dict) }
                }
                Kind::Mixed => ColData::Mixed {
                    vals: rows.iter().map(|row| row[c].clone()).collect(),
                },
            };
            cols.push(col);
        }
        ColumnSet { cols, len: n }
    }

    /// Reconstruct the [`Value`] at column `col`, row `row`.
    pub fn value(&self, col: usize, row: usize) -> Value {
        self.cols[col].value(row)
    }

    /// Reconstruct the full row at `row`.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.value(row)).collect()
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }
}

// ---------------------------------------------------------------------------
// Buffer pooling
// ---------------------------------------------------------------------------

/// The recyclable buffer kinds, one free list each.
#[derive(Default)]
struct PoolInner {
    u32s: Vec<Vec<u32>>,
    u64s: Vec<Vec<u64>>,
    i64s: Vec<Vec<i64>>,
    f64s: Vec<Vec<f64>>,
    vals: Vec<Vec<Value>>,
    pairs: Vec<Vec<(u32, u32)>>,
    bitmaps: Vec<Bitmap>,
}

impl PoolInner {
    fn drain_into(&mut self, other: &mut PoolInner) {
        fn top_up<T>(dst: &mut Vec<T>, src: &mut Vec<T>) {
            while dst.len() < STASH_CAP {
                match src.pop() {
                    Some(b) => dst.push(b),
                    None => break,
                }
            }
            src.clear();
        }
        top_up(&mut other.u32s, &mut self.u32s);
        top_up(&mut other.u64s, &mut self.u64s);
        top_up(&mut other.i64s, &mut self.i64s);
        top_up(&mut other.f64s, &mut self.f64s);
        top_up(&mut other.vals, &mut self.vals);
        top_up(&mut other.pairs, &mut self.pairs);
        top_up(&mut other.bitmaps, &mut self.bitmaps);
    }
}

/// Buffers kept warm per thread between executions, and the cap on how
/// many of each kind a finished execution may leave behind.
const STASH_CAP: usize = 64;

thread_local! {
    static STASH: std::cell::RefCell<PoolInner> =
        std::cell::RefCell::new(PoolInner::default());
}

/// A per-execution buffer pool for the vectorized executor's hot-loop
/// scratch memory: selection vectors, evaluated columns, validity bitmaps,
/// key buffers.
///
/// Two layers with deliberately different lifetimes:
///
/// * **Recycle list (counted).** Buffers put back during *this* execution
///   and handed out again. `hits`/`allocs` count at this layer only, so
///   the counters are a pure function of the statement being executed —
///   the deterministic `engine.vec.pool.{hits,allocs}` telemetry — and
///   never of what earlier statements ran on the same OS thread.
/// * **Thread-local stash (uncounted).** On construction the pool adopts
///   the thread's stash; on drop it returns every buffer (capped at
///   [`STASH_CAP`] per kind). A "pool alloc" that pops a stashed buffer
///   costs no malloc, which is what drives steady-state hot-loop
///   allocations to ~zero across the statements of a workload.
///
/// Interior mutability (`RefCell`) keeps the taking side `&self`, because
/// the pool is threaded through shared evaluator structs.
pub(crate) struct BatchPool {
    recycled: std::cell::RefCell<PoolInner>,
    reserve: std::cell::RefCell<PoolInner>,
    hits: std::cell::Cell<u64>,
    allocs: std::cell::Cell<u64>,
}

macro_rules! pool_kind {
    ($take:ident, $put:ident, $field:ident, $ty:ty) => {
        pub(crate) fn $take(&self) -> $ty {
            if let Some(b) = self.recycled.borrow_mut().$field.pop() {
                self.hits.set(self.hits.get() + 1);
                return b;
            }
            self.allocs.set(self.allocs.get() + 1);
            self.reserve.borrow_mut().$field.pop().unwrap_or_default()
        }

        pub(crate) fn $put(&self, mut b: $ty) {
            b.clear();
            self.recycled.borrow_mut().$field.push(b);
        }
    };
}

impl BatchPool {
    /// A fresh pool seeded from the calling thread's stash.
    pub(crate) fn new() -> BatchPool {
        let reserve = STASH.with(|s| std::mem::take(&mut *s.borrow_mut()));
        BatchPool {
            recycled: std::cell::RefCell::new(PoolInner::default()),
            reserve: std::cell::RefCell::new(reserve),
            hits: std::cell::Cell::new(0),
            allocs: std::cell::Cell::new(0),
        }
    }

    pool_kind!(take_u32, put_u32, u32s, Vec<u32>);
    pool_kind!(take_u64, put_u64, u64s, Vec<u64>);
    pool_kind!(take_i64, put_i64, i64s, Vec<i64>);
    pool_kind!(take_f64, put_f64, f64s, Vec<f64>);
    pool_kind!(take_vals, put_vals, vals, Vec<Value>);
    pool_kind!(take_pairs, put_pairs, pairs, Vec<(u32, u32)>);
    pool_kind!(take_bitmap, put_bitmap, bitmaps, Bitmap);

    /// This execution's deterministic `(hits, allocs)` counts.
    pub(crate) fn counts(&self) -> (u64, u64) {
        (self.hits.get(), self.allocs.get())
    }
}

impl Drop for BatchPool {
    fn drop(&mut self) {
        // Flush the execution's deterministic counters. Dropping happens
        // while the statement's obs scope is still installed (the pool
        // lives inside the per-execution Runner).
        let (hits, allocs) = self.counts();
        if hits > 0 {
            snails_obs::add(snails_obs::Metric::EngineVecPoolHits, hits);
        }
        if allocs > 0 {
            snails_obs::add(snails_obs::Metric::EngineVecPoolAllocs, allocs);
        }
        STASH.with(|s| {
            let stash = &mut *s.borrow_mut();
            self.recycled.get_mut().drain_into(stash);
            self.reserve.get_mut().drain_into(stash);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_roundtrip() {
        let mut b = Bitmap::with_capacity(3);
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(b.count_ones(), (0..130).filter(|i| i % 3 == 0).count());
        let mut f = Bitmap::new_false(70);
        f.set(69, true);
        assert!(f.get(69) && !f.get(0));
        f.set(69, false);
        assert_eq!(f.count_ones(), 0);
    }

    #[test]
    fn columns_reconstruct_exactly() {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Int(1), Value::Float(-0.0), Value::from("Ab"), Value::Int(9)],
            vec![Value::Null, Value::Null, Value::Null, Value::from("x")],
            vec![Value::Int(-5), Value::Float(f64::NAN), Value::from("Ab"), Value::Float(2.5)],
        ];
        let cs = ColumnSet::from_rows(4, &rows);
        assert_eq!(cs.len, 3);
        assert!(matches!(cs.cols[0], ColData::I64 { .. }));
        assert!(matches!(cs.cols[1], ColData::F64 { .. }));
        assert!(matches!(cs.cols[2], ColData::Str { .. }));
        assert!(matches!(cs.cols[3], ColData::Mixed { .. }));
        for (ri, row) in rows.iter().enumerate() {
            assert_eq!(&cs.row(ri), row, "row {ri}");
        }
        // -0.0 and NaN bit patterns survive the round trip.
        match &cs.cols[1] {
            ColData::F64 { vals, .. } => {
                assert!(vals[0].is_sign_negative() && vals[0] == 0.0);
                assert!(vals[2].is_nan());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn dictionary_interns_and_lowercases_once() {
        let rows: Vec<Vec<Value>> =
            vec![vec![Value::from("CA")], vec![Value::from("or")], vec![Value::from("CA")]];
        let cs = ColumnSet::from_rows(1, &rows);
        match &cs.cols[0] {
            ColData::Str { codes, dict, .. } => {
                assert_eq!(codes, &[0, 1, 0]);
                assert_eq!(dict.len(), 2);
                assert_eq!(dict.lower[0].as_ref(), "ca");
                assert_eq!(dict.lower[1].as_ref(), "or");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn all_null_column_stays_null() {
        let rows: Vec<Vec<Value>> = vec![vec![Value::Null], vec![Value::Null]];
        let cs = ColumnSet::from_rows(1, &rows);
        assert_eq!(cs.value(0, 0), Value::Null);
        assert_eq!(cs.value(0, 1), Value::Null);
    }
}
