//! Catalog: databases, table schemas, tables, and views.

use crate::batch::ColumnSet;
use crate::error::EngineError;
use crate::stats::{ColumnIndex, IndexCache, TableStats};
use crate::value::{DataType, Value};
use snails_sql::SelectStatement;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (original case preserved; lookups are case-insensitive).
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
}

/// A table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns, in declaration order.
    pub columns: Vec<Column>,
}

impl TableSchema {
    /// New schema with no columns.
    pub fn new(name: &str) -> Self {
        TableSchema { name: name.to_owned(), columns: Vec::new() }
    }

    /// Builder: append a column.
    pub fn column(mut self, name: &str, data_type: DataType) -> Self {
        self.columns.push(Column { name: name.to_owned(), data_type });
        self
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column names in order.
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|c| c.name.as_str())
    }
}

/// A table: schema + rows, with a lazily built columnar mirror.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    /// Row storage (the source of truth).
    pub rows: Vec<Vec<Value>>,
    /// Columnar mirror of `rows`, built on first [`Table::columnar`] call
    /// and dropped by [`Database::table_mut`] (every mutation path goes
    /// through it), so the cache can never serve stale columns.
    columnar: OnceLock<Arc<ColumnSet>>,
    /// Planner statistics ([`Table::stats`]), cached beside the columnar
    /// mirror and invalidated with it.
    stats: OnceLock<Arc<TableStats>>,
    /// Lazily built secondary hash indexes, invalidated with `columnar`.
    indexes: IndexCache,
}

// `columnar`, `stats`, and `indexes` are pure caches of `rows`, so
// equality ignores them.
impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}

impl Table {
    /// Empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
            columnar: OnceLock::new(),
            stats: OnceLock::new(),
            indexes: IndexCache::default(),
        }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The table's columnar mirror, building it on first use. Subsequent
    /// calls are a refcount bump until the table is next mutated.
    pub fn columnar(&self) -> Arc<ColumnSet> {
        Arc::clone(self.columnar.get_or_init(|| {
            Arc::new(ColumnSet::from_rows(self.schema.columns.len(), &self.rows))
        }))
    }

    /// Planner statistics for this table, computed from the columnar mirror
    /// on first use and cached until the table is next mutated.
    pub fn stats(&self) -> Arc<TableStats> {
        Arc::clone(
            self.stats
                .get_or_init(|| Arc::new(TableStats::from_columns(&self.columnar()))),
        )
    }

    /// Secondary hash index over column `col`, built lazily and cached
    /// until the table is next mutated.
    pub(crate) fn index(&self, col: usize) -> Arc<ColumnIndex> {
        self.indexes.get_or_build(col, &self.columnar())
    }
}

/// A view definition: a named stored query, optionally in a separate schema
/// namespace (`db_nl` for natural views, §6).
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDef {
    /// Schema namespace (`None` ≙ `dbo`).
    pub schema: Option<String>,
    /// View name.
    pub name: String,
    /// Body.
    pub query: SelectStatement,
}

/// An in-memory database: tables plus views.
#[derive(Debug, Clone, Default)]
pub struct Database {
    /// Database name.
    pub name: String,
    tables: Vec<Table>,
    table_index: HashMap<String, usize>,
    views: Vec<ViewDef>,
}

impl Database {
    /// New empty database.
    pub fn new(name: &str) -> Self {
        Database { name: name.to_owned(), ..Default::default() }
    }

    /// Create a table; replaces any same-named table.
    pub fn create_table(&mut self, schema: TableSchema) {
        let key = schema.name.to_ascii_uppercase();
        let table = Table::new(schema);
        if let Some(&i) = self.table_index.get(&key) {
            self.tables[i] = table;
        } else {
            self.table_index.insert(key, self.tables.len());
            self.tables.push(table);
        }
    }

    /// Look up a table by case-insensitive name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.table_index
            .get(&name.to_ascii_uppercase())
            .map(|&i| &self.tables[i])
    }

    /// Mutable table lookup. Handing out `&mut` invalidates the table's
    /// columnar, statistics, and index caches — every mutation path
    /// (insert, bulk load, direct row edits) funnels through here, so a
    /// stale mirror is unreachable.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.table_index
            .get(&name.to_ascii_uppercase())
            .map(|&i| {
                let t = &mut self.tables[i];
                t.columnar.take();
                t.stats.take();
                t.indexes.clear();
                t
            })
    }

    /// All tables in creation order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.iter()
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total column count across tables.
    pub fn column_count(&self) -> usize {
        self.tables.iter().map(|t| t.schema.columns.len()).sum()
    }

    /// Insert a row; validates arity.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<(), EngineError> {
        let t = self
            .table_mut(table)
            .ok_or_else(|| EngineError::UnknownTable { name: table.to_owned() })?;
        if row.len() != t.schema.columns.len() {
            return Err(EngineError::Catalog {
                message: format!(
                    "row arity {} != {} columns in {table}",
                    row.len(),
                    t.schema.columns.len()
                ),
            });
        }
        t.rows.push(row);
        Ok(())
    }

    /// Bulk insert.
    pub fn insert_all(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<(), EngineError> {
        for row in rows {
            self.insert(table, row)?;
        }
        Ok(())
    }

    /// Register a view. Views live in a `(schema, name)` namespace distinct
    /// from tables; a view shadows nothing.
    pub fn create_view(&mut self, view: ViewDef) {
        self.views
            .retain(|v| !(v.name.eq_ignore_ascii_case(&view.name) && v.schema == view.schema));
        self.views.push(view);
    }

    /// Look up a view by optional schema and name (case-insensitive).
    pub fn view(&self, schema: Option<&str>, name: &str) -> Option<&ViewDef> {
        self.views.iter().find(|v| {
            v.name.eq_ignore_ascii_case(name)
                && match (schema, &v.schema) {
                    (Some(s), Some(vs)) => vs.eq_ignore_ascii_case(s),
                    (None, None) => true,
                    // An unqualified reference can resolve to a view in any
                    // schema only if no table matches; the executor handles
                    // that ordering. Qualified must match exactly.
                    (None, Some(_)) | (Some(_), None) => false,
                }
        })
    }

    /// All views.
    pub fn views(&self) -> impl Iterator<Item = &ViewDef> {
        self.views.iter()
    }

    /// All identifier names in the physical schema (tables then columns),
    /// the unit of naturalness classification.
    pub fn identifier_names(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.table_count() + self.column_count());
        for t in &self.tables {
            out.push(t.schema.name.clone());
        }
        for t in &self.tables {
            for c in &t.schema.columns {
                out.push(c.name.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Database {
        let mut db = Database::new("demo");
        db.create_table(
            TableSchema::new("tbl_Locations")
                .column("Location_ID", DataType::Int)
                .column("County", DataType::Varchar),
        );
        db
    }

    #[test]
    fn table_lookup_case_insensitive() {
        let db = demo();
        assert!(db.table("TBL_LOCATIONS").is_some());
        assert!(db.table("tbl_locations").is_some());
        assert!(db.table("nope").is_none());
    }

    #[test]
    fn column_index_case_insensitive() {
        let db = demo();
        let t = db.table("tbl_Locations").unwrap();
        assert_eq!(t.schema.column_index("county"), Some(1));
        assert_eq!(t.schema.column_index("COUNTY"), Some(1));
        assert_eq!(t.schema.column_index("missing"), None);
    }

    #[test]
    fn insert_validates_arity() {
        let mut db = demo();
        assert!(db.insert("tbl_Locations", vec![Value::Int(1)]).is_err());
        assert!(db
            .insert("tbl_Locations", vec![Value::Int(1), Value::from("Shasta")])
            .is_ok());
        assert_eq!(db.table("tbl_Locations").unwrap().row_count(), 1);
        assert!(db.insert("missing", vec![]).is_err());
    }

    #[test]
    fn create_table_replaces() {
        let mut db = demo();
        db.insert("tbl_Locations", vec![Value::Int(1), Value::from("x")]).unwrap();
        db.create_table(TableSchema::new("tbl_Locations").column("a", DataType::Int));
        assert_eq!(db.table("tbl_Locations").unwrap().row_count(), 0);
        assert_eq!(db.table_count(), 1);
    }

    #[test]
    fn views_namespaced_by_schema() {
        let mut db = demo();
        let q = snails_sql::parse_select("SELECT County FROM tbl_Locations").unwrap();
        db.create_view(ViewDef {
            schema: Some("db_nl".into()),
            name: "locations".into(),
            query: q.clone(),
        });
        assert!(db.view(Some("db_nl"), "LOCATIONS").is_some());
        assert!(db.view(None, "locations").is_none());
        assert!(db.view(Some("dbo"), "locations").is_none());
        // Re-creating replaces.
        db.create_view(ViewDef { schema: Some("db_nl".into()), name: "locations".into(), query: q });
        assert_eq!(db.views().count(), 1);
    }

    #[test]
    fn columnar_cache_invalidates_on_mutation() {
        let mut db = demo();
        db.insert("tbl_Locations", vec![Value::Int(1), Value::from("Shasta")]).unwrap();
        let t = db.table("tbl_Locations").unwrap();
        let cols = t.columnar();
        assert_eq!(cols.len, 1);
        assert_eq!(cols.row(0), vec![Value::Int(1), Value::from("Shasta")]);
        // Same Arc on a second call (cache hit).
        assert!(Arc::ptr_eq(&cols, &t.columnar()));
        // Mutation through table_mut rebuilds on next access.
        db.insert("tbl_Locations", vec![Value::Int(2), Value::Null]).unwrap();
        let cols2 = db.table("tbl_Locations").unwrap().columnar();
        assert_eq!(cols2.len, 2);
        assert_eq!(cols2.value(1, 1), Value::Null);
        // Equality ignores the cache.
        let a = db.table("tbl_Locations").unwrap().clone();
        let mut b = a.clone();
        b.columnar.take();
        assert_eq!(a, b);
    }

    #[test]
    fn stats_and_index_caches_invalidate_on_mutation() {
        let mut db = demo();
        db.insert("tbl_Locations", vec![Value::Int(1), Value::from("Shasta")]).unwrap();
        let t = db.table("tbl_Locations").unwrap();
        let s = t.stats();
        assert_eq!(s.row_count, 1);
        assert_eq!(s.columns[0].ndv, 1);
        assert!(Arc::ptr_eq(&s, &t.stats()));
        let ix = t.index(0);
        assert_eq!(ix.map.len(), 1);
        assert!(Arc::ptr_eq(&ix, &t.index(0)));
        // Mutation through table_mut rebuilds both on next access.
        db.insert("tbl_Locations", vec![Value::Int(2), Value::from("Modoc")]).unwrap();
        let t = db.table("tbl_Locations").unwrap();
        assert_eq!(t.stats().row_count, 2);
        assert_eq!(t.stats().columns[0].ndv, 2);
        assert_eq!(t.index(0).map.len(), 2);
    }

    #[test]
    fn identifier_names_lists_tables_then_columns() {
        let db = demo();
        assert_eq!(
            db.identifier_names(),
            vec!["tbl_Locations", "Location_ID", "County"]
        );
        assert_eq!(db.column_count(), 2);
    }
}
